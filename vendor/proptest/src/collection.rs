//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// A size specification for [`vec`]: an exact length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Smallest allowed length.
    pub min: usize,
    /// Largest allowed length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
