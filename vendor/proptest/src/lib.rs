//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert!`-family macros,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, numeric range strategies,
//! tuple strategies, [`Just`], [`any`], `prop_oneof!`, and
//! [`collection::vec`]. Unlike the real proptest there is **no shrinking**:
//! each test runs a fixed number of deterministically seeded random cases and
//! reports the first failing case verbatim. The per-case seed is printed on
//! failure so a case can be reproduced by rerunning the test.

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float uniform on `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An integer uniform on `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $ty
            }
        }
    )*};
}
impl_float_range!(f64, f32);

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $ty
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Full-range strategy for a primitive (backs [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (e.g. `any::<u64>()` is all of `u64`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty => $conv:expr),*) => {$(
        impl Strategy for AnyStrategy<$ty> {
            type Value = $ty;
            #[allow(clippy::redundant_closure_call)]
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let raw = rng.next_u64();
                ($conv)(raw)
            }
        }
        impl Arbitrary for $ty {
            type Strategy = AnyStrategy<$ty>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy::default()
            }
        }
    )*};
}
impl_arbitrary_uint! {
    u64 => |raw: u64| raw,
    u32 => |raw: u64| raw as u32,
    u16 => |raw: u64| raw as u16,
    u8 => |raw: u64| raw as u8,
    usize => |raw: u64| raw as usize,
    i64 => |raw: u64| raw as i64,
    i32 => |raw: u64| raw as i32,
    bool => |raw: u64| raw & 1 == 1
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `body` for each deterministically seeded case; used by [`proptest!`].
pub fn run_cases<F>(test_name: &str, config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let name_seed = fnv1a(test_name.as_bytes());
    for case in 0..config.cases {
        let seed = name_seed ^ (u64::from(case)).wrapping_mul(0xA24B_AED4_963E_E407);
        let mut rng = TestRng::new(seed);
        if let Err(msg) = body(&mut rng) {
            panic!(
                "proptest case {case}/{total} of `{test_name}` failed (case seed {seed:#x}): {msg}",
                total = config.cases
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

/// Defines property tests: each `fn name(pat in strategy, ..) { .. }` becomes
/// a `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_cases(stringify!($name), $cfg, |__proptest_rng| {
                    $(let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_compose(
            x in 1usize..=10,
            f in 0.5f64..2.0,
            v in collection::vec(0u32..100, 2..5),
            (a, b) in (0i32..10, Just(7i32)),
        ) {
            prop_assert!((1..=10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(a < 10);
            prop_assert_eq!(b, 7);
        }

        #[test]
        fn flat_map_threads_dependent_sizes(
            xs in (1usize..=4).prop_flat_map(|n| collection::vec(Just(n), n))
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&e| e == xs.len()));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(99);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = 0.0f64..1.0;
        let a: Vec<f64> = {
            let mut rng = TestRng::new(5);
            (0..10).map(|_| strat.new_value(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = TestRng::new(5);
            (0..10).map(|_| strat.new_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
