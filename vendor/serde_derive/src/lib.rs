//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! sibling `serde` stub without depending on `syn`/`quote`: the input item is
//! parsed by walking the raw token stream and the generated impl is emitted as
//! a source string. Supported shapes — which cover every derive site in this
//! workspace — are structs with named fields, unit structs, and enums whose
//! variants are unit, newtype/tuple, or struct-like. Generic types and
//! `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (JSON-value based; see the `serde` stub).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = serialize_shape_expr(shape, "self.", None);
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ),
                        Shape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![\
                                     (\"{vname}\".to_string(), {payload})]),\n",
                                binds = binds.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                     (\"{vname}\".to_string(), ::serde::Value::Object(vec![{items}]))]),\n",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` (JSON-value based; see the `serde` stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = deserialize_shape_expr(shape, name, name);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let ctor = format!("{name}::{}", v.name);
                    let body = deserialize_shape_expr(&v.shape, name, &ctor);
                    format!("\"{0}\" => {{ let v = __payload; {body} }}\n", v.name)
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(__s) = v.as_str() {{\n\
                             match __s {{\n\
                                 {unit_arms}\n\
                                 _ => return Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{__s}}` of `{name}`\"))),\n\
                             }}\n\
                         }}\n\
                         let __fields = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                             \"expected string or single-key object for enum `{name}`\"))?;\n\
                         let (__tag, __payload) = __fields.first().ok_or_else(|| \
                             ::serde::Error::custom(\"expected non-empty object for enum `{name}`\"))?;\n\
                         match __tag.as_str() {{\n\
                             {payload_arms}\n\
                             _ => Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{__tag}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

/// Expression serialising a struct body (named fields or unit) reached via
/// `prefix` (e.g. `self.`).
fn serialize_shape_expr(shape: &Shape, prefix: &str, _variant: Option<&str>) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Object(vec![])".to_string(),
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&{prefix}{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&{prefix}{i})"))
                .collect();
            if *arity == 1 {
                items.into_iter().next().unwrap()
            } else {
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
    }
}

/// Statements deserialising a struct body from the JSON value in scope as `v`,
/// returning `Ok(<ctor> { ... })`.
fn deserialize_shape_expr(shape: &Shape, type_name: &str, ctor: &str) -> String {
    match shape {
        Shape::Unit => format!("Ok({ctor})"),
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_value(\
                             ::serde::value::get_field(__obj, \"{0}\")?)?",
                        f.name
                    )
                })
                .collect();
            format!(
                "let __obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                     \"expected object for `{type_name}`\"))?;\n\
                 Ok({ctor} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(arity) => {
            if *arity == 1 {
                format!("Ok({ctor}(::serde::Deserialize::from_value(v)?))")
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                                 ::serde::Error::custom(\"tuple too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let __items = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                         \"expected array for `{type_name}`\"))?;\n\
                     Ok({ctor}({}))",
                    inits.join(", ")
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde stub derive: unsupported struct body: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde stub derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde stub derive: expected struct or enum, got `{other}`"),
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an explicit discriminant and/or the trailing comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
    }
    variants
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name });
    }
    fields
}

/// Counts the comma-separated elements of a tuple field list.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (i, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if i + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

/// Advances past one type, stopping after the comma that terminates the field
/// (or at end of stream). Tracks `<...>` nesting so commas inside generics do
/// not end the field early.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1; // `#`
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // `[...]`
                }
            }
            _ => break,
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1; // `(crate)` etc.
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected identifier, got {other:?}"),
    }
}
