//! Offline stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha stream cipher with 8 rounds used as a
//! keystream generator. It is seeded with 32 bytes of key material and is
//! fully deterministic across platforms and thread counts. The exact output
//! stream differs from the real `rand_chacha` (block/word serialisation
//! details), which is acceptable here: the workspace relies on seeded
//! reproducibility, never on bit-compatibility with other implementations.

use rand::{RngCore, SeedableRng};

/// A ChaCha keystream generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 means "exhausted".
    word: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce, fixed to zero for RNG use.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = state;
        self.word = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::from_seed([8; 32]);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn keystream_looks_balanced() {
        let mut rng = ChaCha8Rng::from_seed([1; 32]);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits total; a fair stream has ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::from_seed([3; 32]);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
