//! Offline stand-in for the `rand` crate.
//!
//! Provides the traits and range-sampling surface this workspace uses:
//! [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//! `gen_range` over half-open and inclusive integer/float ranges plus
//! `gen_bool`. The sampling algorithms are simple and deterministic; they are
//! not bit-compatible with the real `rand`, which is fine because every
//! consumer in this workspace only relies on seeded reproducibility.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range from which [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a float uniform on `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Uniform integer in `[0, span)` via the widening-multiply method.
fn uniform_u64(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $ty
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let fi = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&fi));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(0usize..=4);
            assert!(v <= 4);
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
