//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benchmark suite
//! uses — `criterion_group!`/`criterion_main!`, [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`, [`BenchmarkId`]
//! and `Bencher::iter` — backed by a simple wall-clock loop: warm up for the
//! configured duration, then run timed batches until the measurement window
//! elapses and report the mean time per iteration. There is no statistical
//! analysis, HTML report or regression tracking; the value of the stub is
//! that `cargo bench` compiles, runs, and prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the nominal sample count (only scales the stub's minimum
    /// iteration count).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepts and ignores command-line arguments (`cargo bench` passes
    /// `--bench`; the stub has no flags of its own).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    fn scoped(&self) -> Criterion {
        let mut c = self.criterion.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        c
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.scoped(), &label, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.scoped(), &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier built from a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / [`BenchmarkId`] into a printable id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_iters: u64,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    result_ns: f64,
    iters_run: u64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up phase.
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        // Measurement phase: batches of growing size until the window closes.
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let mut batch: u64 = 1;
        while total_time < self.measurement || total_iters < self.min_iters {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_time += start.elapsed();
            total_iters += batch;
            if total_iters > 1_000_000_000 {
                break;
            }
            batch = (batch * 2).min(1 << 20);
        }
        self.result_ns = total_time.as_secs_f64() * 1e9 / total_iters as f64;
        self.iters_run = total_iters;
    }
}

/// Prevents the optimiser from discarding a value (re-export of
/// [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F>(config: &Criterion, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        warm_up: config.warm_up,
        measurement: config.measurement,
        min_iters: config.sample_size as u64,
        result_ns: 0.0,
        iters_run: 0,
    };
    f(&mut bencher);
    let (scaled, unit) = scale_ns(bencher.result_ns);
    println!(
        "{label:<60} time: {scaled:>10.3} {unit}/iter ({} iters)",
        bencher.iters_run
    );
}

fn scale_ns(ns: f64) -> (f64, &'static str) {
    if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(7u64).wrapping_mul(3)));
        group.finish();
    }
}
