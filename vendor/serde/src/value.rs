//! The JSON value model shared by the `serde` and `serde_json` stand-ins.

use std::fmt;

/// A parsed or constructed JSON document.
///
/// Objects preserve insertion order so serialisation is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(Number),
    /// A JSON string.
    Str(String),
    /// `[ ... ]`
    Array(Vec<Value>),
    /// `{ ... }` as an ordered key-value list.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in the widest lossless representation available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer (covers all `u64`/`usize` values exactly).
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered fields, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::PosInt(u)) => Some(*u),
            Value::Num(Number::Float(f))
                if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::PosInt(u)) => i64::try_from(*u).ok(),
            Value::Num(Number::NegInt(i)) => Some(*i),
            Value::Num(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::PosInt(u)) => Some(*u as f64),
            Value::Num(Number::NegInt(i)) => Some(*i as f64),
            Value::Num(Number::Float(f)) => Some(*f),
            // serde_json serialises non-finite floats as null; accept the
            // round trip.
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// Error produced while converting to or from [`Value`], or while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a field of a JSON object by name (used by derived `Deserialize`).
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}
