//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the small slice of serde's surface that the workspace
//! actually uses: `Serialize`/`Deserialize` traits (with derive macros from
//! the sibling `serde_derive` stub) backed by a JSON value model that
//! `serde_json` renders and parses. Swapping back to the real serde is a
//! manifest-only change; no call site in the workspace would need to move.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Error, Number, Value};

/// A type that can be converted into the JSON [`Value`] model.
///
/// The real serde is format-agnostic; this stand-in hard-wires the JSON data
/// model because `serde_json` is the only serializer used in this workspace.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the JSON [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                match u64::try_from(*self) {
                    Ok(u) => Value::Num(Number::PosInt(u)),
                    // Out-of-range u128: degrade to a float (never hit by the
                    // workspace, whose u128 values are small profile counts).
                    Err(_) => Value::Num(Number::Float(*self as f64)),
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$ty>::try_from(u).map_err(|_| Error::custom("unsigned integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) if i >= 0 => Value::Num(Number::PosInt(i as u64)),
                    Ok(i) => Value::Num(Number::NegInt(i)),
                    Err(_) => Value::Num(Number::Float(*self as f64)),
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom("expected signed integer"))?;
                <$ty>::try_from(i).map_err(|_| Error::custom("signed integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize, i128);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = items.iter();
                let out = ($(
                    {
                        let _ = $idx;
                        $name::from_value(
                            it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                        )?
                    },
                )+);
                Ok(out)
            }
        }
    )*};
}
impl_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
