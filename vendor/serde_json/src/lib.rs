//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON over the value model of the sibling `serde` stub.
//! Only the workspace's actual surface is provided: [`to_string`],
//! [`to_string_pretty`] and [`from_str`].

pub use serde::{Error, Number, Value};

/// Serialises `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises `value` as human-readable, indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            out,
            indent,
            depth,
            '[',
            ']',
            items.iter(),
            |item, out, d| {
                write_value(item, out, indent, d);
            },
        ),
        Value::Object(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |(k, item), out, d| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) if f.is_finite() => {
            // `{:?}` is Rust's shortest round-trip float formatting and always
            // contains a `.` or exponent, so the value re-parses as a float.
            out.push_str(&format!("{f:?}"));
        }
        // Like the real serde_json: non-finite floats have no JSON form.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let num = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom("invalid number"))?,
            )
        } else if let Ok(u) = text.parse::<u64>() {
            Number::PosInt(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::NegInt(i)
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom("invalid number"))?,
            )
        };
        Ok(Value::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            (
                "name".to_string(),
                Value::Str("a \"quoted\"\nline".to_string()),
            ),
            (
                "xs".to_string(),
                Value::Array(vec![
                    Value::Num(Number::Float(1.5)),
                    Value::Num(Number::PosInt(u64::MAX)),
                    Value::Num(Number::NegInt(-7)),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("empty".to_string(), Value::Object(vec![])),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&v, &mut s, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [
            0.1,
            1.0 / 3.0,
            1e-300,
            123_456_789.123_456_79,
            -0.0,
            2.0f64.powi(60),
        ] {
            let mut s = String::new();
            write_value(&Value::Num(Number::Float(f)), &mut s, None, 0);
            let back = parse_value(&s).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "{s}");
        }
    }
}
