//! Declarative specifications of random uncertain-routing instances.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::belief_model::BeliefModel;
use netuncert_core::model::{Belief, BeliefProfile, EffectiveGame, Game, StateSpace};

/// Distribution of user traffics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightDist {
    /// All users carry the same traffic (the *symmetric users* special case).
    Identical(f64),
    /// Traffics drawn uniformly from `[lo, hi]`.
    Uniform {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Heavy-tailed traffics: `lo · 2^U` with `U` uniform on `[0, doublings]`.
    Skewed {
        /// Smallest traffic.
        lo: f64,
        /// Number of doublings spanned by the distribution.
        doublings: f64,
    },
}

impl WeightDist {
    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            WeightDist::Identical(w) => w,
            WeightDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            WeightDist::Skewed { lo, doublings } => {
                lo * 2.0_f64.powf(rng.gen_range(0.0..=doublings))
            }
        }
    }
}

/// Distribution of link capacities within a network state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityDist {
    /// Capacities drawn uniformly from `[lo, hi]`.
    Uniform {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Each link is either degraded (`lo`) or healthy (`hi`) with equal
    /// probability — the "link failure / congestion" scenario motivating the
    /// paper's uncertainty model.
    TwoLevel {
        /// Degraded capacity.
        lo: f64,
        /// Healthy capacity.
        hi: f64,
    },
}

impl CapacityDist {
    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            CapacityDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            CapacityDist::TwoLevel { lo, hi } => {
                if rng.gen_bool(0.5) {
                    lo
                } else {
                    hi
                }
            }
        }
    }
}

/// How user beliefs over the state space are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BeliefKind {
    /// Every user is certain of state 0 — the KP-model special case.
    CompleteInformation,
    /// Each user is certain of a uniformly chosen (possibly different) state.
    RandomPointMass,
    /// Every user holds the uniform belief over all states.
    CommonUniform,
    /// Independent random beliefs: normalised exponential weights, giving a
    /// Dirichlet(1,…,1)-like spread over the simplex.
    IndependentRandom,
    /// Independent random beliefs concentrated around a random "true" state:
    /// the chosen state gets weight `1 + sharpness`, others exponential noise.
    NoisyPointMass {
        /// How strongly the preferred state dominates.
        sharpness: f64,
    },
}

impl BeliefKind {
    fn sample<R: Rng>(&self, rng: &mut R, states: usize) -> Belief {
        match *self {
            BeliefKind::CompleteInformation => Belief::point_mass(states, 0),
            BeliefKind::RandomPointMass => Belief::point_mass(states, rng.gen_range(0..states)),
            BeliefKind::CommonUniform => Belief::uniform(states),
            BeliefKind::IndependentRandom => {
                let weights: Vec<f64> = (0..states)
                    .map(|_| -rng.gen_range(1e-9..1.0f64).ln())
                    .collect();
                Belief::from_weights(&weights).expect("positive weights")
            }
            BeliefKind::NoisyPointMass { sharpness } => {
                let favourite = rng.gen_range(0..states);
                let weights: Vec<f64> = (0..states)
                    .map(|s| {
                        let noise = -rng.gen_range(1e-9..1.0f64).ln();
                        if s == favourite {
                            noise + 1.0 + sharpness
                        } else {
                            noise
                        }
                    })
                    .collect();
                Belief::from_weights(&weights).expect("positive weights")
            }
        }
    }
}

/// A specification of a random belief-model game `G = (n, m, w, B)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameSpec {
    /// Number of users `n` (≥ 2).
    pub users: usize,
    /// Number of links `m` (≥ 2).
    pub links: usize,
    /// Number of network states `|Φ|` (≥ 1).
    pub states: usize,
    /// Distribution of user traffics.
    pub weights: WeightDist,
    /// Distribution of per-state link capacities.
    pub capacities: CapacityDist,
    /// Belief generation scheme.
    pub beliefs: BeliefKind,
}

impl GameSpec {
    /// A reasonable default scenario: moderate uncertainty over two-level
    /// capacities with independent random beliefs.
    pub fn default_scenario(users: usize, links: usize) -> Self {
        GameSpec {
            users,
            links,
            states: 4,
            weights: WeightDist::Uniform { lo: 0.5, hi: 4.0 },
            capacities: CapacityDist::TwoLevel { lo: 1.0, hi: 4.0 },
            beliefs: BeliefKind::IndependentRandom,
        }
    }

    /// Samples the network part: traffics and the state space.
    fn sample_network<R: Rng>(&self, rng: &mut R) -> (Vec<f64>, StateSpace) {
        assert!(
            self.users >= 2 && self.links >= 2 && self.states >= 1,
            "invalid spec"
        );
        let weights: Vec<f64> = (0..self.users).map(|_| self.weights.sample(rng)).collect();
        let rows: Vec<Vec<f64>> = (0..self.states)
            .map(|_| {
                (0..self.links)
                    .map(|_| self.capacities.sample(rng))
                    .collect()
            })
            .collect();
        (
            weights,
            StateSpace::from_rows(rows).expect("positive capacities"),
        )
    }

    /// Samples the per-user belief profile.
    fn sample_beliefs<R: Rng>(&self, rng: &mut R) -> BeliefProfile {
        BeliefProfile::new(
            (0..self.users)
                .map(|_| self.beliefs.sample(rng, self.states))
                .collect(),
        )
        .expect("consistent beliefs")
    }

    /// Generates the full belief-model game for `(self, seed)`.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Game {
        let (weights, states) = self.sample_network(rng);
        let beliefs = self.sample_beliefs(rng);
        Game::new(weights, states, beliefs).expect("spec produces valid games")
    }

    /// Generates the reduced effective game directly.
    pub fn generate_effective<R: Rng>(&self, rng: &mut R) -> EffectiveGame {
        self.generate(rng).effective_game()
    }

    /// Generates the *network* part (traffics and state space) from
    /// `base_rng` and the user beliefs from `belief_rng`.
    ///
    /// This is the perturbation-study workhorse: deriving `base_rng` from a
    /// group id and `belief_rng` from the sample id yields many belief
    /// perturbations of one bit-identical true network, which is exactly the
    /// workload an engine-level solve cache shortcuts.
    pub fn generate_perturbed<R: Rng>(&self, base_rng: &mut R, belief_rng: &mut R) -> Game {
        let (weights, states) = self.sample_network(base_rng);
        let beliefs = self.sample_beliefs(belief_rng);
        Game::new(weights, states, beliefs).expect("spec produces valid games")
    }

    /// Generates the network from `base_rng` and the beliefs from a
    /// [`BeliefModel`] at the given `intensity`, drawing from `belief_rng` —
    /// the data-driven generalisation of
    /// [`generate_perturbed`](GameSpec::generate_perturbed): the spec's own
    /// [`BeliefKind`] is ignored and the model constructs structured
    /// perturbations around the true state instead.
    ///
    /// The same rng-split rule applies: deriving `base_rng` from a group id
    /// and `belief_rng` from `(model, intensity, sample)` yields a family of
    /// belief perturbations of one bit-identical true network. At
    /// `intensity = 0` every model reproduces the common-uniform-prior game
    /// bit-identically (proptested in `tests/proptest_gen.rs`).
    pub fn generate_with_beliefs<R: Rng>(
        &self,
        model: &dyn BeliefModel,
        intensity: f64,
        base_rng: &mut R,
        belief_rng: &mut R,
    ) -> Game {
        let (weights, states) = self.sample_network(base_rng);
        let beliefs = model.beliefs(self.users, &states, intensity, belief_rng);
        Game::new(weights, states, beliefs).expect("spec produces valid games")
    }
}

/// A specification that samples the effective-capacity matrix directly, used
/// when an experiment needs explicit control over the matrix shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EffectiveSpec {
    /// Fully random positive matrix: every user sees every link differently.
    General {
        /// Number of users.
        users: usize,
        /// Number of links.
        links: usize,
        /// Capacity range.
        capacity: CapacityDist,
        /// Traffic distribution.
        weights: WeightDist,
    },
    /// Uniform user beliefs: each user sees one capacity on all links.
    UniformPerUser {
        /// Number of users.
        users: usize,
        /// Number of links.
        links: usize,
        /// Per-user capacity range.
        capacity: CapacityDist,
        /// Traffic distribution.
        weights: WeightDist,
    },
    /// Complete information: all users see the same per-link capacities.
    UserIndependent {
        /// Number of users.
        users: usize,
        /// Number of links.
        links: usize,
        /// Per-link capacity range.
        capacity: CapacityDist,
        /// Traffic distribution.
        weights: WeightDist,
    },
}

impl EffectiveSpec {
    /// Generates an effective game according to the specification.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> EffectiveGame {
        match *self {
            EffectiveSpec::General {
                users,
                links,
                capacity,
                weights,
            } => {
                let w: Vec<f64> = (0..users).map(|_| weights.sample(rng)).collect();
                let rows: Vec<Vec<f64>> = (0..users)
                    .map(|_| (0..links).map(|_| capacity.sample(rng)).collect())
                    .collect();
                EffectiveGame::from_rows(w, rows).expect("valid random game")
            }
            EffectiveSpec::UniformPerUser {
                users,
                links,
                capacity,
                weights,
            } => {
                let w: Vec<f64> = (0..users).map(|_| weights.sample(rng)).collect();
                let rows: Vec<Vec<f64>> = (0..users)
                    .map(|_| {
                        let c = capacity.sample(rng);
                        vec![c; links]
                    })
                    .collect();
                EffectiveGame::from_rows(w, rows).expect("valid random game")
            }
            EffectiveSpec::UserIndependent {
                users,
                links,
                capacity,
                weights,
            } => {
                let w: Vec<f64> = (0..users).map(|_| weights.sample(rng)).collect();
                let row: Vec<f64> = (0..links).map(|_| capacity.sample(rng)).collect();
                EffectiveGame::from_rows(w, vec![row; users]).expect("valid random game")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use netuncert_core::numeric::Tolerance;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = GameSpec::default_scenario(4, 3);
        let a = spec.generate(&mut rng(11, 0));
        let b = spec.generate(&mut rng(11, 0));
        assert_eq!(a, b);
        let c = spec.generate(&mut rng(12, 0));
        assert_ne!(a, c);
    }

    #[test]
    fn perturbed_generation_fixes_the_network_and_varies_beliefs() {
        let spec = GameSpec::default_scenario(4, 3);
        let a = spec.generate_perturbed(&mut rng(11, 0), &mut rng(11, 100));
        let b = spec.generate_perturbed(&mut rng(11, 0), &mut rng(11, 101));
        // Same base stream: identical traffics and state space...
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.states(), b.states());
        // ...different belief stream: different beliefs (hence effective games).
        assert_ne!(a.effective_game(), b.effective_game());
        // Fully deterministic in the pair of streams.
        let c = spec.generate_perturbed(&mut rng(11, 0), &mut rng(11, 100));
        assert_eq!(a, c);
    }

    #[test]
    fn model_generation_fixes_the_network_and_varies_structured_beliefs() {
        use crate::belief_model::BeliefModelKind;
        let spec = GameSpec::default_scenario(4, 3);
        let model = BeliefModelKind::Noise.build();
        let a = spec.generate_with_beliefs(model.as_ref(), 2.0, &mut rng(11, 0), &mut rng(11, 100));
        let b = spec.generate_with_beliefs(model.as_ref(), 2.0, &mut rng(11, 0), &mut rng(11, 101));
        // Same base stream: identical true network...
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.states(), b.states());
        // ...different belief stream: different beliefs.
        assert_ne!(a.beliefs(), b.beliefs());
        // Fully deterministic in the stream pair, whatever the model.
        let c = spec.generate_with_beliefs(model.as_ref(), 2.0, &mut rng(11, 0), &mut rng(11, 100));
        assert_eq!(a, c);
        // The network agrees with the BeliefKind-based generators on the
        // same base stream (the belief construction is the only change).
        let d = spec.generate_perturbed(&mut rng(11, 0), &mut rng(11, 100));
        assert_eq!(a.weights(), d.weights());
        assert_eq!(a.states(), d.states());
    }

    #[test]
    fn complete_information_spec_produces_kp_instances() {
        let spec = GameSpec {
            users: 3,
            links: 2,
            states: 5,
            weights: WeightDist::Uniform { lo: 1.0, hi: 2.0 },
            capacities: CapacityDist::Uniform { lo: 1.0, hi: 3.0 },
            beliefs: BeliefKind::CompleteInformation,
        };
        let g = spec.generate(&mut rng(1, 0));
        assert!(g.is_kp_instance(Tolerance::default()));
    }

    #[test]
    fn common_uniform_beliefs_give_identical_capacity_rows() {
        let spec = GameSpec {
            users: 3,
            links: 3,
            states: 4,
            weights: WeightDist::Identical(1.0),
            capacities: CapacityDist::TwoLevel { lo: 1.0, hi: 4.0 },
            beliefs: BeliefKind::CommonUniform,
        };
        let eg = spec.generate_effective(&mut rng(5, 0));
        let first = eg.capacities().row(0).to_vec();
        for u in 1..3 {
            assert_eq!(eg.capacities().row(u), &first[..]);
        }
    }

    #[test]
    fn uniform_per_user_spec_satisfies_the_algorithm_precondition() {
        let spec = EffectiveSpec::UniformPerUser {
            users: 5,
            links: 4,
            capacity: CapacityDist::Uniform { lo: 0.5, hi: 5.0 },
            weights: WeightDist::Uniform { lo: 0.5, hi: 3.0 },
        };
        let eg = spec.generate(&mut rng(3, 1));
        assert!(eg.has_uniform_beliefs(Tolerance::default()));
    }

    #[test]
    fn user_independent_spec_is_a_kp_instance() {
        let spec = EffectiveSpec::UserIndependent {
            users: 4,
            links: 3,
            capacity: CapacityDist::Uniform { lo: 0.5, hi: 5.0 },
            weights: WeightDist::Skewed {
                lo: 0.5,
                doublings: 3.0,
            },
        };
        let eg = spec.generate(&mut rng(3, 2));
        assert!(eg.is_kp_instance(Tolerance::default()));
    }

    #[test]
    fn weight_distributions_respect_their_ranges() {
        let mut r = rng(9, 9);
        for _ in 0..100 {
            let w = WeightDist::Uniform { lo: 1.0, hi: 2.0 }.sample(&mut r);
            assert!((1.0..=2.0).contains(&w));
            let s = WeightDist::Skewed {
                lo: 0.5,
                doublings: 2.0,
            }
            .sample(&mut r);
            assert!((0.5..=2.0 + 1e-9).contains(&s));
            assert_eq!(WeightDist::Identical(3.0).sample(&mut r), 3.0);
        }
    }

    #[test]
    fn belief_kinds_produce_valid_distributions() {
        let mut r = rng(4, 4);
        for kind in [
            BeliefKind::CompleteInformation,
            BeliefKind::RandomPointMass,
            BeliefKind::CommonUniform,
            BeliefKind::IndependentRandom,
            BeliefKind::NoisyPointMass { sharpness: 5.0 },
        ] {
            for _ in 0..20 {
                let b = kind.sample(&mut r, 6);
                let sum: f64 = b.probs().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
                assert!(b.probs().iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn generated_games_have_requested_dimensions() {
        let spec = GameSpec::default_scenario(6, 5);
        let g = spec.generate(&mut rng(0, 0));
        assert_eq!(g.users(), 6);
        assert_eq!(g.links(), 5);
        assert_eq!(g.states().len(), 4);
    }
}
