//! # instance-gen
//!
//! Seeded, reproducible random-instance generators for the experiments and
//! benchmarks in this workspace. Every generator takes an explicit `u64` seed
//! and uses a counter-based ChaCha8 stream, so a `(spec, seed)` pair always
//! produces the same instance regardless of platform or thread count.
//!
//! * [`spec`] — declarative specifications of random belief-model games
//!   ([`GameSpec`]) and of directly generated effective games
//!   ([`EffectiveSpec`]).
//! * [`belief_model`] — data-driven structured belief perturbations around
//!   a known true state ([`BeliefModel`], intensity-parameterised), the
//!   generalisation of [`GameSpec::generate_perturbed`]'s base/belief rng
//!   split.
//! * [`churn`] — seeded, structurally valid
//!   [`GameEdit`](netuncert_core::model::GameEdit) streams over an evolving
//!   game (joins, leaves, capacity drift) for warm-start repair workloads.
//! * [`kp`] — random complete-information KP instances.
//! * [`user_specific`] — random weighted user-specific (Milchtaich-class)
//!   congestion games with monotone step costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod belief_model;
pub mod churn;
pub mod kp;
pub mod spec;
pub mod user_specific;

pub use belief_model::{BeliefModel, BeliefModelKind, TRUE_STATE};
pub use churn::{ChurnSpec, EditStream};
pub use spec::{BeliefKind, CapacityDist, EffectiveSpec, GameSpec, WeightDist};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the deterministic RNG used by every generator in this crate.
///
/// The `stream` argument lets callers derive independent substreams (e.g. one
/// per Monte-Carlo task) from one experiment seed.
pub fn rng(seed: u64, stream: u64) -> ChaCha8Rng {
    let mut state = [0u8; 32];
    state[..8].copy_from_slice(&seed.to_le_bytes());
    state[8..16].copy_from_slice(&stream.to_le_bytes());
    state[16..24].copy_from_slice(&0x9E37_79B9_7F4A_7C15u64.to_le_bytes());
    ChaCha8Rng::from_seed(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_per_seed_and_stream() {
        let mut a = rng(1, 2);
        let mut b = rng(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng(1, 3);
        let mut d = rng(2, 2);
        // Different streams or seeds give different output (overwhelmingly).
        let x = rng(1, 2).next_u64();
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }
}
