//! Seeded churn: structurally valid [`GameEdit`] streams over an evolving
//! game.
//!
//! A churn stream models a live routing population: users join, users
//! leave, and individual effective capacities drift as beliefs update. The
//! stream only tracks the *shape* of the evolving game (its user count),
//! which is all structural validity needs — a leave always names a live
//! user, a capacity change always names a live `(user, link)` entry, and
//! sampled weights/capacities are positive by construction — so a stream
//! can be generated without materialising any intermediate game. The same
//! `(spec, seed)` pair always produces the same edits, which is what lets
//! the serve harness and the `churn_repair` experiment mirror a stream on
//! both sides of a socket without shipping it.

use rand::Rng;
use serde::{Deserialize, Serialize};

use netuncert_core::model::GameEdit;

use crate::spec::{CapacityDist, WeightDist};

/// Distributional shape of one churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Distribution of sampled capacities (joining rows and drifted
    /// entries).
    pub capacity: CapacityDist,
    /// Distribution of joining users' traffics.
    pub weights: WeightDist,
    /// Floor on the evolving user count; a leave that would go below it is
    /// resampled as a capacity drift. Must be at least 2 (the smallest
    /// legal game).
    pub min_users: usize,
    /// Ceiling on the evolving user count; a join that would exceed it is
    /// resampled as a capacity drift.
    pub max_users: usize,
}

impl ChurnSpec {
    /// A reasonable default churn shape around the serve workload's
    /// instance distributions: capacity drift dominates, joins and leaves
    /// are each half as likely.
    pub fn default_scenario() -> Self {
        ChurnSpec {
            capacity: CapacityDist::Uniform { lo: 4.0, hi: 32.0 },
            weights: WeightDist::Skewed {
                lo: 1.0,
                doublings: 3.0,
            },
            min_users: 2,
            max_users: 1 << 14,
        }
    }

    /// Opens a stream over a game that currently has `users` users and
    /// `links` links, drawing from `rng`.
    pub fn stream<R: Rng>(&self, users: usize, links: usize, rng: R) -> EditStream<R> {
        assert!(self.min_users >= 2, "min_users must be at least 2");
        assert!(
            self.min_users <= users && users <= self.max_users,
            "starting user count must sit inside [min_users, max_users]"
        );
        assert!(links >= 2, "games need at least 2 links");
        EditStream {
            spec: *self,
            users,
            links,
            rng,
        }
    }
}

/// An endless seeded stream of structurally valid edits.
///
/// The stream tracks the user count the edits imply, so consecutive edits
/// stay valid when applied in order via
/// [`EffectiveGame::apply_edit`](netuncert_core::model::EffectiveGame::apply_edit).
#[derive(Debug, Clone)]
pub struct EditStream<R> {
    spec: ChurnSpec,
    users: usize,
    links: usize,
    rng: R,
}

impl<R: Rng> EditStream<R> {
    /// The user count the game has after every edit produced so far.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Draws the next edit and advances the tracked shape.
    ///
    /// The mix is 1/4 join, 1/4 leave, 1/2 capacity drift; a join at the
    /// user ceiling or a leave at the floor degrades to a capacity drift so
    /// the stream never emits an invalid edit.
    pub fn next_edit(&mut self) -> GameEdit {
        let roll = self.rng.gen_range(0..4u32);
        match roll {
            0 if self.users < self.spec.max_users => {
                let weight = self.spec.weights.sample(&mut self.rng);
                let capacities = (0..self.links)
                    .map(|_| self.spec.capacity.sample(&mut self.rng))
                    .collect();
                self.users += 1;
                GameEdit::UserJoins { weight, capacities }
            }
            1 if self.users > self.spec.min_users => {
                let user = self.rng.gen_range(0..self.users);
                self.users -= 1;
                GameEdit::UserLeaves { user }
            }
            _ => GameEdit::CapacityChange {
                user: self.rng.gen_range(0..self.users),
                link: self.rng.gen_range(0..self.links),
                capacity: self.spec.capacity.sample(&mut self.rng),
            },
        }
    }

    /// The next `count` edits as a vector (valid when applied in order).
    pub fn take_edits(&mut self, count: usize) -> Vec<GameEdit> {
        (0..count).map(|_| self.next_edit()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rng, EffectiveSpec};

    fn spec() -> ChurnSpec {
        ChurnSpec {
            min_users: 3,
            max_users: 8,
            ..ChurnSpec::default_scenario()
        }
    }

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let a = spec().stream(5, 3, rng(7, 1)).take_edits(32);
        let b = spec().stream(5, 3, rng(7, 1)).take_edits(32);
        assert_eq!(a, b);
        let c = spec().stream(5, 3, rng(7, 2)).take_edits(32);
        assert_ne!(a, c);
    }

    #[test]
    fn every_edit_applies_cleanly_in_order() {
        let gen_spec = EffectiveSpec::General {
            users: 5,
            links: 3,
            capacity: CapacityDist::Uniform { lo: 4.0, hi: 32.0 },
            weights: WeightDist::Uniform { lo: 1.0, hi: 4.0 },
        };
        let mut game = gen_spec.generate(&mut rng(11, 0));
        let mut stream = spec().stream(game.users(), game.links(), rng(11, 1));
        for _ in 0..64 {
            let edit = stream.next_edit();
            game = game.apply_edit(&edit).expect("churn edits stay valid");
            assert_eq!(game.users(), stream.users());
        }
    }

    #[test]
    fn the_user_count_respects_its_bounds() {
        let mut stream = spec().stream(3, 2, rng(2, 0));
        for _ in 0..256 {
            stream.next_edit();
            assert!((3..=8).contains(&stream.users()));
        }
    }
}
