//! Data-driven construction of structured belief perturbations.
//!
//! The paper's central object is *uncertainty itself*: users act on private
//! beliefs about link capacities, not on the true network. The original
//! [`BeliefKind`](crate::spec::BeliefKind) samplers draw beliefs from one
//! unstructured distribution; a [`BeliefModel`] instead builds a belief
//! profile *around a known true state* with a tunable `intensity` knob, so
//! an experiment can measure how equilibria respond to the **strength and
//! structure** of belief noise rather than to one fixed noise recipe.
//!
//! The contract every model obeys:
//!
//! * **The rng-split determinism rule.** A model draws randomness only from
//!   the `rng` handed to [`BeliefModel::beliefs`] — never from the network
//!   stream, never from global state. Combined with
//!   [`GameSpec::generate_with_beliefs`](crate::spec::GameSpec::generate_with_beliefs)
//!   (network from `base_rng`, beliefs from `belief_rng`) one bit-identical
//!   true network yields a whole family of structured belief perturbations,
//!   which is exactly the repeat structure the engine-level solve/opt
//!   caches shortcut.
//! * **`intensity = 0` is the uninformed limit.** Every model degenerates
//!   to the common uniform prior over the states — bit-identically equal to
//!   [`Belief::uniform`] for every user — because every weight it produces
//!   is `exp(0) = 1` exactly. Proptested in `tests/proptest_gen.rs`.
//! * **The true state is state `0`** ([`TRUE_STATE`]), matching the
//!   convention of the `kp_compare` drift study (the realised network is
//!   the state the point-mass "truth" profile selects).
//! * **Extreme intensities stay finite.** Weight exponents are clamped to
//!   `±300`, so `Belief::from_weights` always receives positive finite
//!   weights and generation never panics, whatever finite intensity a
//!   sweep asks for.

use rand::{Rng, RngCore};

use netuncert_core::model::{Belief, BeliefProfile, StateSpace};

/// The state index the models treat as the realised ("true") network.
pub const TRUE_STATE: usize = 0;

/// Clamped exponential: positive, finite for every finite exponent.
fn expw(x: f64) -> f64 {
    x.clamp(-300.0, 300.0).exp()
}

/// Validates the shared intensity contract (finite, non-negative).
fn check_intensity(intensity: f64) {
    assert!(
        intensity.is_finite() && intensity >= 0.0,
        "belief intensity must be finite and non-negative, got {intensity}"
    );
}

/// Builds one user's belief from per-state weights.
fn belief_from(weights: &[f64]) -> Belief {
    Belief::from_weights(weights).expect("belief models produce positive finite weights")
}

/// One scheme for constructing user beliefs about a known true network
/// state, parameterised by a noise/information `intensity`.
///
/// Implementations must be stateless; all randomness derives from the
/// passed `rng` (see the [module docs](self) for the full contract).
pub trait BeliefModel: Send + Sync {
    /// The registry kind of this model.
    fn kind(&self) -> BeliefModelKind;

    /// Builds the belief profile of `users` users over `states` at the
    /// given `intensity`, drawing randomness only from `rng`.
    fn beliefs(
        &self,
        users: usize,
        states: &StateSpace,
        intensity: f64,
        rng: &mut dyn RngCore,
    ) -> BeliefProfile;
}

/// Exact knowledge of the true state, sharpened by intensity: the true
/// state's weight is `e^{+intensity}`, every other state's `e^{-intensity}`.
/// At large intensity this is a numerical point mass on [`TRUE_STATE`];
/// at `0` it is the uniform prior. Draws nothing from the rng.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactKnowledge;

impl BeliefModel for ExactKnowledge {
    fn kind(&self) -> BeliefModelKind {
        BeliefModelKind::Exact
    }

    fn beliefs(
        &self,
        users: usize,
        states: &StateSpace,
        intensity: f64,
        _rng: &mut dyn RngCore,
    ) -> BeliefProfile {
        check_intensity(intensity);
        let weights: Vec<f64> = (0..states.len())
            .map(|s| {
                expw(if s == TRUE_STATE {
                    intensity
                } else {
                    -intensity
                })
            })
            .collect();
        BeliefProfile::identical(users, belief_from(&weights))
    }
}

/// Seeded multiplicative noise: each user's weight on each state is
/// `e^{intensity · g}` with `g` uniform on `[-1, 1]`, independently per
/// `(user, state)` — the intensity-graded version of the unstructured
/// belief spread E13/E14 sampled from a single distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiplicativeNoise;

impl BeliefModel for MultiplicativeNoise {
    fn kind(&self) -> BeliefModelKind {
        BeliefModelKind::Noise
    }

    fn beliefs(
        &self,
        users: usize,
        states: &StateSpace,
        intensity: f64,
        rng: &mut dyn RngCore,
    ) -> BeliefProfile {
        check_intensity(intensity);
        let profile = (0..users)
            .map(|_| {
                let weights: Vec<f64> = (0..states.len())
                    .map(|_| expw(intensity * rng.gen_range(-1.0..=1.0f64)))
                    .collect();
                belief_from(&weights)
            })
            .collect();
        BeliefProfile::new(profile).expect("consistent state counts")
    }
}

/// Adversarial systematic estimation error: each user is an optimist or a
/// pessimist (a fair coin per user) and tilts its belief toward the
/// states whose capacities are systematically higher (over-estimators) or
/// lower (under-estimators) than average, with the tilt scaled by
/// intensity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Adversarial;

/// Mean log-capacity score of every state, centred to zero mean, so the
/// tilt `e^{±intensity·score}` has no net bias across states.
fn capacity_scores(states: &StateSpace) -> Vec<f64> {
    let logs: Vec<f64> = states
        .iter()
        .map(|s| {
            let sum: f64 = s.capacities().iter().map(|&c| c.ln()).sum();
            sum / s.links() as f64
        })
        .collect();
    let center = logs.iter().sum::<f64>() / logs.len() as f64;
    logs.iter().map(|&l| l - center).collect()
}

impl BeliefModel for Adversarial {
    fn kind(&self) -> BeliefModelKind {
        BeliefModelKind::Adversarial
    }

    fn beliefs(
        &self,
        users: usize,
        states: &StateSpace,
        intensity: f64,
        rng: &mut dyn RngCore,
    ) -> BeliefProfile {
        check_intensity(intensity);
        let scores = capacity_scores(states);
        let profile = (0..users)
            .map(|_| {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let weights: Vec<f64> =
                    scores.iter().map(|&z| expw(intensity * sign * z)).collect();
                belief_from(&weights)
            })
            .collect();
        BeliefProfile::new(profile).expect("consistent state counts")
    }
}

/// Common-signal correlated beliefs: one shared noisy signal per game (a
/// uniform `[-1, 1]` draw per state) tilts *every* user the same way, and a
/// half-weight idiosyncratic jitter keeps users correlated rather than
/// identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommonSignal;

impl BeliefModel for CommonSignal {
    fn kind(&self) -> BeliefModelKind {
        BeliefModelKind::Correlated
    }

    fn beliefs(
        &self,
        users: usize,
        states: &StateSpace,
        intensity: f64,
        rng: &mut dyn RngCore,
    ) -> BeliefProfile {
        check_intensity(intensity);
        let signal: Vec<f64> = (0..states.len())
            .map(|_| rng.gen_range(-1.0..=1.0f64))
            .collect();
        let profile = (0..users)
            .map(|_| {
                let weights: Vec<f64> = signal
                    .iter()
                    .map(|&g| expw(intensity * (g + 0.5 * rng.gen_range(-1.0..=1.0f64))))
                    .collect();
                belief_from(&weights)
            })
            .collect();
        BeliefProfile::new(profile).expect("consistent state counts")
    }
}

/// Partial observability: each user observes each link of the true state
/// independently with probability `1 − e^{−intensity}` and down-weights the
/// states that disagree with its observations (by the absolute log-ratio of
/// the capacities on the observed links); unobserved links are blanked to
/// the uniform prior. At intensity `0` nothing is observed and the belief
/// is the prior itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialObservability;

impl BeliefModel for PartialObservability {
    fn kind(&self) -> BeliefModelKind {
        BeliefModelKind::Partial
    }

    fn beliefs(
        &self,
        users: usize,
        states: &StateSpace,
        intensity: f64,
        rng: &mut dyn RngCore,
    ) -> BeliefProfile {
        check_intensity(intensity);
        let p_observe = 1.0 - (-intensity).exp();
        let links = states.links();
        let truth = states.state(TRUE_STATE).capacities().to_vec();
        let profile = (0..users)
            .map(|_| {
                let observed: Vec<bool> = (0..links).map(|_| rng.gen_bool(p_observe)).collect();
                let weights: Vec<f64> = states
                    .iter()
                    .map(|s| {
                        let penalty: f64 = s
                            .capacities()
                            .iter()
                            .zip(&truth)
                            .zip(&observed)
                            .filter(|&(_, &seen)| seen)
                            .map(|((&c, &t), _)| (c / t).ln().abs())
                            .sum();
                        expw(-intensity * penalty)
                    })
                    .collect();
                belief_from(&weights)
            })
            .collect();
        BeliefProfile::new(profile).expect("consistent state counts")
    }
}

/// The built-in belief models, as data — the registry behind the
/// experiment harness's `--belief-model` selection, mirroring
/// `SolverKind`/`OptBackendKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeliefModelKind {
    /// Sharpened exact knowledge of the true state — [`ExactKnowledge`].
    Exact,
    /// Independent multiplicative noise — [`MultiplicativeNoise`].
    Noise,
    /// Systematic over/under-estimation — [`Adversarial`].
    Adversarial,
    /// Common-signal correlated beliefs — [`CommonSignal`].
    Correlated,
    /// Link-subset partial observability — [`PartialObservability`].
    Partial,
}

impl BeliefModelKind {
    /// Every model, in registry (report) order.
    pub const ALL: [BeliefModelKind; 5] = [
        BeliefModelKind::Exact,
        BeliefModelKind::Noise,
        BeliefModelKind::Adversarial,
        BeliefModelKind::Correlated,
        BeliefModelKind::Partial,
    ];

    /// The stable CLI/registry id of this model.
    pub fn id(self) -> &'static str {
        match self {
            BeliefModelKind::Exact => "exact",
            BeliefModelKind::Noise => "noise",
            BeliefModelKind::Adversarial => "adversarial",
            BeliefModelKind::Correlated => "correlated",
            BeliefModelKind::Partial => "partial",
        }
    }

    /// Parses a CLI/registry id produced by [`BeliefModelKind::id`].
    pub fn parse(s: &str) -> Option<BeliefModelKind> {
        BeliefModelKind::ALL.into_iter().find(|k| k.id() == s)
    }

    /// A small stable tag for deriving rng substreams per model.
    pub fn tag(self) -> u64 {
        match self {
            BeliefModelKind::Exact => 0,
            BeliefModelKind::Noise => 1,
            BeliefModelKind::Adversarial => 2,
            BeliefModelKind::Correlated => 3,
            BeliefModelKind::Partial => 4,
        }
    }

    /// Builds the model.
    pub fn build(self) -> Box<dyn BeliefModel> {
        match self {
            BeliefModelKind::Exact => Box::new(ExactKnowledge),
            BeliefModelKind::Noise => Box::new(MultiplicativeNoise),
            BeliefModelKind::Adversarial => Box::new(Adversarial),
            BeliefModelKind::Correlated => Box::new(CommonSignal),
            BeliefModelKind::Partial => Box::new(PartialObservability),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use netuncert_core::numeric::Tolerance;

    fn states() -> StateSpace {
        StateSpace::from_rows(vec![
            vec![1.0, 4.0, 1.0],
            vec![4.0, 1.0, 4.0],
            vec![2.0, 2.0, 2.0],
            vec![1.0, 1.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn kind_registry_round_trips() {
        for kind in BeliefModelKind::ALL {
            assert_eq!(BeliefModelKind::parse(kind.id()), Some(kind));
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!(BeliefModelKind::parse("alien"), None);
        let tags: Vec<u64> = BeliefModelKind::ALL.iter().map(|k| k.tag()).collect();
        let mut deduped = tags.clone();
        deduped.dedup();
        assert_eq!(tags, deduped, "stream tags must be distinct");
    }

    #[test]
    fn zero_intensity_is_the_uniform_prior_bit_identically() {
        let states = states();
        let uniform = Belief::uniform(states.len());
        for kind in BeliefModelKind::ALL {
            let mut r = rng(7, kind.tag());
            let profile = kind.build().beliefs(5, &states, 0.0, &mut r);
            for (user, belief) in profile.iter().enumerate() {
                assert_eq!(
                    belief.probs(),
                    uniform.probs(),
                    "{} user {user} drifted from the uniform prior",
                    kind.id()
                );
            }
        }
    }

    #[test]
    fn models_are_deterministic_in_the_rng_stream() {
        let states = states();
        for kind in BeliefModelKind::ALL {
            let model = kind.build();
            let a = model.beliefs(4, &states, 1.5, &mut rng(3, 9));
            let b = model.beliefs(4, &states, 1.5, &mut rng(3, 9));
            assert_eq!(a, b, "{} is not stream-deterministic", kind.id());
        }
    }

    #[test]
    fn intensity_sharpens_exact_knowledge_toward_the_true_state() {
        let states = states();
        let mut r = rng(0, 0);
        let mild = ExactKnowledge.beliefs(2, &states, 0.5, &mut r);
        let sharp = ExactKnowledge.beliefs(2, &states, 12.0, &mut r);
        assert!(mild.belief(0).prob(TRUE_STATE) > 1.0 / states.len() as f64);
        assert!(sharp.belief(0).prob(TRUE_STATE) > mild.belief(0).prob(TRUE_STATE));
        assert!(sharp.belief(0).is_point_mass(Tolerance::default()));
    }

    #[test]
    fn extreme_intensities_still_produce_valid_beliefs() {
        let states = states();
        for kind in BeliefModelKind::ALL {
            let mut r = rng(11, kind.tag());
            let profile = kind.build().beliefs(3, &states, 1e9, &mut r);
            for belief in profile.iter() {
                let sum: f64 = belief.probs().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", kind.id());
                assert!(belief.probs().iter().all(|p| p.is_finite() && *p >= 0.0));
            }
        }
    }

    #[test]
    fn correlated_beliefs_share_the_signal_direction() {
        let states = states();
        let mut r = rng(21, 3);
        let profile = CommonSignal.beliefs(6, &states, 3.0, &mut r);
        // All users must agree on which state the common signal favours.
        let favourite = |b: &Belief| {
            (0..b.len())
                .max_by(|&a, &c| b.prob(a).total_cmp(&b.prob(c)))
                .unwrap()
        };
        let first = favourite(profile.belief(0));
        let agreeing = profile.iter().filter(|b| favourite(b) == first).count();
        assert!(
            agreeing >= 5,
            "only {agreeing}/6 users follow the common signal"
        );
    }

    #[test]
    fn partial_observability_interpolates_between_prior_and_truth() {
        let states = states();
        // High intensity: links are observed and wrong states are crushed.
        let mut r = rng(5, 1);
        let informed = PartialObservability.beliefs(8, &states, 8.0, &mut r);
        let mean_truth: f64 = informed.iter().map(|b| b.prob(TRUE_STATE)).sum::<f64>() / 8.0;
        assert!(
            mean_truth > 1.0 / states.len() as f64,
            "observation must favour the true state on average, got {mean_truth}"
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_intensity_is_a_contract_violation() {
        let states = states();
        let mut r = rng(0, 0);
        ExactKnowledge.beliefs(2, &states, f64::NAN, &mut r);
    }
}
