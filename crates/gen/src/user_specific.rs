//! Random weighted user-specific (Milchtaich-class) congestion games.

use rand::Rng;
use serde::{Deserialize, Serialize};

use congestion_games::{CostFunction, UserSpecificGame};

/// A specification of a random weighted user-specific game with monotone step
/// costs over the achievable loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSpecificSpec {
    /// Player weights (also fixes the number of players).
    pub weights: Vec<f64>,
    /// Number of resources.
    pub resources: usize,
    /// Upper bound on each random cost increment between consecutive loads.
    pub max_step: f64,
}

impl UserSpecificSpec {
    /// The three-player shape used by the Milchtaich counterexample search.
    pub fn milchtaich_shape() -> Self {
        UserSpecificSpec {
            weights: vec![1.0, 2.0, 4.0],
            resources: 3,
            max_step: 3.0,
        }
    }

    /// All loads player `i` can observe on a resource it uses.
    fn player_loads(&self, player: usize) -> Vec<f64> {
        let others: Vec<f64> = self
            .weights
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != player)
            .map(|(_, &w)| w)
            .collect();
        let mut sums = vec![self.weights[player]];
        for &w in &others {
            let mut extended: Vec<f64> = sums.iter().map(|s| s + w).collect();
            sums.append(&mut extended);
        }
        // `total_cmp`, not `partial_cmp(..).expect(..)`: a NaN smuggled in
        // through extreme weights must not panic a whole sweep worker.
        sums.sort_by(f64::total_cmp);
        sums.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        // Overflowed (±∞) or NaN subset sums cannot be step thresholds;
        // dropping them keeps generation total on extreme specs.
        sums.retain(|l| l.is_finite());
        sums
    }

    /// Generates a random game from the specification.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> UserSpecificGame {
        let players = self.weights.len();
        let costs = (0..players)
            .map(|i| {
                let loads = self.player_loads(i);
                (0..self.resources)
                    .map(|_| {
                        let mut value = 0.0;
                        let steps: Vec<(f64, f64)> = loads
                            .iter()
                            .map(|&l| {
                                value += rng.gen_range(0.0..self.max_step);
                                (l, value)
                            })
                            .collect();
                        CostFunction::step(steps[0].1, steps)
                    })
                    .collect()
            })
            .collect();
        UserSpecificGame::new(self.weights.clone(), costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let spec = UserSpecificSpec::milchtaich_shape();
        let a = spec.generate(&mut rng(1, 0));
        let b = spec.generate(&mut rng(1, 0));
        assert_eq!(a, b);
        assert_eq!(a.players(), 3);
        assert_eq!(a.resources(), 3);
    }

    #[test]
    fn player_loads_are_the_subset_sums_containing_the_player() {
        let spec = UserSpecificSpec {
            weights: vec![1.0, 2.0, 4.0],
            resources: 3,
            max_step: 1.0,
        };
        assert_eq!(spec.player_loads(0), vec![1.0, 3.0, 5.0, 7.0]);
        assert_eq!(spec.player_loads(1), vec![2.0, 3.0, 6.0, 7.0]);
        assert_eq!(spec.player_loads(2), vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn generated_costs_are_monotone() {
        let spec = UserSpecificSpec::milchtaich_shape();
        let g = spec.generate(&mut rng(2, 0));
        let loads = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        for p in 0..3 {
            for r in 0..3 {
                assert!(g.cost_function(p, r).is_monotone_on(&loads));
            }
        }
    }

    #[test]
    fn player_loads_tolerate_nan_and_overflow_without_panicking() {
        // Regression: the subset-sum sort used `partial_cmp(..).expect("finite")`,
        // so one NaN (or an ∞ produced by overflowing weight sums) killed the
        // whole sweep worker. `total_cmp` orders every bit pattern and the
        // non-finite sums are filtered before they become step thresholds.
        let spec = UserSpecificSpec {
            weights: vec![1.0, f64::NAN, f64::INFINITY, f64::MAX],
            resources: 2,
            max_step: 1.0,
        };
        let loads = spec.player_loads(0);
        assert!(!loads.is_empty());
        assert!(loads.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn generation_never_panics_on_extreme_spec_parameters() {
        // Valid but extreme parameter corners: subset sums that overflow to
        // ∞ (f64::MAX weights), denormal-small weights, and a huge step
        // bound. Generation must complete and produce a well-formed game.
        for weights in [
            vec![f64::MAX, f64::MAX, 1.0],
            vec![1e-308, 2e-308, 1.0],
            vec![f64::MAX, 1e-308, 3.0],
        ] {
            let spec = UserSpecificSpec {
                weights,
                resources: 3,
                max_step: 1e300,
            };
            let g = spec.generate(&mut rng(13, 5));
            assert_eq!(g.players(), 3);
            assert_eq!(g.resources(), 3);
        }
    }

    #[test]
    fn most_random_instances_have_pure_nash_but_not_all() {
        // A light statistical check that the generator spans both regimes:
        // over a few hundred instances, the vast majority have a pure NE, and
        // (rarely) some do not — which is exactly what makes the Milchtaich
        // search meaningful. We only assert the majority direction here.
        let spec = UserSpecificSpec::milchtaich_shape();
        let mut with_ne = 0;
        let total = 200;
        for s in 0..total {
            let g = spec.generate(&mut rng(100, s));
            if g.has_pure_nash() {
                with_ne += 1;
            }
        }
        assert!(
            with_ne > total / 2,
            "only {with_ne}/{total} instances had a pure NE"
        );
    }
}
