//! Random complete-information KP instances.

use rand::Rng;
use serde::{Deserialize, Serialize};

use kp_model::KpGame;

use crate::spec::{CapacityDist, WeightDist};

/// A specification of a random KP-model instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KpSpec {
    /// Number of users.
    pub users: usize,
    /// Number of links.
    pub links: usize,
    /// Traffic distribution.
    pub weights: WeightDist,
    /// Link-capacity distribution.
    pub capacities: CapacityDist,
    /// Force all links to the same capacity (the *identical links* case).
    pub identical_links: bool,
}

impl KpSpec {
    /// A default related-links scenario.
    pub fn related(users: usize, links: usize) -> Self {
        KpSpec {
            users,
            links,
            weights: WeightDist::Uniform { lo: 0.5, hi: 4.0 },
            capacities: CapacityDist::Uniform { lo: 1.0, hi: 4.0 },
            identical_links: false,
        }
    }

    /// A default identical-links scenario.
    pub fn identical(users: usize, links: usize) -> Self {
        KpSpec {
            identical_links: true,
            ..KpSpec::related(users, links)
        }
    }

    /// Generates the KP game.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> KpGame {
        let weights: Vec<f64> = (0..self.users)
            .map(|_| match self.weights {
                WeightDist::Identical(w) => w,
                WeightDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
                WeightDist::Skewed { lo, doublings } => {
                    lo * 2.0_f64.powf(rng.gen_range(0.0..=doublings))
                }
            })
            .collect();
        let capacities: Vec<f64> = if self.identical_links {
            let c = sample_capacity(&self.capacities, rng);
            vec![c; self.links]
        } else {
            (0..self.links)
                .map(|_| sample_capacity(&self.capacities, rng))
                .collect()
        };
        KpGame::new(weights, capacities).expect("spec produces valid KP games")
    }
}

fn sample_capacity<R: Rng>(dist: &CapacityDist, rng: &mut R) -> f64 {
    match *dist {
        CapacityDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        CapacityDist::TwoLevel { lo, hi } => {
            if rng.gen_bool(0.5) {
                lo
            } else {
                hi
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn generation_is_deterministic() {
        let spec = KpSpec::related(5, 3);
        assert_eq!(spec.generate(&mut rng(1, 0)), spec.generate(&mut rng(1, 0)));
    }

    #[test]
    fn identical_links_spec_produces_identical_links() {
        let spec = KpSpec::identical(4, 5);
        let g = spec.generate(&mut rng(2, 0));
        assert!(g.has_identical_links());
        assert_eq!(g.users(), 4);
        assert_eq!(g.links(), 5);
    }

    #[test]
    fn related_links_spec_usually_produces_distinct_capacities() {
        let spec = KpSpec::related(3, 4);
        let g = spec.generate(&mut rng(3, 0));
        assert!(!g.has_identical_links());
    }
}
