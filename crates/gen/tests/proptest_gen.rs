//! Property-based tests for the instance generators: every specification must
//! produce valid, reproducible instances with the promised structure.

use proptest::prelude::*;

use instance_gen::kp::KpSpec;
use instance_gen::user_specific::UserSpecificSpec;
use instance_gen::{
    rng, BeliefKind, BeliefModelKind, CapacityDist, EffectiveSpec, GameSpec, WeightDist,
};
use netuncert_core::numeric::Tolerance;

fn belief_kind() -> impl Strategy<Value = BeliefKind> {
    prop_oneof![
        Just(BeliefKind::CompleteInformation),
        Just(BeliefKind::RandomPointMass),
        Just(BeliefKind::CommonUniform),
        Just(BeliefKind::IndependentRandom),
        (0.5f64..10.0).prop_map(|s| BeliefKind::NoisyPointMass { sharpness: s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every game spec generates a structurally valid game of the requested
    /// dimensions, deterministically in the seed.
    #[test]
    fn game_specs_generate_valid_reproducible_games(
        users in 2usize..=6,
        links in 2usize..=4,
        states in 1usize..=5,
        beliefs in belief_kind(),
        seed in any::<u64>(),
    ) {
        let spec = GameSpec {
            users,
            links,
            states,
            weights: WeightDist::Uniform { lo: 0.5, hi: 3.0 },
            capacities: CapacityDist::TwoLevel { lo: 1.0, hi: 4.0 },
            beliefs,
        };
        let a = spec.generate(&mut rng(seed, 0));
        let b = spec.generate(&mut rng(seed, 0));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.users(), users);
        prop_assert_eq!(a.links(), links);
        prop_assert_eq!(a.states().len(), states);
        // The effective game always validates (positive weights/capacities).
        let eg = a.effective_game();
        prop_assert_eq!(eg.users(), users);
        prop_assert!(eg.weights().iter().all(|&w| w > 0.0));
    }

    /// Complete-information beliefs always yield KP instances; uniform
    /// per-user capacities always satisfy the `Auniform` precondition; the
    /// user-independent spec always satisfies the KP predicate.
    #[test]
    fn structural_specs_deliver_their_structure(
        users in 2usize..=6,
        links in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let tol = Tolerance::default();
        let kp_spec = GameSpec {
            users,
            links,
            states: 3,
            weights: WeightDist::Uniform { lo: 0.5, hi: 3.0 },
            capacities: CapacityDist::Uniform { lo: 0.5, hi: 3.0 },
            beliefs: BeliefKind::CompleteInformation,
        };
        prop_assert!(kp_spec.generate(&mut rng(seed, 1)).is_kp_instance(tol));

        let uniform = EffectiveSpec::UniformPerUser {
            users,
            links,
            capacity: CapacityDist::Uniform { lo: 0.5, hi: 3.0 },
            weights: WeightDist::Uniform { lo: 0.5, hi: 3.0 },
        };
        prop_assert!(uniform.generate(&mut rng(seed, 2)).has_uniform_beliefs(tol));

        let independent = EffectiveSpec::UserIndependent {
            users,
            links,
            capacity: CapacityDist::Uniform { lo: 0.5, hi: 3.0 },
            weights: WeightDist::Uniform { lo: 0.5, hi: 3.0 },
        };
        prop_assert!(independent.generate(&mut rng(seed, 3)).is_kp_instance(tol));
    }

    /// KP specs produce valid games with the requested identical-links flag.
    #[test]
    fn kp_specs_respect_identical_links(users in 2usize..=8, links in 2usize..=5, seed in any::<u64>()) {
        let identical = KpSpec::identical(users, links).generate(&mut rng(seed, 4));
        prop_assert!(identical.has_identical_links());
        prop_assert_eq!(identical.users(), users);
        let related = KpSpec::related(users, links).generate(&mut rng(seed, 5));
        prop_assert_eq!(related.links(), links);
        prop_assert!(related.capacities().iter().all(|&c| c > 0.0));
    }

    /// User-specific specs produce monotone cost functions over the loads the
    /// game can actually realise.
    #[test]
    fn user_specific_specs_produce_monotone_costs(
        weights in proptest::collection::vec(0.5f64..4.0, 2..=4),
        resources in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let spec = UserSpecificSpec { weights: weights.clone(), resources, max_step: 2.0 };
        let game = spec.generate(&mut rng(seed, 6));
        prop_assert_eq!(game.players(), weights.len());
        prop_assert_eq!(game.resources(), resources);
        let total: f64 = weights.iter().sum();
        let probes: Vec<f64> = (0..=20).map(|i| total * i as f64 / 20.0).collect();
        for p in 0..game.players() {
            for r in 0..game.resources() {
                prop_assert!(game.cost_function(p, r).is_monotone_on(&probes));
            }
        }
    }

    /// Different streams from the same seed give independent instances.
    #[test]
    fn streams_are_independent(seed in any::<u64>()) {
        let spec = GameSpec::default_scenario(4, 3);
        let a = spec.generate(&mut rng(seed, 10));
        let b = spec.generate(&mut rng(seed, 11));
        prop_assert_ne!(a, b);
    }

    /// The shared `BeliefModel` contract: at `intensity = 0` every model is
    /// the uninformed limit — the generated game is **bit-identical** to
    /// the common-uniform-prior game on the same true network, whatever the
    /// belief stream the model consumed.
    #[test]
    fn every_belief_model_at_zero_intensity_is_the_uniform_beliefs_game(
        users in 2usize..=6,
        links in 2usize..=4,
        states in 1usize..=5,
        seed in any::<u64>(),
        belief_stream in any::<u64>(),
    ) {
        let spec = GameSpec {
            users,
            links,
            states,
            weights: WeightDist::Uniform { lo: 0.5, hi: 3.0 },
            capacities: CapacityDist::TwoLevel { lo: 1.0, hi: 4.0 },
            beliefs: BeliefKind::CommonUniform,
        };
        let uniform = spec.generate_perturbed(&mut rng(seed, 0), &mut rng(seed, belief_stream));
        for kind in BeliefModelKind::ALL {
            let model = kind.build();
            let game = spec.generate_with_beliefs(
                model.as_ref(),
                0.0,
                &mut rng(seed, 0),
                &mut rng(seed, belief_stream),
            );
            prop_assert_eq!(&game, &uniform, "{} drifted at intensity 0", kind.id());
        }
    }

    /// Positive intensity gives every model its own structured spread,
    /// deterministically in the belief stream.
    #[test]
    fn belief_models_are_stream_deterministic_at_positive_intensity(
        seed in any::<u64>(),
        intensity in 0.25f64..6.0,
    ) {
        let spec = GameSpec::default_scenario(4, 3);
        for kind in BeliefModelKind::ALL {
            let model = kind.build();
            let a = spec.generate_with_beliefs(model.as_ref(), intensity, &mut rng(seed, 0), &mut rng(seed, 77));
            let b = spec.generate_with_beliefs(model.as_ref(), intensity, &mut rng(seed, 0), &mut rng(seed, 77));
            prop_assert_eq!(&a, &b);
            // The network never depends on the belief stream.
            let c = spec.generate_with_beliefs(model.as_ref(), intensity, &mut rng(seed, 0), &mut rng(seed, 78));
            prop_assert_eq!(a.states(), c.states());
            prop_assert_eq!(a.weights(), c.weights());
        }
    }
}
