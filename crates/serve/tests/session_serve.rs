//! End-to-end resident-session tests: upload → edit stream → release over
//! a real socket, with every repaired answer re-certified client-side, plus
//! the pooled-client reuse contract.

use netuncert_core::prelude::{is_pure_nash, EffectiveGame, LinkLoads, PureProfile, Tolerance};
use netuncert_serve::protocol::{
    EditRequest, ReleaseRequest, RequestBody, ResponseBody, UploadRequest,
};
use netuncert_serve::state::ServeConfig;
use netuncert_serve::workload::churn_session;
use netuncert_serve::{Client, ClientPool, Server};

/// Binds an ephemeral service and returns (address, run-thread handle).
fn start(
    config: &ServeConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let response = client.call(RequestBody::Shutdown).expect("shutdown ack");
    assert!(matches!(response.body, ResponseBody::Shutdown));
}

/// Drives one churn session over `client`, mirroring the game locally and
/// certifying every answer. Returns how many repairs fell back cold.
fn drive_session(client: &mut Client, seed: u64, edits: usize) -> u64 {
    let (instance, wire_edits) = churn_session(seed, 8, 3, edits);
    let mut game = EffectiveGame::from_rows(instance.weights.clone(), instance.capacities.clone())
        .expect("workload instances are valid");
    let tol = Tolerance::default();

    let response = client
        .call(RequestBody::Upload(UploadRequest { instance }))
        .expect("upload reply");
    let ResponseBody::Upload(upload) = response.body else {
        panic!("upload did not pin: {:?}", response.body);
    };
    let profile = PureProfile::new(upload.solution.choices.clone());
    let zero = LinkLoads::zero(game.links());
    assert!(
        is_pure_nash(&game, &profile, &zero, tol),
        "upload answer must certify"
    );

    let mut fallbacks = 0;
    for (index, edit) in wire_edits.iter().enumerate() {
        game = game.apply_edit(&edit.to_edit()).expect("valid stream");
        let response = client
            .call(RequestBody::Edit(EditRequest {
                session: upload.session,
                edit: edit.clone(),
            }))
            .expect("edit reply");
        let ResponseBody::Edit(reply) = response.body else {
            panic!("edit {index} did not repair: {:?}", response.body);
        };
        assert_eq!(reply.session, upload.session);
        let repaired = PureProfile::new(reply.solution.choices.clone());
        let zero = LinkLoads::zero(game.links());
        assert!(
            is_pure_nash(&game, &repaired, &zero, tol),
            "edit {index} answer must certify on the edited game"
        );
        assert!(reply.repair.restarts >= 1);
        if reply.repair.fallback_cold {
            fallbacks += 1;
        }
    }

    let response = client
        .call(RequestBody::Release(ReleaseRequest {
            session: upload.session,
        }))
        .expect("release reply");
    let ResponseBody::Release(release) = response.body else {
        panic!("release failed: {:?}", response.body);
    };
    assert_eq!(release.edits, edits as u64);
    fallbacks
}

/// The tentpole contract over a real socket, both framings: a client
/// uploads once, streams edits without re-shipping the instance, and every
/// answer is a certified equilibrium of the *edited* game.
#[test]
fn sessions_stream_edits_and_every_answer_certifies() {
    let (addr, handle) = start(&ServeConfig::default());

    let mut json = Client::connect(addr).expect("connect json");
    drive_session(&mut json, 21, 10);
    // The binary framing carries the session verbs through the same derived
    // value encoding.
    let mut binary = Client::connect_binary(addr).expect("connect binary");
    drive_session(&mut binary, 22, 6);

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}

/// The pool hands connections back out instead of redialling, caps its
/// idle list, and lets callers discard a possibly-poisoned connection.
#[test]
fn client_pool_reuses_connections_across_checkouts() {
    let (addr, handle) = start(&ServeConfig::default());
    let pool = ClientPool::json(addr.to_string(), 2);
    assert_eq!(pool.idle_count(), 0);

    // A checked-out connection answers, and its drop parks it for reuse.
    {
        let mut client = pool.get().expect("checkout");
        let response = client.call(RequestBody::Stats).expect("stats");
        assert!(matches!(response.body, ResponseBody::Stats(_)));
    }
    assert_eq!(pool.idle_count(), 1);

    // The parked connection is the one handed back out (the pool is empty
    // again while it is checked out), and a full session runs fine on it.
    {
        let mut client = pool.get().expect("reuse");
        assert_eq!(pool.idle_count(), 0);
        drive_session(&mut client, 23, 4);
    }
    assert_eq!(pool.idle_count(), 1);

    // Three concurrent checkouts dial extra connections; returns park at
    // most `max_idle` of them.
    {
        let mut a = pool.get().expect("a");
        let b = pool.get().expect("b");
        let c = pool.get().expect("c");
        let response = a.call(RequestBody::Stats).expect("stats");
        assert!(matches!(response.body, ResponseBody::Stats(_)));
        drop(a);
        drop(b);
        c.discard(); // pretend c hit a transport error
    }
    assert_eq!(pool.idle_count(), 2);

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}
