//! Malformed-wire-request tests: every bad input becomes a *typed*
//! protocol error — the service never panics and (except for unframeable
//! oversize lines) never drops the connection.

use netuncert_serve::policy::{BracketLeaf, Policy, SolveLeaf, TimeoutPolicy};
use netuncert_serve::protocol::{
    ErrorKind, Request, RequestBody, Response, ResponseBody, SolveRequest, WireInstance,
};
use netuncert_serve::state::{ServeConfig, ServeState};
use netuncert_serve::workload::{default_solve_policy, wire_instance};
use netuncert_serve::{Client, Server};

fn state() -> ServeState {
    ServeState::new(&ServeConfig::default())
}

fn solve_request(id: u64, instance: WireInstance, policy: Policy) -> String {
    let request = Request {
        id,
        body: RequestBody::Solve(SolveRequest { instance, policy }),
    };
    serde_json::to_string(&request).unwrap()
}

fn error_kind(line: &str) -> Option<(u64, ErrorKind)> {
    let response: Response = serde_json::from_str(line).ok()?;
    match response.body {
        ResponseBody::Error(err) => Some((response.id, err.kind)),
        _ => None,
    }
}

#[test]
fn truncated_json_yields_a_typed_parse_error() {
    let state = state();
    let full = solve_request(9, wire_instance(4, 3, 1), default_solve_policy());
    for cut in [1, full.len() / 2, full.len() - 1] {
        let line = &full[..cut];
        let (id, kind) = error_kind(&state.handle_line(line))
            .unwrap_or_else(|| panic!("no typed error for truncation at {cut}"));
        // The id is unrecoverable from a broken line; the protocol pins 0.
        assert_eq!(id, 0);
        assert_eq!(kind, ErrorKind::Parse);
    }
}

#[test]
fn garbage_and_empty_lines_yield_parse_errors() {
    let state = state();
    for line in ["", "   ", "not json at all", "{\"id\":true}", "[1,2,3]"] {
        let (_, kind) = error_kind(&state.handle_line(line))
            .unwrap_or_else(|| panic!("no typed error for {line:?}"));
        assert_eq!(kind, ErrorKind::Parse);
    }
}

#[test]
fn unknown_solver_ids_yield_unknown_policy() {
    let state = state();
    let policy = Policy::Solve(SolveLeaf {
        solvers: vec!["gradient_descent".into()],
        restarts: None,
        max_steps: None,
    });
    let line = solve_request(3, wire_instance(4, 3, 1), policy);
    let (id, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
    assert_eq!(id, 3);
    assert_eq!(kind, ErrorKind::UnknownPolicy);
}

#[test]
fn unknown_bracket_backends_yield_unknown_policy() {
    let state = state();
    let request = Request {
        id: 4,
        body: RequestBody::Bracket(netuncert_serve::protocol::BracketRequest {
            instance: wire_instance(4, 3, 1),
            policy: Policy::Bracket(BracketLeaf {
                backends: vec!["simulated_annealing".into()],
                width_goal: None,
                restarts: None,
            }),
        }),
    };
    let line = serde_json::to_string(&request).unwrap();
    let (_, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
    assert_eq!(kind, ErrorKind::UnknownPolicy);
}

#[test]
fn zero_and_negative_deadlines_yield_invalid_deadline() {
    let state = state();
    for ms in [0i64, -1, -5_000] {
        let policy = Policy::Timeout(TimeoutPolicy {
            ms,
            lower: Box::new(default_solve_policy()),
        });
        let line = solve_request(7, wire_instance(4, 3, 1), policy);
        let (id, kind) = error_kind(&state.handle_line(&line))
            .unwrap_or_else(|| panic!("no typed error for ms={ms}"));
        assert_eq!(id, 7);
        assert_eq!(kind, ErrorKind::InvalidDeadline);
    }
}

/// Regression: an astronomical deadline used to overflow
/// `Instant::now() + Duration::from_millis(ms)` and panic the worker.
/// Anything beyond the 1-hour cap is now rejected at validation with a
/// typed error, all the way up to `i64::MAX`.
#[test]
fn astronomical_deadlines_are_rejected_not_overflowed() {
    let state = state();
    for ms in [
        netuncert_serve::policy::MAX_DEADLINE_MS + 1,
        u32::MAX as i64,
        i64::MAX / 1_000,
        i64::MAX,
    ] {
        let policy = Policy::Timeout(TimeoutPolicy {
            ms,
            lower: Box::new(default_solve_policy()),
        });
        let line = solve_request(8, wire_instance(4, 3, 1), policy);
        let (id, kind) = error_kind(&state.handle_line(&line))
            .unwrap_or_else(|| panic!("no typed error for ms={ms}"));
        assert_eq!(id, 8);
        assert_eq!(kind, ErrorKind::InvalidDeadline);
    }
    // The cap itself is a legal deadline.
    let policy = Policy::Timeout(TimeoutPolicy {
        ms: netuncert_serve::policy::MAX_DEADLINE_MS,
        lower: Box::new(default_solve_policy()),
    });
    let line = solve_request(9, wire_instance(4, 3, 1), policy);
    assert!(
        error_kind(&state.handle_line(&line)).is_none(),
        "the cap must be accepted"
    );
}

#[test]
fn oversize_instances_yield_oversize() {
    let state = state();
    let limits = state.limits();
    // One user too many.
    let users = limits.max_users + 1;
    let instance = WireInstance {
        weights: vec![1.0; users],
        capacities: vec![vec![10.0, 20.0]; users],
        initial: None,
    };
    let line = solve_request(11, instance, default_solve_policy());
    let (id, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
    assert_eq!(id, 11);
    assert_eq!(kind, ErrorKind::Oversize);

    // One link too many.
    let links = limits.max_links + 1;
    let instance = WireInstance {
        weights: vec![1.0; 2],
        capacities: vec![vec![10.0; links]; 2],
        initial: None,
    };
    let line = solve_request(12, instance, default_solve_policy());
    let (_, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
    assert_eq!(kind, ErrorKind::Oversize);
}

#[test]
fn invalid_instances_yield_invalid_request_not_panics() {
    let state = state();
    let cases: Vec<WireInstance> = vec![
        // Negative weight.
        WireInstance {
            weights: vec![1.0, -2.0],
            capacities: vec![vec![10.0, 20.0]; 2],
            initial: None,
        },
        // NaN capacity.
        WireInstance {
            weights: vec![1.0, 2.0],
            capacities: vec![vec![10.0, f64::NAN], vec![10.0, 20.0]],
            initial: None,
        },
        // Row-count mismatch.
        WireInstance {
            weights: vec![1.0, 2.0, 3.0],
            capacities: vec![vec![10.0, 20.0]; 2],
            initial: None,
        },
        // Initial-loads length mismatch.
        WireInstance {
            weights: vec![1.0, 2.0],
            capacities: vec![vec![10.0, 20.0]; 2],
            initial: Some(vec![0.0, 0.0, 0.0]),
        },
    ];
    for (i, instance) in cases.into_iter().enumerate() {
        let line = solve_request(20 + i as u64, instance, default_solve_policy());
        let (_, kind) = error_kind(&state.handle_line(&line))
            .unwrap_or_else(|| panic!("case {i}: no typed error"));
        assert_eq!(kind, ErrorKind::InvalidRequest, "case {i}");
    }
}

#[test]
fn bad_width_goals_yield_invalid_request() {
    // width_goal <= 1.0 or non-finite would panic inside OptEngine if it
    // were not pre-validated at the protocol boundary. Non-finite goals
    // cannot travel as JSON numbers (they serialise as null), so they are
    // exercised through the typed in-process entry point instead.
    let state = state();
    for goal in [1.0, 0.5, -3.0, f64::NAN, f64::INFINITY] {
        let request = Request {
            id: 30,
            body: RequestBody::Bracket(netuncert_serve::protocol::BracketRequest {
                instance: wire_instance(4, 3, 1),
                policy: Policy::Bracket(BracketLeaf {
                    backends: vec!["lpt".into()],
                    width_goal: Some(goal),
                    restarts: None,
                }),
            }),
        };
        let response = state.handle_request(request);
        let ResponseBody::Error(err) = response.body else {
            panic!("no typed error for width_goal={goal}");
        };
        assert_eq!(err.kind, ErrorKind::InvalidRequest, "width_goal={goal}");
    }
}

#[test]
fn mode_mismatched_and_malformed_trees_yield_typed_errors() {
    let state = state();
    // A Bracket leaf under a Solve request.
    let policy = Policy::Bracket(BracketLeaf {
        backends: vec!["lpt".into()],
        width_goal: None,
        restarts: None,
    });
    let line = solve_request(40, wire_instance(4, 3, 1), policy);
    let (_, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
    assert_eq!(kind, ErrorKind::InvalidRequest);

    // Empty Fallback.
    let line = solve_request(41, wire_instance(4, 3, 1), Policy::Fallback(vec![]));
    let (_, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
    assert_eq!(kind, ErrorKind::InvalidRequest);

    // Nesting beyond MAX_POLICY_DEPTH.
    let mut deep = default_solve_policy();
    for _ in 0..netuncert_serve::policy::MAX_POLICY_DEPTH + 1 {
        deep = Policy::Fallback(vec![deep]);
    }
    let line = solve_request(42, wire_instance(4, 3, 1), deep);
    let (_, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
    assert_eq!(kind, ErrorKind::InvalidRequest);
}

/// The socket-level guarantee: a connection that sent garbage keeps
/// working — the typed error is written and the next request answers.
#[test]
fn a_connection_survives_malformed_requests() {
    let server = Server::bind("127.0.0.1:0", &ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    // Garbage first.
    let raw = client
        .call_line("{\"id\": 5, \"body\"")
        .expect("typed reply");
    let (_, kind) = error_kind(&raw).expect("typed error");
    assert_eq!(kind, ErrorKind::Parse);
    // Same connection still serves a real request.
    let response = client
        .call(RequestBody::Solve(SolveRequest {
            instance: wire_instance(4, 3, 1),
            policy: default_solve_policy(),
        }))
        .expect("solve reply");
    assert!(matches!(response.body, ResponseBody::Solve(_)));
    // And still reports stats.
    let response = client.call(RequestBody::Stats).expect("stats reply");
    assert!(matches!(response.body, ResponseBody::Stats(_)));

    // Shut the service down so the server thread joins.
    let response = client.call(RequestBody::Shutdown).expect("shutdown ack");
    assert!(matches!(response.body, ResponseBody::Shutdown));
    handle.join().expect("server thread").expect("clean run");
}

/// An unframeably long line gets a typed Oversize error before the
/// connection closes; other connections are unaffected.
#[test]
fn oversize_lines_get_a_typed_error_then_close() {
    let server = Server::bind("127.0.0.1:0", &ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let state = server.state();
    let handle = std::thread::spawn(move || server.run());

    let max = state.limits().max_line_bytes;
    let mut client = Client::connect(addr).expect("connect");
    let huge = "x".repeat(max + 16);
    let raw = client.call_line(&huge).expect("typed reply before close");
    let (_, kind) = error_kind(&raw).expect("typed error");
    assert_eq!(kind, ErrorKind::Oversize);

    // A *new* connection still works.
    let mut fresh = Client::connect(addr).expect("reconnect");
    let response = fresh.call(RequestBody::Stats).expect("stats reply");
    assert!(matches!(response.body, ResponseBody::Stats(_)));
    let response = fresh.call(RequestBody::Shutdown).expect("shutdown ack");
    assert!(matches!(response.body, ResponseBody::Shutdown));
    handle.join().expect("server thread").expect("clean run");
}

/// Session-store eviction releases the pinned state and answers stale ids
/// with *typed* errors — never a panic, never a silent cold solve. The
/// evicted-vs-never-existed distinction is part of the wire contract.
#[test]
fn stale_session_ids_yield_typed_session_errors() {
    use netuncert_serve::protocol::{EditRequest, ReleaseRequest, UploadRequest, WireEdit};

    // Capacity 1: the second upload must evict the first session.
    let state = ServeState::new(&ServeConfig {
        session_capacity: 1,
        ..ServeConfig::default()
    });
    let upload = |id: u64, seed: u64| {
        let request = Request {
            id,
            body: RequestBody::Upload(UploadRequest {
                instance: wire_instance(4, 3, seed),
            }),
        };
        let raw = state.handle_line(&serde_json::to_string(&request).unwrap());
        let response: Response = serde_json::from_str(&raw).unwrap();
        match response.body {
            ResponseBody::Upload(reply) => reply.session,
            other => panic!("upload {id} did not pin: {other:?}"),
        }
    };
    let edit_line = |id: u64, session: u64| {
        let request = Request {
            id,
            body: RequestBody::Edit(EditRequest {
                session,
                edit: WireEdit::Capacity {
                    user: 0,
                    link: 0,
                    capacity: 7.0,
                },
            }),
        };
        serde_json::to_string(&request).unwrap()
    };

    let first = upload(1, 10);
    let second = upload(2, 11);
    assert_ne!(first, second);

    // The evicted session's id answers SessionEvicted, echoing the request
    // id; the live session still repairs.
    let (id, kind) = error_kind(&state.handle_line(&edit_line(3, first))).expect("typed error");
    assert_eq!((id, kind), (3, ErrorKind::SessionEvicted));
    let raw = state.handle_line(&edit_line(4, second));
    let response: Response = serde_json::from_str(&raw).unwrap();
    assert!(
        matches!(response.body, ResponseBody::Edit(_)),
        "live session must repair: {raw}"
    );

    // An id never allocated is a different typed answer.
    let (_, kind) = error_kind(&state.handle_line(&edit_line(5, 999))).expect("typed error");
    assert_eq!(kind, ErrorKind::UnknownSession);

    // Releasing the evicted id is typed too; releasing the live one works
    // once and then *it* is stale.
    let release_line = |id: u64, session: u64| {
        serde_json::to_string(&Request {
            id,
            body: RequestBody::Release(ReleaseRequest { session }),
        })
        .unwrap()
    };
    let (_, kind) = error_kind(&state.handle_line(&release_line(6, first))).expect("typed error");
    assert_eq!(kind, ErrorKind::SessionEvicted);
    let raw = state.handle_line(&release_line(7, second));
    let response: Response = serde_json::from_str(&raw).unwrap();
    let ResponseBody::Release(reply) = response.body else {
        panic!("release failed: {raw}");
    };
    assert_eq!(reply.edits, 1);
    let (_, kind) = error_kind(&state.handle_line(&edit_line(8, second))).expect("typed error");
    assert_eq!(kind, ErrorKind::SessionEvicted);
}

/// A structurally invalid edit (bad user index, bad capacity) is a typed
/// Engine error and leaves the session intact and certified.
#[test]
fn invalid_edits_are_typed_and_leave_the_session_pinned() {
    use netuncert_serve::protocol::{EditRequest, UploadRequest, WireEdit};

    let state = state();
    let request = Request {
        id: 1,
        body: RequestBody::Upload(UploadRequest {
            instance: wire_instance(4, 3, 2),
        }),
    };
    let raw = state.handle_line(&serde_json::to_string(&request).unwrap());
    let response: Response = serde_json::from_str(&raw).unwrap();
    let ResponseBody::Upload(reply) = response.body else {
        panic!("upload failed: {raw}");
    };
    let session = reply.session;
    for bad in [
        WireEdit::Leave { user: 99 },
        WireEdit::Capacity {
            user: 0,
            link: 99,
            capacity: 1.0,
        },
        WireEdit::Capacity {
            user: 0,
            link: 0,
            capacity: -1.0,
        },
        WireEdit::Join {
            weight: 1.0,
            capacities: vec![1.0], // wrong row length
        },
    ] {
        let line = serde_json::to_string(&Request {
            id: 9,
            body: RequestBody::Edit(EditRequest { session, edit: bad }),
        })
        .unwrap();
        let (id, kind) = error_kind(&state.handle_line(&line)).expect("typed error");
        assert_eq!((id, kind), (9, ErrorKind::Engine));
    }
    // The session survived every rejected edit and still repairs.
    let line = serde_json::to_string(&Request {
        id: 10,
        body: RequestBody::Edit(EditRequest {
            session,
            edit: WireEdit::Capacity {
                user: 0,
                link: 0,
                capacity: 9.0,
            },
        }),
    })
    .unwrap();
    let response: Response = serde_json::from_str(&state.handle_line(&line)).unwrap();
    assert!(matches!(response.body, ResponseBody::Edit(_)));
}
