//! The service under pressure: a saturated bounded queue must answer
//! typed `Busy` rejections promptly while warm-tier requests keep
//! flowing, a drain must never silently drop a half-received frame, tiny
//! deadlines over adversarial policy trees must never panic, and the
//! stats counters must stay coherent under concurrency.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use serde::Deserialize;

use netuncert_serve::frame;
use netuncert_serve::policy::{BracketLeaf, Policy, SolveLeaf, TimeoutPolicy};
use netuncert_serve::protocol::{
    BracketRequest, ErrorKind, Request, RequestBody, Response, ResponseBody, SolveRequest,
};
use netuncert_serve::state::{ServeConfig, ServeState};
use netuncert_serve::workload::{default_solve_policy, wire_instance};
use netuncert_serve::{Client, Server};

/// Binds an ephemeral service and returns (address, run-thread handle).
fn start(
    config: &ServeConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let response = client.call(RequestBody::Shutdown).expect("shutdown ack");
    assert!(matches!(response.body, ResponseBody::Shutdown));
}

/// A deadline-bounded local-search grind on a big instance: occupies a
/// worker for roughly `ms` milliseconds, cannot take the reader fast path
/// (it carries a `Timeout`), and ends in a typed deadline outcome.
fn slow_solve(id: u64, seed: u64, ms: i64) -> Request {
    Request {
        id,
        body: RequestBody::Solve(SolveRequest {
            instance: wire_instance(512, 16, seed),
            policy: Policy::Timeout(TimeoutPolicy {
                ms,
                lower: Box::new(Policy::Solve(SolveLeaf {
                    solvers: vec!["local_search".into()],
                    restarts: Some(5_000_000),
                    max_steps: None,
                })),
            }),
        }),
    }
}

/// A cold tiny solve (unique per seed): valid, cheap once scheduled, but
/// not answerable from the warm tier, so it must pass the admission gate.
fn cold_probe(id: u64, seed: u64) -> Request {
    Request {
        id,
        body: RequestBody::Solve(SolveRequest {
            instance: wire_instance(4, 3, seed),
            policy: default_solve_policy(),
        }),
    }
}

/// Saturating a 1-worker, depth-2 server yields typed `Busy` rejections
/// that arrive promptly (from the reader, not the queue), carry the
/// observed depth and the cap, leave the warm tier fully responsive, and
/// are tallied exactly in `Stats.rejected`.
#[test]
fn saturated_queue_answers_typed_busy_while_warm_requests_keep_flowing() {
    let config = ServeConfig {
        workers: 1,
        queue_depth: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(&config);

    // Warm the tier before the flood.
    let warm_line = serde_json::to_string(&cold_probe(1, 5)).unwrap();
    let mut warm_client = Client::connect(addr).expect("warm connect");
    let warm_answer = warm_client.call_line(&warm_line).expect("warm solve");

    // Three slow solves: one occupies the single worker, two fill the
    // queue. Each lane reports its response so Busy rejections (possible
    // if the lanes race the worker's first pop) are counted too.
    let mut floods = Vec::new();
    for lane in 0..3u64 {
        floods.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("flood connect");
            let line = serde_json::to_string(&slow_solve(1, 1_000 + lane, 1_500)).unwrap();
            let raw = client.call_line(&line).expect("flood reply");
            serde_json::from_str::<Response>(&raw).expect("flood reply parses")
        }));
    }
    std::thread::sleep(Duration::from_millis(300));

    // A cold probe now hits the admission gate.
    let mut probe = Client::connect(addr).expect("probe connect");
    let mut busy_from_probes = 0u64;
    for attempt in 0..10u64 {
        let line = serde_json::to_string(&cold_probe(attempt + 2, 9_000 + attempt)).unwrap();
        let started = Instant::now();
        let raw = probe.call_line(&line).expect("probe reply");
        let elapsed = started.elapsed();
        let response: Response = serde_json::from_str(&raw).expect("probe reply parses");
        if let ResponseBody::Error(err) = &response.body {
            assert_eq!(err.kind, ErrorKind::Busy, "unexpected error: {err:?}");
            assert_eq!(err.capacity, Some(2), "capacity must ride the error");
            assert_eq!(err.depth, Some(2), "rejection happens at the cap");
            // Rejection is reader-side admission control, never queueing:
            // it must answer in network time, not solve time.
            assert!(
                elapsed < Duration::from_millis(500),
                "Busy took {elapsed:?}"
            );
            busy_from_probes += 1;
            break;
        }
        // The probe slipped into a freed slot and was answered; try again.
    }

    // The warm tier keeps answering (byte-identically) while the pool is
    // saturated, because cached requests never enter the queue.
    let started = Instant::now();
    let again = warm_client.call_line(&warm_line).expect("warm repeat");
    assert_eq!(again, warm_answer, "warm answers must replay exactly");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "warm answer stalled behind the flood"
    );

    let mut busy_total = busy_from_probes;
    for flood in floods {
        let response = flood.join().expect("flood thread");
        match response.body {
            ResponseBody::Error(err) => {
                assert_eq!(err.kind, ErrorKind::Busy, "unexpected flood error: {err:?}");
                busy_total += 1;
            }
            ResponseBody::Solve(_) => {}
            other => panic!("unexpected flood reply: {other:?}"),
        }
    }
    assert!(busy_total > 0, "the flood never produced a Busy rejection");

    let mut client = Client::connect(addr).expect("stats connect");
    let response = client.call(RequestBody::Stats).expect("stats");
    let ResponseBody::Stats(stats) = response.body else {
        panic!("expected stats, got {response:?}");
    };
    assert_eq!(
        stats.rejected, busy_total,
        "every observed Busy (and nothing else) must be tallied"
    );
    assert!(
        stats.errors + stats.deadline_hits <= stats.requests,
        "inconsistent snapshot: {stats:?}"
    );

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}

/// A connection that has sent *half* a JSON line when the drain begins is
/// not silently dropped: after a short grace the reader answers the
/// started frame with a typed `Shutdown` error, and the service still
/// exits cleanly (no hang).
#[test]
fn half_received_json_frame_gets_a_typed_shutdown_error_on_drain() {
    let (addr, handle) = start(&ServeConfig::default());

    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"{\"id\":7,\"body\":{\"type\":\"St")
        .expect("half frame");
    raw.flush().expect("flush");
    // Give the reader time to buffer the partial line before draining.
    std::thread::sleep(Duration::from_millis(120));

    shutdown(addr);

    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reply = String::new();
    BufReader::new(raw)
        .read_line(&mut reply)
        .expect("the started frame must be answered, not dropped");
    let response: Response = serde_json::from_str(reply.trim_end()).expect("reply parses");
    assert_eq!(
        response.id, 0,
        "the frame never completed; id is unknowable"
    );
    let ResponseBody::Error(err) = response.body else {
        panic!("expected a typed error, got {reply}");
    };
    assert_eq!(err.kind, ErrorKind::Shutdown);

    handle.join().expect("server thread").expect("clean run");
}

/// The same guarantee on the binary framing: a connection that has sent
/// the magic byte and part of a frame header gets a typed binary-framed
/// `Shutdown` error when the drain gives up on it.
#[test]
fn half_received_binary_frame_gets_a_typed_shutdown_error_on_drain() {
    let (addr, handle) = start(&ServeConfig::default());

    let mut raw = TcpStream::connect(addr).expect("raw connect");
    // Magic byte plus two of the four header bytes: a started frame.
    raw.write_all(&[frame::BINARY_MAGIC, 0x10, 0x00])
        .expect("half header");
    raw.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(120));

    shutdown(addr);

    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let payload = frame::read_frame(&mut raw, 1 << 20).expect("typed binary reply");
    let value = frame::decode_value(&payload).expect("payload decodes");
    let response = Response::from_value(&value).expect("payload is a response");
    assert_eq!(response.id, 0);
    let ResponseBody::Error(err) = response.body else {
        panic!("expected a typed error, got {response:?}");
    };
    assert_eq!(err.kind, ErrorKind::Shutdown);

    handle.join().expect("server thread").expect("clean run");
}

/// Counter bookkeeping is exact when requests arrive in sequence: one
/// bump per request, classified once, with `rejected` untouched.
#[test]
fn counters_are_exact_in_sequence() {
    let state = ServeState::new(&ServeConfig::default());

    let ok = serde_json::to_string(&cold_probe(1, 11)).unwrap();
    state.handle_line(&ok);
    state.handle_line(&ok); // warm repeat still counts as a request

    let unknown = serde_json::to_string(&Request {
        id: 2,
        body: RequestBody::Solve(SolveRequest {
            instance: wire_instance(4, 3, 11),
            policy: Policy::Solve(SolveLeaf {
                solvers: vec!["no_such_solver".into()],
                restarts: None,
                max_steps: None,
            }),
        }),
    })
    .unwrap();
    state.handle_line(&unknown);

    let deadline = serde_json::to_string(&slow_solve(3, 12, 1)).unwrap();
    let raw = state.handle_line(&deadline);
    let response: Response = serde_json::from_str(&raw).expect("deadline reply parses");
    let ResponseBody::Solve(reply) = response.body else {
        panic!("expected a solve reply, got {raw}");
    };
    // A 1 ms budget against a 5M-restart grind must hit its deadline; the
    // classification below depends on it.
    assert_eq!(
        reply.outcome,
        netuncert_serve::protocol::SolveOutcome::DeadlineExceeded
    );

    // Parse errors are answered but never counted (no request existed).
    state.handle_line("not json");

    let stats_line = serde_json::to_string(&Request {
        id: 4,
        body: RequestBody::Stats,
    })
    .unwrap();
    let raw = state.handle_line(&stats_line);
    let response: Response = serde_json::from_str(&raw).expect("stats parses");
    let ResponseBody::Stats(stats) = response.body else {
        panic!("expected stats, got {raw}");
    };
    // The snapshot is cut before the Stats request itself is tallied.
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.deadline_hits, 1);
    assert_eq!(stats.rejected, 0);
}

/// A fresh state's stats gauges describe an idle service exactly: the
/// configured queue capacity, an empty queue, and no busy workers. After
/// a compute request, the `Metrics` verb returns a populated registry
/// whose serve-side instruments reflect that request.
#[test]
fn stats_gauges_and_metrics_reply_reflect_the_live_registry() {
    let config = ServeConfig {
        queue_depth: 7,
        ..ServeConfig::default()
    };
    let state = ServeState::new(&config);

    let stats_line = serde_json::to_string(&Request {
        id: 1,
        body: RequestBody::Stats,
    })
    .unwrap();
    let raw = state.handle_line(&stats_line);
    let response: Response = serde_json::from_str(&raw).expect("stats parses");
    let ResponseBody::Stats(stats) = response.body else {
        panic!("expected stats, got {raw}");
    };
    assert_eq!(stats.queue_capacity, 7, "capacity mirrors the config");
    assert_eq!(stats.queue_depth, 0, "no queue exists in-process");
    assert_eq!(stats.busy_workers, 0, "no workers exist in-process");

    // One compute request answered in-process. `handle_line` bypasses
    // admission (no queue-wait/service records), but the key, cache, and
    // span instruments must all move.
    let solve_line = serde_json::to_string(&cold_probe(2, 17)).unwrap();
    state.handle_line(&solve_line);

    let metrics_line = serde_json::to_string(&Request {
        id: 3,
        body: RequestBody::Metrics,
    })
    .unwrap();
    let raw = state.handle_line(&metrics_line);
    let response: Response = serde_json::from_str(&raw).expect("metrics parses");
    let ResponseBody::Metrics(metrics) = response.body else {
        panic!("expected metrics, got {raw}");
    };

    let gauge = |name: &str| {
        metrics
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .value
    };
    assert_eq!(gauge("serve.queue_capacity"), 7);
    assert_eq!(gauge("serve.queue_depth"), 0);
    assert_eq!(gauge("serve.busy_workers"), 0);

    let histogram = |name: &str| {
        metrics
            .histograms
            .iter()
            .find(|h| h.name == name)
            .unwrap_or_else(|| panic!("histogram {name} missing"))
    };
    // The request key was hashed once for the solve (Stats/Metrics carry
    // no key), and the cache recorded one keyed lookup plus one fill.
    assert_eq!(histogram("serve.request_key_ns").count, 1);
    assert_eq!(histogram("cache.solve.key_ns").count, 1);
    assert_eq!(histogram("cache.solve.fill_ns").count, 1);
    // The handler opened a root span and the leaf a child span.
    assert_eq!(histogram("span.solve").count, 1);
    assert_eq!(histogram("span.solve_leaf").count, 1);
    for h in &metrics.histograms {
        assert!(
            h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max,
            "disordered percentiles in {}: {h:?}",
            h.name
        );
    }

    // The same solve again is a warm hit: the key is hashed and the cache
    // probed a second time, spans reopen, but nothing refills.
    state.handle_line(&solve_line);
    let raw = state.handle_line(&metrics_line);
    let response: Response = serde_json::from_str(&raw).expect("metrics parses");
    let ResponseBody::Metrics(after) = response.body else {
        panic!("expected metrics, got {raw}");
    };
    let after_histogram = |name: &str| {
        after
            .histograms
            .iter()
            .find(|h| h.name == name)
            .unwrap_or_else(|| panic!("histogram {name} missing"))
    };
    assert_eq!(after_histogram("serve.request_key_ns").count, 2);
    assert_eq!(after_histogram("cache.solve.key_ns").count, 2);
    assert_eq!(after_histogram("cache.solve.fill_ns").count, 1);
    assert_eq!(after_histogram("span.solve").count, 2);
}

/// Under concurrent hammering, every stats snapshot is a single
/// consistent cut: the classified counters never exceed the request
/// count, in any interleaving.
#[test]
fn concurrent_counter_snapshots_are_single_consistent_cuts() {
    let state = Arc::new(ServeState::new(&ServeConfig::default()));
    const THREADS: usize = 4;
    const PER_THREAD: usize = 24;

    let mut workers = Vec::new();
    for lane in 0..THREADS {
        let state = Arc::clone(&state);
        workers.push(std::thread::spawn(move || {
            for index in 0..PER_THREAD {
                let seed = (lane * PER_THREAD + index) as u64;
                // Alternate good solves, unknown-solver errors, and tiny
                // deadlines so every counter moves.
                let request = match index % 3 {
                    0 => cold_probe(1, seed % 7),
                    1 => Request {
                        id: 1,
                        body: RequestBody::Solve(SolveRequest {
                            instance: wire_instance(4, 3, seed % 7),
                            policy: Policy::Solve(SolveLeaf {
                                solvers: vec!["bogus".into()],
                                restarts: None,
                                max_steps: None,
                            }),
                        }),
                    },
                    _ => slow_solve(1, seed % 5, 1),
                };
                let line = serde_json::to_string(&request).unwrap();
                state.handle_line(&line);
            }
        }));
    }

    let stats_line = serde_json::to_string(&Request {
        id: 9,
        body: RequestBody::Stats,
    })
    .unwrap();
    let mut polls = 0u64;
    while workers.iter().any(|w| !w.is_finished()) {
        let raw = state.handle_line(&stats_line);
        let response: Response = serde_json::from_str(&raw).expect("stats parses");
        let ResponseBody::Stats(stats) = response.body else {
            panic!("expected stats, got {raw}");
        };
        assert!(
            stats.errors + stats.deadline_hits <= stats.requests,
            "torn snapshot: {stats:?}"
        );
        polls += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
    for worker in workers {
        worker.join().expect("hammer thread");
    }

    let raw = state.handle_line(&stats_line);
    let response: Response = serde_json::from_str(&raw).expect("stats parses");
    let ResponseBody::Stats(stats) = response.body else {
        panic!("expected stats, got {raw}");
    };
    // Every hammered request plus every poll (Stats counts as a request).
    assert_eq!(stats.requests, (THREADS * PER_THREAD) as u64 + polls);
}

/// A random small solve-policy tree bottoming out in cheap local-search
/// leaves, shaped by `shape` bits. Race children must be Solve leaves
/// (the wire grammar), so nesting happens through Fallback and Timeout.
fn solve_tree(shape: u64, ms: i64, depth: u32) -> Policy {
    let leaf = Policy::Solve(SolveLeaf {
        solvers: vec!["local_search".into()],
        restarts: Some(5 + shape % 20),
        max_steps: None,
    });
    if depth == 0 {
        return leaf;
    }
    match shape % 3 {
        0 => Policy::Timeout(TimeoutPolicy {
            ms,
            lower: Box::new(solve_tree(shape / 3, ms, depth - 1)),
        }),
        1 => Policy::Race(vec![leaf.clone(), leaf]),
        _ => Policy::Fallback(vec![solve_tree(shape / 3, ms, depth - 1), leaf]),
    }
}

/// A random small bracket-policy tree (Fallback/Timeout over Bracket
/// leaves; Race is solve-only).
fn bracket_tree(shape: u64, ms: i64, depth: u32) -> Policy {
    let leaf = Policy::Bracket(BracketLeaf {
        backends: vec!["lpt".into(), "descent".into()],
        width_goal: None,
        restarts: Some(10 + shape % 50),
    });
    if depth == 0 {
        return leaf;
    }
    match shape % 2 {
        0 => Policy::Timeout(TimeoutPolicy {
            ms,
            lower: Box::new(bracket_tree(shape / 2, ms, depth - 1)),
        }),
        _ => Policy::Fallback(vec![bracket_tree(shape / 2, ms, depth - 1), leaf]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Nested `Timeout(Race(..))`/`Fallback` solve trees under 1–4 ms
    /// deadlines always produce a parseable typed response — never a
    /// panic, whatever fires first.
    #[test]
    fn tiny_deadlines_over_random_solve_trees_never_panic(
        shape in 0u64..1_000_000,
        ms in 1i64..5,
        seed in 0u64..1_000,
    ) {
        let state = ServeState::new(&ServeConfig::default());
        let request = Request {
            id: 1,
            body: RequestBody::Solve(SolveRequest {
                instance: wire_instance(24, 6, seed),
                policy: Policy::Timeout(TimeoutPolicy {
                    ms,
                    lower: Box::new(solve_tree(shape, ms, 3)),
                }),
            }),
        };
        let line = serde_json::to_string(&request).unwrap();
        let raw = state.handle_line(&line);
        prop_assert!(
            serde_json::from_str::<Response>(&raw).is_ok(),
            "unparseable reply: {raw}"
        );
    }

    /// The same guarantee for bracket trees, where the deadline can fire
    /// *inside* a leaf (mid-estimation) and yield a partial bracket.
    #[test]
    fn tiny_deadlines_over_random_bracket_trees_never_panic(
        shape in 0u64..1_000_000,
        ms in 1i64..5,
        seed in 0u64..1_000,
    ) {
        let state = ServeState::new(&ServeConfig::default());
        let request = Request {
            id: 1,
            body: RequestBody::Bracket(BracketRequest {
                instance: wire_instance(16, 4, seed),
                policy: Policy::Timeout(TimeoutPolicy {
                    ms,
                    lower: Box::new(bracket_tree(shape, ms, 3)),
                }),
            }),
        };
        let line = serde_json::to_string(&request).unwrap();
        let raw = state.handle_line(&line);
        prop_assert!(
            serde_json::from_str::<Response>(&raw).is_ok(),
            "unparseable reply: {raw}"
        );
    }
}
