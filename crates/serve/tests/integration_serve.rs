//! End-to-end service tests: replay exactness under concurrency, warm-tier
//! behaviour, deadline liveness, and graceful shutdown.

use std::time::{Duration, Instant};

use netuncert_serve::policy::{BracketLeaf, Policy, SolveLeaf, TimeoutPolicy};
use netuncert_serve::protocol::{
    BracketOutcome, BracketRequest, Request, RequestBody, Response, ResponseBody, SolveOutcome,
    SolveRequest,
};
use netuncert_serve::replay::Replayer;
use netuncert_serve::state::ServeConfig;
use netuncert_serve::workload::{default_solve_policy, mixed_request, wire_instance};
use netuncert_serve::{Client, Server};

/// Binds an ephemeral service and returns (address, run-thread handle).
fn start(
    config: &ServeConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let response = client.call(RequestBody::Shutdown).expect("shutdown ack");
    assert!(matches!(response.body, ResponseBody::Shutdown));
}

/// The acceptance gate: >= 100 mixed requests over >= 4 concurrent
/// connections, every answer byte-identical to a direct engine call.
#[test]
fn served_answers_match_direct_engine_calls_byte_for_byte() {
    let (addr, handle) = start(&ServeConfig::default());
    const CONNECTIONS: usize = 4;
    const REQUESTS: usize = 104;

    let mut lanes = Vec::new();
    for lane in 0..CONNECTIONS {
        lanes.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut pairs = Vec::new();
            for index in (lane..REQUESTS).step_by(CONNECTIONS) {
                let line = serde_json::to_string(&mixed_request(77, index)).expect("serialise");
                let response = client.call_line(&line).expect("response");
                pairs.push((line, response));
            }
            pairs
        }));
    }
    let mut pairs = Vec::new();
    for lane in lanes {
        pairs.extend(lane.join().expect("driver thread"));
    }
    assert_eq!(pairs.len(), REQUESTS);

    let mut replayer = Replayer::new(&ServeConfig::default());
    for (request, served) in &pairs {
        if let Some(diff) = replayer.check(request, served) {
            panic!("{diff}");
        }
    }
    assert_eq!(replayer.checked(), REQUESTS);

    // The workload repeats instances, so the shared warm tier must have hits.
    let mut client = Client::connect(addr).expect("connect");
    let response = client.call(RequestBody::Stats).expect("stats");
    let ResponseBody::Stats(stats) = response.body else {
        panic!("expected stats, got {response:?}");
    };
    assert!(
        stats.solve_cache.hits > 0,
        "expected warm-tier hits, got {stats:?}"
    );
    assert!(stats.requests >= REQUESTS as u64);

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}

/// A `Timeout` solve on a large instance returns a typed deadline result
/// quickly, and does NOT block the pool: warm-tier requests on other
/// connections keep answering while it runs.
#[test]
fn timeout_policy_yields_typed_deadline_without_blocking_the_pool() {
    let (addr, handle) = start(&ServeConfig::default());

    // Warm the tier with a small instance on its own connection.
    let warm_line = serde_json::to_string(&Request {
        id: 1,
        body: RequestBody::Solve(SolveRequest {
            instance: wire_instance(4, 3, 5),
            policy: default_solve_policy(),
        }),
    })
    .unwrap();
    let mut warm_client = Client::connect(addr).expect("connect warm");
    let warm_answer = warm_client.call_line(&warm_line).expect("warm solve");

    // A local-search grind on a big instance under a 25 ms deadline: the
    // restart budget alone would take far longer, so only the cooperative
    // between-pass deadline check can stop it.
    let grind = Request {
        id: 2,
        body: RequestBody::Solve(SolveRequest {
            instance: wire_instance(512, 16, 6),
            policy: Policy::Timeout(TimeoutPolicy {
                ms: 25,
                lower: Box::new(Policy::Solve(SolveLeaf {
                    solvers: vec!["local_search".into()],
                    restarts: Some(5_000_000),
                    max_steps: None,
                })),
            }),
        }),
    };
    let grind_line = serde_json::to_string(&grind).unwrap();
    let grinder = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect grind");
        let started = Instant::now();
        let raw = client.call_line(&grind_line).expect("grind reply");
        (raw, started.elapsed())
    });

    // While the grind occupies one worker, cached answers keep flowing.
    let mut served_during = 0;
    let window = Instant::now();
    while window.elapsed() < Duration::from_millis(20) {
        let again = warm_client.call_line(&warm_line).expect("warm repeat");
        assert_eq!(again, warm_answer, "cache hit must replay the cold answer");
        served_during += 1;
    }
    assert!(served_during > 0);

    let (raw, elapsed) = grinder.join().expect("grind thread");
    let response: Response = serde_json::from_str(&raw).expect("parse grind reply");
    let ResponseBody::Solve(reply) = response.body else {
        panic!("expected a solve reply, got {raw}");
    };
    assert_eq!(
        reply.outcome,
        SolveOutcome::DeadlineExceeded,
        "the grind must hit its deadline"
    );
    // Cooperative cancellation is pass-granular: well under a second even
    // though the budget was millions of restarts.
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline took {elapsed:?} to fire"
    );

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}

/// The pass-resumable stepped path must agree with the engine's own
/// monolithic walk: a generous deadline changes nothing but the key.
#[test]
fn stepped_evaluation_matches_the_engine_walk() {
    let (addr, handle) = start(&ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    for seed in [11, 12, 13, 14] {
        let instance = wire_instance(8, 4, seed);
        let direct = client
            .call(RequestBody::Solve(SolveRequest {
                instance: instance.clone(),
                policy: default_solve_policy(),
            }))
            .expect("direct solve");
        let stepped = client
            .call(RequestBody::Solve(SolveRequest {
                instance,
                policy: Policy::Timeout(TimeoutPolicy {
                    ms: 600_000,
                    lower: Box::new(default_solve_policy()),
                }),
            }))
            .expect("stepped solve");
        let (ResponseBody::Solve(direct), ResponseBody::Solve(stepped)) =
            (direct.body, stepped.body)
        else {
            panic!("expected solve replies");
        };
        // Keys hash the whole request body (policies differ); everything
        // the engines produced must be identical.
        assert_eq!(direct.outcome, stepped.outcome, "seed {seed}");
        assert_eq!(direct.attempts, stepped.attempts, "seed {seed}");
    }

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}

/// A deadline that fires *inside* a Bracket leaf (mid-estimation, between
/// estimator units) returns the certified best-so-far bounds as a typed
/// `Partial` outcome — not an empty `DeadlineExceeded`, not a hang until
/// the restart budget runs dry.
#[test]
fn mid_leaf_deadline_returns_typed_partial_bracket() {
    let (addr, handle) = start(&ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // LPT finishes in microseconds even at n=512; the descent grind with a
    // 200k restart budget cannot. A 150 ms deadline therefore lands between
    // estimator units, with certified bounds already in hand.
    let started = Instant::now();
    let response = client
        .call(RequestBody::Bracket(BracketRequest {
            instance: wire_instance(512, 16, 21),
            policy: Policy::Timeout(TimeoutPolicy {
                ms: 150,
                lower: Box::new(Policy::Bracket(BracketLeaf {
                    backends: vec!["lpt".into(), "relaxation".into(), "descent".into()],
                    width_goal: None,
                    restarts: Some(200_000),
                })),
            }),
        }))
        .expect("bracket reply");
    let elapsed = started.elapsed();

    let ResponseBody::Bracket(reply) = response.body else {
        panic!("expected a bracket reply, got {response:?}");
    };
    let BracketOutcome::Partial(brackets) = reply.outcome else {
        panic!("expected a partial bracket, got {:?}", reply.outcome);
    };
    // The partial result carries real certified bounds from the estimators
    // that did complete.
    assert!(brackets.opt1.lower.is_finite() && brackets.opt1.upper.is_finite());
    assert!(brackets.opt1.lower <= brackets.opt1.upper);
    assert!(!brackets.attempts.is_empty(), "no estimator unit completed");
    // Cooperative cancellation is unit-granular: well under the grind's
    // natural runtime even on a slow debug build.
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline took {elapsed:?}"
    );

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}

/// The binary framing is a transport, not a dialect: the same requests
/// through a binary-framed connection answer byte-identically (after
/// canonical re-serialisation) to the JSON framing.
#[test]
fn binary_framing_answers_byte_identically_to_json() {
    let (addr, handle) = start(&ServeConfig::default());
    let mut json = Client::connect(addr).expect("json connect");
    let mut binary = Client::connect_binary(addr).expect("binary connect");

    for index in 0..24 {
        let line = serde_json::to_string(&mixed_request(5, index)).expect("serialise");
        let from_json = json.call_line(&line).expect("json reply");
        let from_binary = binary.call_line(&line).expect("binary reply");
        assert_eq!(
            from_json, from_binary,
            "framing divergence on request {index}"
        );
    }

    shutdown(addr);
    handle.join().expect("server thread").expect("clean run");
}

/// After a Shutdown ack, compute requests are refused with a typed error
/// and the listener drains to a clean exit.
#[test]
fn draining_service_refuses_new_compute_requests() {
    let (addr, handle) = start(&ServeConfig::default());

    let mut client = Client::connect(addr).expect("connect");
    let response = client.call(RequestBody::Shutdown).expect("shutdown ack");
    assert!(matches!(response.body, ResponseBody::Shutdown));

    // The server is draining; a racing second connection either gets a
    // typed Shutdown error or a refused/closed connection (also fine) —
    // never a hang or an untyped failure.
    if let Ok(mut late) = Client::connect(addr) {
        if let Ok(response) = late.call(RequestBody::Solve(SolveRequest {
            instance: wire_instance(4, 3, 9),
            policy: default_solve_policy(),
        })) {
            let ResponseBody::Error(err) = response.body else {
                panic!("draining service answered a compute request");
            };
            assert_eq!(err.kind, netuncert_serve::protocol::ErrorKind::Shutdown);
        }
    }

    handle.join().expect("server thread").expect("clean run");
}
