//! The engine-side state one service instance owns, and the request
//! handler every worker runs.
//!
//! [`ServeState`] is the whole service minus the sockets: the shared
//! LRU warm tier ([`SolveCache`]/[`OptCache`]), the base budgets leaves
//! override, the request counters, and the draining flag. Keeping it
//! socket-free is what makes the replay harness possible — a fresh
//! `ServeState` driven in-process answers byte-for-byte like the TCP
//! service (see [`replay`](crate::replay)).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use netuncert_core::prelude::{
    EffectiveGame, LinkLoads, MixedProfile, OptCache, OptConfig, PureProfile, SolveCache,
    SolverConfig,
};
use netuncert_core::social_cost::{ratio_bracket, sc1, sc2};

use crate::policy::{self, BracketEval, EvalCtx, PolicyMode, SolveEval};
use crate::protocol::{
    deadline_solve_reply, request_key, wire_bracket_reply, wire_cost_report, wire_solve_reply,
    BracketOutcome, BracketReply, ErrorKind, Limits, MeasureOutcome, MeasureReply, Request,
    RequestBody, Response, ResponseBody, StatsReply, WireCacheStats, WireError, WireInstance,
};

/// Service configuration: pool size, warm-tier bounds, wire limits.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Fixed worker-pool size.
    pub workers: usize,
    /// LRU capacity of the solve warm tier, entries.
    pub solve_cache_capacity: usize,
    /// LRU capacity of the opt warm tier, entries.
    pub opt_cache_capacity: usize,
    /// Wire-level size caps.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            solve_cache_capacity: 1 << 16,
            opt_cache_capacity: 1 << 16,
            limits: Limits::default(),
        }
    }
}

/// One service instance's engine-side state (everything but the sockets).
pub struct ServeState {
    solve_cache: Arc<SolveCache>,
    opt_cache: Arc<OptCache>,
    base_solver: SolverConfig,
    base_opt: OptConfig,
    limits: Limits,
    requests: AtomicU64,
    errors: AtomicU64,
    deadline_hits: AtomicU64,
    draining: AtomicBool,
}

impl ServeState {
    /// A fresh state with LRU warm tiers sized by `config`.
    pub fn new(config: &ServeConfig) -> Self {
        ServeState {
            solve_cache: Arc::new(SolveCache::lru(config.solve_cache_capacity)),
            opt_cache: Arc::new(OptCache::lru(config.opt_cache_capacity)),
            base_solver: SolverConfig::default(),
            base_opt: OptConfig::default(),
            limits: config.limits,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deadline_hits: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// The wire-level size caps.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Whether a `Shutdown` request has been accepted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Marks the service as draining; compute requests are rejected with a
    /// typed [`ErrorKind::Shutdown`] from now on.
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Parses one request line and produces one response line (no trailing
    /// newline). Malformed lines become typed [`ErrorKind::Parse`] errors
    /// with id `0` (the id is unrecoverable from a line that did not parse).
    pub fn handle_line(&self, line: &str) -> String {
        let response = match serde_json::from_str::<Request>(line.trim_end()) {
            Ok(request) => self.handle_request(request),
            Err(err) => Response {
                id: 0,
                body: ResponseBody::Error(WireError::new(
                    ErrorKind::Parse,
                    format!("malformed request: {err}"),
                )),
            },
        };
        serde_json::to_string(&response).expect("wire types always serialise")
    }

    /// Dispatches one parsed request. Never panics on request content: every
    /// failure mode is a typed [`WireError`] in the response body.
    pub fn handle_request(&self, request: Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let id = request.id;
        let body = match &request.body {
            RequestBody::Stats => self.stats_reply(),
            RequestBody::Shutdown => {
                self.start_draining();
                ResponseBody::Shutdown
            }
            _ if self.draining() => ResponseBody::Error(WireError::new(
                ErrorKind::Shutdown,
                "service is draining after a Shutdown request",
            )),
            RequestBody::Solve(solve) => {
                let key = request_key(&request.body);
                self.handle_solve(key, &solve.instance, &solve.policy)
            }
            RequestBody::Bracket(bracket) => {
                let key = request_key(&request.body);
                self.handle_bracket(key, &bracket.instance, &bracket.policy)
            }
            RequestBody::Measure(measure) => {
                let key = request_key(&request.body);
                self.handle_measure(key, measure)
            }
        };
        if matches!(body, ResponseBody::Error(_)) {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        Response { id, body }
    }

    /// Validates wire dimensions and builds the engine-side instance.
    fn build_instance(
        &self,
        instance: &WireInstance,
    ) -> Result<(EffectiveGame, LinkLoads), WireError> {
        let users = instance.weights.len();
        let links = instance.capacities.first().map_or(0, Vec::len);
        if users > self.limits.max_users || links > self.limits.max_links {
            return Err(WireError::new(
                ErrorKind::Oversize,
                format!(
                    "instance {users}x{links} exceeds the {}x{} cap",
                    self.limits.max_users, self.limits.max_links
                ),
            ));
        }
        if instance.capacities.len() != users {
            return Err(WireError::new(
                ErrorKind::InvalidRequest,
                format!(
                    "{} capacity rows for {} weights",
                    instance.capacities.len(),
                    users
                ),
            ));
        }
        let game = EffectiveGame::from_rows(instance.weights.clone(), instance.capacities.clone())
            .map_err(|e| WireError::new(ErrorKind::InvalidRequest, e.to_string()))?;
        let initial = match &instance.initial {
            None => LinkLoads::zero(game.links()),
            Some(loads) => LinkLoads::new(loads.clone())
                .map_err(|e| WireError::new(ErrorKind::InvalidRequest, e.to_string()))?,
        };
        if initial.links() != game.links() {
            return Err(WireError::new(
                ErrorKind::InvalidRequest,
                format!(
                    "{} initial loads for {} links",
                    initial.links(),
                    game.links()
                ),
            ));
        }
        Ok((game, initial))
    }

    fn eval_ctx<'a>(&'a self, game: &'a EffectiveGame, initial: &'a LinkLoads) -> EvalCtx<'a> {
        EvalCtx {
            game,
            initial,
            solve_cache: &self.solve_cache,
            opt_cache: &self.opt_cache,
            base_solver: self.base_solver,
            base_opt: self.base_opt,
        }
    }

    fn handle_solve(
        &self,
        key: String,
        instance: &WireInstance,
        policy: &crate::policy::Policy,
    ) -> ResponseBody {
        if let Err(err) = policy::validate(policy, PolicyMode::Solve) {
            return ResponseBody::Error(err);
        }
        let (game, initial) = match self.build_instance(instance) {
            Ok(built) => built,
            Err(err) => return ResponseBody::Error(err),
        };
        match policy::eval_solve(policy, &self.eval_ctx(&game, &initial), None) {
            Ok(SolveEval::Done(solved)) => ResponseBody::Solve(wire_solve_reply(key, &solved)),
            Ok(SolveEval::Deadline) => {
                self.deadline_hits.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Solve(deadline_solve_reply(key))
            }
            Err(err) => ResponseBody::Error(err),
        }
    }

    fn handle_bracket(
        &self,
        key: String,
        instance: &WireInstance,
        policy: &crate::policy::Policy,
    ) -> ResponseBody {
        if let Err(err) = policy::validate(policy, PolicyMode::Bracket) {
            return ResponseBody::Error(err);
        }
        let (game, initial) = match self.build_instance(instance) {
            Ok(built) => built,
            Err(err) => return ResponseBody::Error(err),
        };
        match policy::eval_bracket(policy, &self.eval_ctx(&game, &initial), None) {
            Ok(BracketEval::Done(done)) => {
                ResponseBody::Bracket(wire_bracket_reply(key, &done.outcome))
            }
            Ok(BracketEval::Deadline) => {
                self.deadline_hits.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Bracket(BracketReply {
                    key,
                    outcome: BracketOutcome::DeadlineExceeded,
                })
            }
            Err(err) => ResponseBody::Error(err),
        }
    }

    fn handle_measure(
        &self,
        key: String,
        measure: &crate::protocol::MeasureRequest,
    ) -> ResponseBody {
        if let Err(err) = policy::validate(&measure.policy, PolicyMode::Bracket) {
            return ResponseBody::Error(err);
        }
        let (game, initial) = match self.build_instance(&measure.instance) {
            Ok(built) => built,
            Err(err) => return ResponseBody::Error(err),
        };
        let pure = PureProfile::new(measure.profile.clone());
        if let Err(e) = pure.validate(&game) {
            return ResponseBody::Error(WireError::new(ErrorKind::InvalidRequest, e.to_string()));
        }
        let profile = MixedProfile::from_pure(&pure, game.links());
        match policy::eval_bracket(&measure.policy, &self.eval_ctx(&game, &initial), None) {
            Ok(BracketEval::Done(done)) => {
                let cost1 = sc1(&game, &profile);
                let cost2 = sc2(&game, &profile);
                let cr1 = match ratio_bracket(cost1, &done.outcome.opt1, "OPT1") {
                    Ok(cr) => cr,
                    Err(e) => return ResponseBody::Error(WireError::engine(&e)),
                };
                let cr2 = match ratio_bracket(cost2, &done.outcome.opt2, "OPT2") {
                    Ok(cr) => cr,
                    Err(e) => return ResponseBody::Error(WireError::engine(&e)),
                };
                ResponseBody::Measure(MeasureReply {
                    key,
                    outcome: MeasureOutcome::Report(wire_cost_report(
                        cost1,
                        cost2,
                        &done.outcome,
                        &cr1,
                        &cr2,
                    )),
                })
            }
            Ok(BracketEval::Deadline) => {
                self.deadline_hits.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Measure(MeasureReply {
                    key,
                    outcome: MeasureOutcome::DeadlineExceeded,
                })
            }
            Err(err) => ResponseBody::Error(err),
        }
    }

    fn stats_reply(&self) -> ResponseBody {
        let solve = self.solve_cache.stats();
        let opt = self.opt_cache.stats();
        ResponseBody::Stats(StatsReply {
            solve_cache: WireCacheStats {
                hits: solve.hits,
                misses: solve.misses,
                entries: solve.entries,
                evictions: solve.evictions,
                capacity: self.solve_cache.capacity() as u64,
            },
            opt_cache: WireCacheStats {
                hits: opt.hits,
                misses: opt.misses,
                entries: opt.entries,
                evictions: opt.evictions,
                capacity: self.opt_cache.capacity() as u64,
            },
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
        })
    }
}
