//! The engine-side state one service instance owns, and the request
//! handler every worker runs.
//!
//! [`ServeState`] is the whole service minus the sockets: the shared
//! LRU warm tier ([`SolveCache`]/[`OptCache`]), the base budgets leaves
//! override, the request counters, and the draining flag. Keeping it
//! socket-free is what makes the replay harness possible — a fresh
//! `ServeState` driven in-process answers byte-for-byte like the TCP
//! service (see [`replay`](crate::replay)).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use netuncert_core::obs::{
    elapsed_ns, Counter as ObsCounter, Gauge, Histogram, Recorder, Registry,
};
use netuncert_core::prelude::{
    EffectiveGame, GameEdit, LinkLoads, MixedProfile, OptCache, OptConfig, OptOutcome, PureProfile,
    SolveCache, SolverConfig, SolverEngine, SolverKind,
};
use netuncert_core::social_cost::{ratio_bracket, sc1, sc2};

use crate::policy::{self, BracketEval, EvalCtx, PolicyMode, SolveEval};
use crate::protocol::{
    deadline_solve_reply, request_key, solve_method_id, wire_bracket_reply, wire_brackets,
    wire_cost_report, wire_metrics, wire_repair, wire_solve_reply, BracketOutcome, BracketReply,
    EditReply, EditRequest, ErrorKind, Limits, MeasureOutcome, MeasureReply, ReleaseReply,
    ReleaseRequest, Request, RequestBody, Response, ResponseBody, SolveOutcome, StatsReply,
    UploadReply, UploadRequest, WireCacheStats, WireError, WireInstance, WireSolution,
};
use crate::session::{SessionLookup, SessionRemoval, SessionStore};

/// Service configuration: pool size, queue bound, warm-tier bounds, wire
/// limits.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Bound on the shared job queue; an arriving request that finds the
    /// queue at this depth is rejected with a typed
    /// [`ErrorKind::Busy`](crate::protocol::ErrorKind::Busy) instead of
    /// queueing without bound.
    pub queue_depth: usize,
    /// LRU capacity of the solve warm tier, entries.
    pub solve_cache_capacity: usize,
    /// LRU capacity of the opt warm tier, entries.
    pub opt_cache_capacity: usize,
    /// Bound on concurrently pinned resident sessions
    /// ([`SessionStore`](crate::session::SessionStore)); inserting past it
    /// evicts the least-recently-used session.
    pub session_capacity: usize,
    /// Wire-level size caps.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            solve_cache_capacity: 1 << 16,
            opt_cache_capacity: 1 << 16,
            session_capacity: 64,
            limits: Limits::default(),
        }
    }
}

/// The request counters, grouped under one lock so a [`StatsReply`]
/// snapshot is a single consistent cut: `errors + deadline_hits` can never
/// exceed `requests` in any observed snapshot, which independent relaxed
/// atomics could not promise (a request counted in `errors` before its
/// `requests` bump was visible).
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    requests: u64,
    errors: u64,
    deadline_hits: u64,
    rejected: u64,
}

/// Pre-resolved handles into the service's metrics registry.
///
/// The serve layer's own telemetry is always on (unlike the engine probes,
/// which a [`Recorder`] can disable): the service exists to answer queries,
/// and its queue/admission trajectory is part of the product. Handles are
/// resolved once at construction so the request path never takes the
/// registry's name-lookup lock.
pub(crate) struct ObsHandles {
    /// The registry every handle below resolves into; [`wire_metrics`]
    /// snapshots it for the `Metrics` verb.
    pub(crate) registry: Arc<Registry>,
    /// The recorder threaded into policy evaluation and the engines.
    pub(crate) recorder: Recorder,
    /// Time a compute request spent queued before a worker popped it
    /// (`serve.queue_wait_ns`; fast-path answers record zero).
    pub(crate) queue_wait: Arc<Histogram>,
    /// Time spent actually answering a compute request
    /// (`serve.service_ns`).
    pub(crate) service: Arc<Histogram>,
    /// Wire-to-`Request` decode latency per frame, both framings
    /// (`serve.frame_decode_ns`).
    pub(crate) frame_decode: Arc<Histogram>,
    /// Cost of one reply-key hash (`serve.request_key_ns`).
    pub(crate) request_key: Arc<Histogram>,
    /// Live job-queue depth (`serve.queue_depth`).
    pub(crate) queue_depth: Arc<Gauge>,
    /// The configured queue bound (`serve.queue_capacity`).
    pub(crate) queue_capacity: Arc<Gauge>,
    /// Workers currently inside `handle_request` (`serve.busy_workers`).
    pub(crate) busy_workers: Arc<Gauge>,
    /// Admission counters: answered on the reader's warm fast path.
    pub(crate) admit_fast: Arc<ObsCounter>,
    /// Admission counters: handed to the worker pool.
    pub(crate) admit_queued: Arc<ObsCounter>,
    /// Admission counters: rejected with a typed `Busy` error.
    pub(crate) admit_busy: Arc<ObsCounter>,
    /// Admission counters: queue closed mid-push, answered inline.
    pub(crate) admit_inline: Arc<ObsCounter>,
    /// Live pinned sessions (`serve.sessions`).
    pub(crate) sessions: Arc<Gauge>,
    /// Sessions pushed out of the bounded store by newer uploads
    /// (`serve.session_evictions`).
    pub(crate) session_evictions: Arc<ObsCounter>,
}

impl ObsHandles {
    fn new(queue_capacity: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let handles = ObsHandles {
            recorder: Recorder::new(Arc::clone(&registry)),
            queue_wait: registry.histogram("serve.queue_wait_ns"),
            service: registry.histogram("serve.service_ns"),
            frame_decode: registry.histogram("serve.frame_decode_ns"),
            request_key: registry.histogram("serve.request_key_ns"),
            queue_depth: registry.gauge("serve.queue_depth"),
            queue_capacity: registry.gauge("serve.queue_capacity"),
            busy_workers: registry.gauge("serve.busy_workers"),
            admit_fast: registry.counter("serve.admit_fast"),
            admit_queued: registry.counter("serve.admit_queued"),
            admit_busy: registry.counter("serve.admit_busy"),
            admit_inline: registry.counter("serve.admit_inline"),
            sessions: registry.gauge("serve.sessions"),
            session_evictions: registry.counter("serve.session_evictions"),
            registry,
        };
        handles.queue_capacity.set(queue_capacity as u64);
        handles
    }
}

/// One service instance's engine-side state (everything but the sockets).
pub struct ServeState {
    solve_cache: Arc<SolveCache>,
    opt_cache: Arc<OptCache>,
    base_solver: SolverConfig,
    base_opt: OptConfig,
    limits: Limits,
    counters: Mutex<Counters>,
    draining: AtomicBool,
    sessions: SessionStore,
    obs: ObsHandles,
}

impl ServeState {
    /// A fresh state with LRU warm tiers sized by `config`.
    pub fn new(config: &ServeConfig) -> Self {
        ServeState {
            solve_cache: Arc::new(SolveCache::lru(config.solve_cache_capacity)),
            opt_cache: Arc::new(OptCache::lru(config.opt_cache_capacity)),
            base_solver: SolverConfig::default(),
            base_opt: OptConfig::default(),
            limits: config.limits,
            counters: Mutex::new(Counters::default()),
            draining: AtomicBool::new(false),
            sessions: SessionStore::new(config.session_capacity),
            obs: ObsHandles::new(config.queue_depth),
        }
    }

    /// The metrics registry this instance records into (for snapshot
    /// writers and tests).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.obs.registry)
    }

    /// The pre-resolved metric handles (for the socket layer).
    pub(crate) fn obs(&self) -> &ObsHandles {
        &self.obs
    }

    /// The wire-level size caps.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Whether a `Shutdown` request has been accepted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Marks the service as draining; compute requests are rejected with a
    /// typed [`ErrorKind::Shutdown`] from now on.
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Parses one request line and produces one response line (no trailing
    /// newline). Malformed lines become typed [`ErrorKind::Parse`] errors
    /// with id `0` (the id is unrecoverable from a line that did not parse).
    pub fn handle_line(&self, line: &str) -> String {
        let response = match serde_json::from_str::<Request>(line.trim_end()) {
            Ok(request) => self.handle_request(request),
            Err(err) => Response {
                id: 0,
                body: ResponseBody::Error(WireError::new(
                    ErrorKind::Parse,
                    format!("malformed request: {err}"),
                )),
            },
        };
        serde_json::to_string(&response).expect("wire types always serialise")
    }

    /// Dispatches one parsed request. Never panics on request content: every
    /// failure mode is a typed [`WireError`] in the response body.
    pub fn handle_request(&self, request: Request) -> Response {
        let body = match &request.body {
            RequestBody::Stats => self.stats_reply(),
            RequestBody::Metrics => self.metrics_reply(),
            RequestBody::Shutdown => {
                self.start_draining();
                ResponseBody::Shutdown
            }
            _ if self.draining() => ResponseBody::Error(WireError::new(
                ErrorKind::Shutdown,
                "service is draining after a Shutdown request",
            )),
            RequestBody::Solve(solve) => {
                let key = self.timed_key(&request.body);
                self.handle_solve(key, &solve.instance, &solve.policy)
            }
            RequestBody::Bracket(bracket) => {
                let key = self.timed_key(&request.body);
                self.handle_bracket(key, &bracket.instance, &bracket.policy)
            }
            RequestBody::Measure(measure) => {
                let key = self.timed_key(&request.body);
                self.handle_measure(key, measure)
            }
            RequestBody::Upload(upload) => self.handle_upload(upload),
            RequestBody::Edit(edit) => self.handle_edit(edit),
            RequestBody::Release(release) => self.handle_release(release),
        };
        self.finish(request.id, body)
    }

    /// Hashes the reply key while metering its cost
    /// (`serve.request_key_ns`).
    fn timed_key(&self, body: &RequestBody) -> String {
        let start = Instant::now();
        let key = request_key(body);
        self.obs.request_key.record(elapsed_ns(start));
        key
    }

    /// Counts one handled request under a single counter pass and seals the
    /// response envelope. Classifying the *finished* body here (instead of
    /// sprinkling counter bumps through the handlers) is what lets every
    /// counter for one request move under one lock acquisition.
    fn finish(&self, id: u64, body: ResponseBody) -> Response {
        let errored = matches!(body, ResponseBody::Error(_));
        let deadlined = matches!(
            &body,
            ResponseBody::Solve(reply) if matches!(reply.outcome, SolveOutcome::DeadlineExceeded)
        ) || matches!(
            &body,
            ResponseBody::Bracket(reply) if matches!(
                reply.outcome,
                BracketOutcome::DeadlineExceeded | BracketOutcome::Partial(_)
            )
        ) || matches!(
            &body,
            ResponseBody::Measure(reply) if matches!(reply.outcome, MeasureOutcome::DeadlineExceeded)
        );
        let mut counters = self.counters.lock().expect("counter lock poisoned");
        counters.requests += 1;
        if errored {
            counters.errors += 1;
        }
        if deadlined {
            counters.deadline_hits += 1;
        }
        drop(counters);
        Response { id, body }
    }

    /// The admission rejection for a full job queue: counts one `rejected`
    /// (and nothing else — the request never reaches the engines) and
    /// returns the typed [`ErrorKind::Busy`] response.
    pub fn busy_response(&self, id: u64, depth: usize, capacity: usize) -> Response {
        let mut counters = self.counters.lock().expect("counter lock poisoned");
        counters.rejected += 1;
        drop(counters);
        Response {
            id,
            body: ResponseBody::Error(WireError::busy(depth, capacity)),
        }
    }

    /// The connection reader's fast path: answers a request **without a
    /// worker** when no engine work is needed — `Stats`/`Shutdown`,
    /// draining rejections, validation errors, and any compute verb whose
    /// policy resolves entirely from the warm tier. Returns `None` when the
    /// request needs cold engine work (or carries a `Timeout` policy, whose
    /// deadline bookkeeping belongs on a worker).
    ///
    /// Everything answered here is byte-identical to what a worker would
    /// have produced for the same request; only the warm tier's hit/miss
    /// counters can differ (a punted request's probe misses are recounted
    /// by the worker — the documented tolerance).
    pub fn try_handle_fast(&self, request: &Request) -> Option<Response> {
        let body = self.fast_body(&request.body)?;
        Some(self.finish(request.id, body))
    }

    fn fast_body(&self, body: &RequestBody) -> Option<ResponseBody> {
        match body {
            RequestBody::Stats => Some(self.stats_reply()),
            RequestBody::Metrics => Some(self.metrics_reply()),
            RequestBody::Shutdown => {
                self.start_draining();
                Some(ResponseBody::Shutdown)
            }
            _ if self.draining() => Some(ResponseBody::Error(WireError::new(
                ErrorKind::Shutdown,
                "service is draining after a Shutdown request",
            ))),
            RequestBody::Solve(solve) => {
                if let Err(err) = policy::validate(&solve.policy, PolicyMode::Solve) {
                    return Some(ResponseBody::Error(err));
                }
                let (game, initial) = match self.build_instance(&solve.instance) {
                    Ok(built) => built,
                    Err(err) => return Some(ResponseBody::Error(err)),
                };
                if solve.policy.has_timeout() {
                    return None;
                }
                let solved = policy::eval_solve_cached(
                    &solve.policy,
                    &self.eval_ctx(&game, &initial, None),
                )?;
                // The key is only hashed on a hit: a punted request's key is
                // hashed once by the worker instead.
                let key = self.timed_key(body);
                Some(ResponseBody::Solve(wire_solve_reply(key, &solved)))
            }
            RequestBody::Bracket(bracket) => {
                if let Err(err) = policy::validate(&bracket.policy, PolicyMode::Bracket) {
                    return Some(ResponseBody::Error(err));
                }
                let (game, initial) = match self.build_instance(&bracket.instance) {
                    Ok(built) => built,
                    Err(err) => return Some(ResponseBody::Error(err)),
                };
                if bracket.policy.has_timeout() {
                    return None;
                }
                let done = policy::eval_bracket_cached(
                    &bracket.policy,
                    &self.eval_ctx(&game, &initial, None),
                )?;
                let key = self.timed_key(body);
                Some(ResponseBody::Bracket(wire_bracket_reply(
                    key,
                    &done.outcome,
                )))
            }
            RequestBody::Measure(measure) => {
                if let Err(err) = policy::validate(&measure.policy, PolicyMode::Bracket) {
                    return Some(ResponseBody::Error(err));
                }
                let (game, initial) = match self.build_instance(&measure.instance) {
                    Ok(built) => built,
                    Err(err) => return Some(ResponseBody::Error(err)),
                };
                let pure = PureProfile::new(measure.profile.clone());
                if let Err(e) = pure.validate(&game) {
                    return Some(ResponseBody::Error(WireError::new(
                        ErrorKind::InvalidRequest,
                        e.to_string(),
                    )));
                }
                if measure.policy.has_timeout() {
                    return None;
                }
                let done = policy::eval_bracket_cached(
                    &measure.policy,
                    &self.eval_ctx(&game, &initial, None),
                )?;
                let key = self.timed_key(body);
                Some(self.measure_body(key, &game, &pure, &done.outcome))
            }
            // Upload and Edit always run engines — never fast. Release is
            // pure bookkeeping and always answers on the fast path.
            RequestBody::Upload(_) | RequestBody::Edit(_) => None,
            RequestBody::Release(release) => Some(self.handle_release(release)),
        }
    }

    /// Validates wire dimensions and builds the engine-side instance.
    fn build_instance(
        &self,
        instance: &WireInstance,
    ) -> Result<(EffectiveGame, LinkLoads), WireError> {
        let users = instance.weights.len();
        let links = instance.capacities.first().map_or(0, Vec::len);
        if users > self.limits.max_users || links > self.limits.max_links {
            return Err(WireError::new(
                ErrorKind::Oversize,
                format!(
                    "instance {users}x{links} exceeds the {}x{} cap",
                    self.limits.max_users, self.limits.max_links
                ),
            ));
        }
        if instance.capacities.len() != users {
            return Err(WireError::new(
                ErrorKind::InvalidRequest,
                format!(
                    "{} capacity rows for {} weights",
                    instance.capacities.len(),
                    users
                ),
            ));
        }
        let game = EffectiveGame::from_rows(instance.weights.clone(), instance.capacities.clone())
            .map_err(|e| WireError::new(ErrorKind::InvalidRequest, e.to_string()))?;
        let initial = match &instance.initial {
            None => LinkLoads::zero(game.links()),
            Some(loads) => LinkLoads::new(loads.clone())
                .map_err(|e| WireError::new(ErrorKind::InvalidRequest, e.to_string()))?,
        };
        if initial.links() != game.links() {
            return Err(WireError::new(
                ErrorKind::InvalidRequest,
                format!(
                    "{} initial loads for {} links",
                    initial.links(),
                    game.links()
                ),
            ));
        }
        Ok((game, initial))
    }

    fn eval_ctx<'a>(
        &'a self,
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        parent_span: Option<netuncert_core::obs::SpanId>,
    ) -> EvalCtx<'a> {
        EvalCtx {
            game,
            initial,
            solve_cache: &self.solve_cache,
            opt_cache: &self.opt_cache,
            base_solver: self.base_solver,
            base_opt: self.base_opt,
            recorder: self.obs.recorder.clone(),
            parent_span,
        }
    }

    fn handle_solve(
        &self,
        key: String,
        instance: &WireInstance,
        policy: &crate::policy::Policy,
    ) -> ResponseBody {
        if let Err(err) = policy::validate(policy, PolicyMode::Solve) {
            return ResponseBody::Error(err);
        }
        let (game, initial) = match self.build_instance(instance) {
            Ok(built) => built,
            Err(err) => return ResponseBody::Error(err),
        };
        let span = self.obs.recorder.span("solve");
        let ctx = self.eval_ctx(&game, &initial, Some(span.id()));
        let body = match policy::eval_solve(policy, &ctx, None) {
            Ok(SolveEval::Done(solved)) => ResponseBody::Solve(wire_solve_reply(key, &solved)),
            Ok(SolveEval::Deadline) => ResponseBody::Solve(deadline_solve_reply(key)),
            Err(err) => ResponseBody::Error(err),
        };
        span.finish();
        body
    }

    fn handle_bracket(
        &self,
        key: String,
        instance: &WireInstance,
        policy: &crate::policy::Policy,
    ) -> ResponseBody {
        if let Err(err) = policy::validate(policy, PolicyMode::Bracket) {
            return ResponseBody::Error(err);
        }
        let (game, initial) = match self.build_instance(instance) {
            Ok(built) => built,
            Err(err) => return ResponseBody::Error(err),
        };
        let span = self.obs.recorder.span("bracket");
        let ctx = self.eval_ctx(&game, &initial, Some(span.id()));
        let body = match policy::eval_bracket(policy, &ctx, None) {
            Ok(BracketEval::Done(done)) => {
                ResponseBody::Bracket(wire_bracket_reply(key, &done.outcome))
            }
            Ok(BracketEval::Partial(outcome)) => ResponseBody::Bracket(BracketReply {
                key,
                outcome: BracketOutcome::Partial(wire_brackets(&outcome)),
            }),
            Ok(BracketEval::Deadline) => ResponseBody::Bracket(BracketReply {
                key,
                outcome: BracketOutcome::DeadlineExceeded,
            }),
            Err(err) => ResponseBody::Error(err),
        };
        span.finish();
        body
    }

    fn handle_measure(
        &self,
        key: String,
        measure: &crate::protocol::MeasureRequest,
    ) -> ResponseBody {
        if let Err(err) = policy::validate(&measure.policy, PolicyMode::Bracket) {
            return ResponseBody::Error(err);
        }
        let (game, initial) = match self.build_instance(&measure.instance) {
            Ok(built) => built,
            Err(err) => return ResponseBody::Error(err),
        };
        let pure = PureProfile::new(measure.profile.clone());
        if let Err(e) = pure.validate(&game) {
            return ResponseBody::Error(WireError::new(ErrorKind::InvalidRequest, e.to_string()));
        }
        let span = self.obs.recorder.span("measure");
        let ctx = self.eval_ctx(&game, &initial, Some(span.id()));
        let body = match policy::eval_bracket(&measure.policy, &ctx, None) {
            Ok(BracketEval::Done(done)) => self.measure_body(key, &game, &pure, &done.outcome),
            // A partial bracket's lower ends may still be at zero (no lower
            // backend ran), where the ratio arithmetic is undefined — a
            // measure under deadline pressure reports the plain deadline
            // outcome rather than a half-usable report.
            Ok(BracketEval::Partial(_)) | Ok(BracketEval::Deadline) => {
                ResponseBody::Measure(MeasureReply {
                    key,
                    outcome: MeasureOutcome::DeadlineExceeded,
                })
            }
            Err(err) => ResponseBody::Error(err),
        };
        span.finish();
        body
    }

    /// The resident-session engine: local search (the repair path's warm
    /// backend) with the exhaustive solver as the conclusive small-game
    /// fallback. Sessions bypass the policy tree — a session must end every
    /// accepted request with a *certified profile* to repair from, so the
    /// portfolio is fixed rather than client-composed. Probes record into
    /// the service registry, so `engine.repair_ns` / `repair.moves` /
    /// `repair.fallback_cold` surface through the `Metrics` verb.
    fn session_engine(&self) -> SolverEngine {
        SolverEngine::from_kinds(
            self.base_solver,
            &[SolverKind::LocalSearch, SolverKind::Exhaustive],
        )
        .with_recorder(self.obs.recorder.clone())
    }

    /// `Upload`: validate, solve cold, pin the game plus its certified
    /// profile, hand out the session id. Nothing is pinned unless the solve
    /// certified.
    fn handle_upload(&self, upload: &UploadRequest) -> ResponseBody {
        let (game, initial) = match self.build_instance(&upload.instance) {
            Ok(built) => built,
            Err(err) => return ResponseBody::Error(err),
        };
        let solved = match self.session_engine().solve(&game, &initial) {
            Ok(solved) => solved,
            Err(e) => return ResponseBody::Error(WireError::engine(&e)),
        };
        let Some(solution) = solved.solution else {
            return ResponseBody::Error(WireError::new(
                ErrorKind::Engine,
                "no pure equilibrium certified within budget; nothing was pinned",
            ));
        };
        let wire = WireSolution {
            choices: solution.profile.choices().to_vec(),
            method: solve_method_id(solution.method).to_string(),
        };
        let (session, evicted) = self.sessions.insert(game, initial, solution.profile);
        if evicted.is_some() {
            self.obs.session_evictions.incr(1);
        }
        self.obs.sessions.set(self.sessions.len() as u64);
        ResponseBody::Upload(UploadReply {
            session,
            solution: wire,
        })
    }

    /// `Edit`: resolve the session, apply the edit, warm-start repair from
    /// the pinned certified profile, re-pin the repaired state. A stale id
    /// is a typed [`ErrorKind::SessionEvicted`] / [`ErrorKind::UnknownSession`]
    /// — never a silent cold solve. On any failure the session keeps its
    /// last certified state.
    fn handle_edit(&self, request: &EditRequest) -> ResponseBody {
        let snapshot = match self.sessions.lookup(request.session) {
            SessionLookup::Found(snapshot) => snapshot,
            SessionLookup::Evicted => {
                return ResponseBody::Error(WireError::new(
                    ErrorKind::SessionEvicted,
                    format!(
                        "session {} was evicted or released; re-upload the instance",
                        request.session
                    ),
                ))
            }
            SessionLookup::Unknown => {
                return ResponseBody::Error(WireError::new(
                    ErrorKind::UnknownSession,
                    format!("session {} was never allocated", request.session),
                ))
            }
        };
        let edit = request.edit.to_edit();
        if matches!(edit, GameEdit::UserJoins { .. })
            && snapshot.game.users() >= self.limits.max_users
        {
            return ResponseBody::Error(WireError::new(
                ErrorKind::Oversize,
                format!(
                    "join would grow the session past the {}-user cap",
                    self.limits.max_users
                ),
            ));
        }
        // The store lock is already released: repair runs unlocked on the
        // cloned snapshot. Concurrent edits to one session serialise only
        // at the final update (last writer wins) — sessions are a
        // single-writer resource by contract.
        let outcome = match self.session_engine().repair(
            &snapshot.game,
            &snapshot.initial,
            &snapshot.profile,
            &edit,
        ) {
            Ok(outcome) => outcome,
            Err(e) => return ResponseBody::Error(WireError::engine(&e)),
        };
        let Some(solution) = outcome.solution.solution else {
            return ResponseBody::Error(WireError::new(
                ErrorKind::Engine,
                "neither the warm repair nor the cold fallback certified; session unchanged",
            ));
        };
        let wire = WireSolution {
            choices: solution.profile.choices().to_vec(),
            method: solve_method_id(solution.method).to_string(),
        };
        // If the session was evicted while repairing, the update is a no-op
        // and the *next* edit gets the typed SessionEvicted answer.
        self.sessions
            .update(request.session, outcome.game, solution.profile);
        ResponseBody::Edit(EditReply {
            session: request.session,
            solution: wire,
            repair: wire_repair(&outcome.repair),
        })
    }

    /// `Release`: drop the pinned state, reporting the session's accepted
    /// edit count. Stale ids get the same typed answers as `Edit`.
    fn handle_release(&self, request: &ReleaseRequest) -> ResponseBody {
        match self.sessions.remove(request.session) {
            SessionRemoval::Released { edits } => {
                self.obs.sessions.set(self.sessions.len() as u64);
                ResponseBody::Release(ReleaseReply {
                    session: request.session,
                    edits,
                })
            }
            SessionRemoval::Evicted => ResponseBody::Error(WireError::new(
                ErrorKind::SessionEvicted,
                format!(
                    "session {} was already evicted or released",
                    request.session
                ),
            )),
            SessionRemoval::Unknown => ResponseBody::Error(WireError::new(
                ErrorKind::UnknownSession,
                format!("session {} was never allocated", request.session),
            )),
        }
    }

    /// The report body for a measured profile against completed brackets
    /// (shared by the worker path and the warm fast path).
    fn measure_body(
        &self,
        key: String,
        game: &EffectiveGame,
        pure: &PureProfile,
        outcome: &OptOutcome,
    ) -> ResponseBody {
        let profile = MixedProfile::from_pure(pure, game.links());
        let cost1 = sc1(game, &profile);
        let cost2 = sc2(game, &profile);
        let cr1 = match ratio_bracket(cost1, &outcome.opt1, "OPT1") {
            Ok(cr) => cr,
            Err(e) => return ResponseBody::Error(WireError::engine(&e)),
        };
        let cr2 = match ratio_bracket(cost2, &outcome.opt2, "OPT2") {
            Ok(cr) => cr,
            Err(e) => return ResponseBody::Error(WireError::engine(&e)),
        };
        ResponseBody::Measure(MeasureReply {
            key,
            outcome: MeasureOutcome::Report(wire_cost_report(cost1, cost2, outcome, &cr1, &cr2)),
        })
    }

    /// One stats snapshot. The request counters come from a single pass
    /// under the counter lock, so they are mutually consistent; the cache
    /// counters are sampled *after* that cut and may run slightly ahead of
    /// it (and may over-count misses: a reader's fast-path probe that punts
    /// to a worker records the miss twice). Tests pin the tolerance, not
    /// exact cache counts.
    fn stats_reply(&self) -> ResponseBody {
        let counters = *self.counters.lock().expect("counter lock poisoned");
        let solve = self.solve_cache.stats();
        let opt = self.opt_cache.stats();
        ResponseBody::Stats(StatsReply {
            solve_cache: WireCacheStats {
                hits: solve.hits,
                misses: solve.misses,
                entries: solve.entries,
                evictions: solve.evictions,
                capacity: self.solve_cache.capacity() as u64,
            },
            opt_cache: WireCacheStats {
                hits: opt.hits,
                misses: opt.misses,
                entries: opt.entries,
                evictions: opt.evictions,
                capacity: self.opt_cache.capacity() as u64,
            },
            requests: counters.requests,
            errors: counters.errors,
            deadline_hits: counters.deadline_hits,
            rejected: counters.rejected,
            queue_depth: self.obs.queue_depth.value(),
            queue_capacity: self.obs.queue_capacity.value(),
            busy_workers: self.obs.busy_workers.value(),
        })
    }

    /// One metrics snapshot: the full registry as wire types. Values are
    /// wall-clock measurements, so `Metrics` replies sit outside the replay
    /// contract (see [`replay`](crate::replay)) the same way `Stats` does.
    fn metrics_reply(&self) -> ResponseBody {
        ResponseBody::Metrics(wire_metrics(&self.obs.registry.snapshot()))
    }
}
