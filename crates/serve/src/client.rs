//! A minimal blocking client for the service's wire, in either framing.
//!
//! One [`Client`] owns one connection. [`Client::connect`] speaks the
//! classic newline-delimited JSON; [`Client::connect_binary`] opens with
//! the [`BINARY_MAGIC`] byte and speaks length-prefixed binary frames
//! ([`crate::frame`]) instead. Requests are written one at a time and
//! responses read back in order — the service guarantees per-connection
//! ordering, so a blocking call-and-wait client needs no correlation
//! machinery beyond the echoed request `id`.
//!
//! Both framings expose the same [`call_line`](Client::call_line)
//! primitive over canonical JSON lines: a binary client re-encodes the
//! line as a frame on the way out and re-serialises the decoded response
//! on the way back, so the replay harness can diff the two framings (and
//! direct in-process calls) byte-for-byte.
//!
//! For callers that talk to the service repeatedly from short-lived scopes
//! (harness drivers, sweep shards), [`ClientPool`] keeps a bounded set of
//! idle connections and hands them back out instead of reconnecting per
//! call — the session verbs in particular reward staying on one warm
//! connection.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::frame::{self, BINARY_MAGIC};
use crate::protocol::{Limits, Request, RequestBody, Response};

/// Which wire framing a connection negotiated.
enum Framing {
    /// Newline-delimited JSON (the default).
    Json,
    /// Length-prefixed binary frames ([`crate::frame`]).
    Binary,
}

/// A blocking connection to a running `netuncert_serve` instance.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    framing: Framing,
}

/// Errors a client call can hit: transport trouble or an unparseable
/// response line (a healthy service never produces the latter).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, write, read, or early EOF).
    Io(std::io::Error),
    /// The response line did not decode as a [`Response`].
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::BadResponse(line) => {
                write!(f, "response line did not parse: {line}")
            }
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:4700"`) speaking
    /// newline-delimited JSON.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, Framing::Json)
    }

    /// Connects to `addr` and negotiates the binary framing by sending the
    /// magic byte before anything else.
    pub fn connect_binary<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let mut client = Client::connect_with(addr, Framing::Binary)?;
        client.writer.write_all(&[BINARY_MAGIC])?;
        client.writer.flush()?;
        Ok(client)
    }

    fn connect_with<A: ToSocketAddrs>(addr: A, framing: Framing) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        // Request lines are small and latency-bound; never wait on Nagle.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
            framing,
        })
    }

    /// Sends one request body and blocks for its response. Request ids are
    /// assigned sequentially per connection. A binary client round-trips
    /// the typed values directly — no JSON text on the wire at all.
    pub fn call(&mut self, body: RequestBody) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request { id, body };
        match self.framing {
            Framing::Json => {
                let line = serde_json::to_string(&request).expect("wire types always serialise");
                let raw = self.call_line_json(&line)?;
                serde_json::from_str::<Response>(&raw).map_err(|_| ClientError::BadResponse(raw))
            }
            Framing::Binary => self.call_value(&request),
        }
    }

    /// Sends one pre-serialised request line and returns the raw response
    /// line (no trailing newline). This is the byte-level primitive the
    /// replay harness diffs against direct engine calls — a binary client
    /// carries the same JSON value through the compact framing and
    /// re-serialises the answer, so both framings return identical lines
    /// for identical requests.
    pub fn call_line(&mut self, line: &str) -> Result<String, ClientError> {
        match self.framing {
            Framing::Json => self.call_line_json(line),
            Framing::Binary => self.call_line_binary(line),
        }
    }

    fn call_line_json(&mut self, line: &str) -> Result<String, ClientError> {
        // One write per frame: splitting the newline into its own packet
        // would interact badly with delayed ACKs even with nodelay set.
        let mut frame = Vec::with_capacity(line.len() + 1);
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            )));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    fn call_line_binary(&mut self, line: &str) -> Result<String, ClientError> {
        let request = serde_json::from_str::<Request>(line)
            .map_err(|_| ClientError::BadResponse(line.to_string()))?;
        let response = self.call_value(&request)?;
        Ok(serde_json::to_string(&response).expect("wire types always serialise"))
    }

    /// One typed round trip over the binary framing.
    fn call_value(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = frame::encode_value(&request.to_value());
        frame::write_frame(&mut self.writer, &payload)?;
        let reply = frame::read_frame(&mut self.reader, Limits::default().max_line_bytes)?;
        let value = frame::decode_value(&reply)
            .map_err(|e| ClientError::BadResponse(format!("undecodable frame: {e}")))?;
        Response::from_value(&value)
            .map_err(|e| ClientError::BadResponse(format!("frame was not a response: {e}")))
    }
}

/// A bounded pool of reusable connections to one service address.
///
/// [`get`](ClientPool::get) pops an idle connection (or dials a fresh one)
/// and returns it wrapped in a [`PooledClient`] guard; dropping the guard
/// puts the connection back on the idle list, up to `max_idle`. The wire is
/// strictly call-and-wait per connection, so a returned connection is
/// always at a frame boundary and safe to reuse — **except** after a
/// transport error, where the stream may be mid-frame: discard the guard
/// with [`PooledClient::discard`] instead of dropping it, and the
/// connection dies with it.
pub struct ClientPool {
    addr: String,
    binary: bool,
    idle: Mutex<Vec<Client>>,
    max_idle: usize,
}

impl ClientPool {
    /// A pool of newline-delimited JSON connections to `addr`, keeping at
    /// most `max_idle` idle connections alive.
    pub fn json(addr: impl Into<String>, max_idle: usize) -> Self {
        ClientPool {
            addr: addr.into(),
            binary: false,
            idle: Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// The binary-framing variant of [`json`](ClientPool::json).
    pub fn binary(addr: impl Into<String>, max_idle: usize) -> Self {
        ClientPool {
            addr: addr.into(),
            binary: true,
            idle: Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// Checks a connection out: an idle one if available, else a fresh
    /// dial.
    pub fn get(&self) -> Result<PooledClient<'_>, ClientError> {
        let reused = self.idle.lock().expect("pool lock poisoned").pop();
        let client = match reused {
            Some(client) => client,
            None if self.binary => Client::connect_binary(&self.addr)?,
            None => Client::connect(&self.addr)?,
        };
        Ok(PooledClient {
            pool: self,
            client: Some(client),
        })
    }

    /// Idle connections currently parked in the pool.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("pool lock poisoned").len()
    }

    fn put_back(&self, client: Client) {
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        if idle.len() < self.max_idle {
            idle.push(client);
        }
        // Over the cap: the connection drops here and closes.
    }
}

/// A checked-out pool connection; derefs to [`Client`]. Dropping it returns
/// the connection to the pool.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
}

impl PooledClient<'_> {
    /// Consumes the guard *without* returning the connection to the pool.
    /// Use after a transport error, when the stream may no longer sit at a
    /// frame boundary.
    pub fn discard(mut self) {
        self.client = None;
    }
}

impl Deref for PooledClient<'_> {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client present until drop")
    }
}

impl DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client present until drop")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            self.pool.put_back(client);
        }
    }
}
