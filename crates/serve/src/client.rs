//! A minimal blocking client for the service's newline-delimited JSON wire.
//!
//! One [`Client`] owns one connection. Requests are written as single
//! lines and responses read back in order — the service guarantees
//! per-connection ordering, so a blocking call-and-wait client needs no
//! correlation machinery beyond the echoed request `id`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{Request, RequestBody, Response};

/// A blocking connection to a running `netuncert_serve` instance.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

/// Errors a client call can hit: transport trouble or an unparseable
/// response line (a healthy service never produces the latter).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, write, read, or early EOF).
    Io(std::io::Error),
    /// The response line did not decode as a [`Response`].
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::BadResponse(line) => {
                write!(f, "response line did not parse: {line}")
            }
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:4700"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        // Request lines are small and latency-bound; never wait on Nagle.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request body and blocks for its response. Request ids are
    /// assigned sequentially per connection.
    pub fn call(&mut self, body: RequestBody) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request { id, body };
        let line = serde_json::to_string(&request).expect("wire types always serialise");
        let raw = self.call_line(&line)?;
        serde_json::from_str::<Response>(&raw).map_err(|_| ClientError::BadResponse(raw))
    }

    /// Sends one pre-serialised request line and returns the raw response
    /// line (no trailing newline). This is the byte-level primitive the
    /// replay harness diffs against direct engine calls.
    pub fn call_line(&mut self, line: &str) -> Result<String, ClientError> {
        // One write per frame: splitting the newline into its own packet
        // would interact badly with delayed ACKs even with nodelay set.
        let mut frame = Vec::with_capacity(line.len() + 1);
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            )));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}
