//! Replay-exact verification: diff service answers byte-for-byte against
//! direct in-process engine calls.
//!
//! The contract the service makes is that putting a socket, a policy
//! interpreter, and a warm tier in front of the engines changes *nothing*
//! about the answers. This module checks that mechanically: a [`Replayer`]
//! owns a fresh [`ServeState`] (same configuration, cold caches) and
//! re-answers every request line in-process. Because the wire types strip
//! all wall-clock fields and cache hits return the cold result verbatim,
//! the two lines must be byte-identical — any divergence is a bug, and
//! [`ReplayDiff`] reports the first one with both lines.
//!
//! `Stats` requests are excluded: their counters depend on request
//! interleaving across connections, which is exactly the nondeterminism
//! the rest of the wire is designed not to have.

use crate::protocol::{Request, RequestBody};
use crate::state::{ServeConfig, ServeState};

/// A byte-level divergence between the service and a direct engine call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDiff {
    /// Index of the diverging request in submission order.
    pub index: usize,
    /// The request line that produced the divergence.
    pub request: String,
    /// What the service answered.
    pub served: String,
    /// What the direct in-process engine call answered.
    pub replayed: String,
}

impl std::fmt::Display for ReplayDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay divergence at request {}:\n  request:  {}\n  served:   {}\n  replayed: {}",
            self.index, self.request, self.served, self.replayed
        )
    }
}

/// Re-answers request lines through a private in-process [`ServeState`]
/// and compares byte-for-byte.
pub struct Replayer {
    state: ServeState,
    checked: usize,
    skipped: usize,
}

impl Replayer {
    /// A replayer with fresh caches sized like `config`.
    pub fn new(config: &ServeConfig) -> Replayer {
        Replayer {
            state: ServeState::new(config),
            checked: 0,
            skipped: 0,
        }
    }

    /// How many request/response pairs were byte-compared.
    pub fn checked(&self) -> usize {
        self.checked
    }

    /// How many pairs were skipped (`Stats`/`Shutdown`, interleaving-
    /// dependent by design).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Whether this request line takes part in the byte-for-byte contract.
    /// `Stats` and `Shutdown` do not (their answers depend on service-side
    /// counters and lifecycle, not on the engines), and neither does any
    /// request whose policy contains a `Timeout` node (whether it beats its
    /// deadline is timing-dependent by design). The session verbs
    /// (`Upload`/`Edit`/`Release`) are also excluded: session ids are
    /// allocated in arrival order across *all* connections and the store
    /// evicts by global recency, so one connection's lines cannot
    /// reconstruct the resident state they ran against.
    pub fn is_deterministic(line: &str) -> bool {
        match serde_json::from_str::<Request>(line) {
            Ok(request) => match &request.body {
                // Stats and Metrics report wall-clock state; Shutdown is
                // lifecycle. None can be replay-diffed.
                RequestBody::Stats | RequestBody::Metrics | RequestBody::Shutdown => false,
                // Session verbs depend on resident cross-connection state.
                RequestBody::Upload(_) | RequestBody::Edit(_) | RequestBody::Release(_) => false,
                RequestBody::Solve(solve) => !solve.policy.has_timeout(),
                RequestBody::Bracket(bracket) => !bracket.policy.has_timeout(),
                RequestBody::Measure(measure) => !measure.policy.has_timeout(),
            },
            // Unparseable lines get a deterministic Parse error — diffable.
            Err(_) => true,
        }
    }

    /// Replays one request/response pair. Returns a [`ReplayDiff`] if the
    /// service's answer differs from the direct engine call's.
    pub fn check(&mut self, request_line: &str, served_line: &str) -> Option<ReplayDiff> {
        if !Self::is_deterministic(request_line) {
            self.skipped += 1;
            return None;
        }
        let index = self.checked;
        self.checked += 1;
        let replayed = self.state.handle_line(request_line);
        if replayed == served_line {
            return None;
        }
        Some(ReplayDiff {
            index,
            request: request_line.to_string(),
            served: served_line.to_string(),
            replayed,
        })
    }
}
