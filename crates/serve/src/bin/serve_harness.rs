//! Replay-exact verification harness.
//!
//! Spawns (or connects to) a `netuncert_serve` instance, drives a
//! deterministic mixed workload over several concurrent connections, and
//! diffs **every** response byte-for-byte against a direct in-process
//! engine call with the same configuration. Exits 0 only if all answers
//! match and the service shuts down gracefully.
//!
//! ```text
//! serve_harness --server PATH [--requests N] [--connections K] [--seed S] [--binary]
//! serve_harness --addr HOST:PORT [...]   # use an already-running service
//! ```
//!
//! With `--binary`, every lane opens *two* connections — one JSON-framed,
//! one binary-framed — issues each request on both, and asserts the two
//! canonical response lines are byte-identical before also diffing them
//! against the in-process replay. That is a three-way check:
//! binary frame ↔ JSON frame ↔ direct engine call.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use netuncert_core::prelude::{is_pure_nash, EffectiveGame, LinkLoads, PureProfile, Tolerance};
use netuncert_serve::protocol::{
    EditRequest, ErrorKind, MetricsReply, ReleaseRequest, RequestBody, ResponseBody, UploadRequest,
    WireHistogram,
};
use netuncert_serve::replay::Replayer;
use netuncert_serve::state::ServeConfig;
use netuncert_serve::workload::{churn_session, mixed_request};
use netuncert_serve::{Client, ClientPool};

struct Options {
    server: Option<String>,
    addr: Option<String>,
    requests: usize,
    connections: usize,
    seed: u64,
    binary: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_harness (--server PATH | --addr HOST:PORT) \
         [--requests N] [--connections K] [--seed S] [--binary]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        server: None,
        addr: None,
        requests: 120,
        connections: 4,
        seed: 42,
        binary: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--server" => opts.server = Some(value("--server")),
            "--addr" => opts.addr = Some(value("--addr")),
            "--requests" => opts.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                opts.connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--binary" => opts.binary = true,
            _ => usage(),
        }
    }
    if opts.server.is_none() && opts.addr.is_none() {
        usage();
    }
    opts
}

/// Spawns the service on an ephemeral port and parses the bound address
/// from its `listening on <addr>` banner.
fn spawn_server(path: &str) -> (Child, String) {
    let mut child = Command::new(path)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("spawn {path}: {e}");
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("stdout piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .unwrap_or_else(|e| {
            eprintln!("read banner: {e}");
            std::process::exit(1);
        });
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| {
            eprintln!("unexpected banner: {banner:?}");
            std::process::exit(1);
        })
        .to_string();
    (child, addr)
}

/// What the churn phase issued and observed, for the metrics audit.
struct ChurnCounts {
    /// Compute requests the phase queued (uploads + edits, including the
    /// deliberately stale one).
    compute: u64,
    /// Edits the service answered with a repaired, certified profile.
    repairs: u64,
}

/// Drives the resident-session workload through a connection pool: two
/// sessions upload, stream seeded edits with every repaired answer
/// re-certified client-side against a locally mirrored game, then release;
/// one final `Edit` on a released id must come back as the typed
/// `SessionEvicted` error, never a silent cold solve. Exits nonzero on any
/// contract violation.
fn drive_churn(addr: &str, seed: u64, binary: bool) -> ChurnCounts {
    const SESSIONS: u64 = 2;
    const EDITS: usize = 8;
    let pool = if binary {
        ClientPool::binary(addr.to_string(), 2)
    } else {
        ClientPool::json(addr.to_string(), 2)
    };
    let tol = Tolerance::default();
    let mut counts = ChurnCounts {
        compute: 0,
        repairs: 0,
    };
    let mut last_session = 0u64;
    for lane in 0..SESSIONS {
        let (instance, edits) = churn_session(seed.wrapping_add(lane), 8, 3, EDITS);
        let mut game =
            EffectiveGame::from_rows(instance.weights.clone(), instance.capacities.clone())
                .expect("workload instances are valid");
        let mut client = pool.get().unwrap_or_else(|e| {
            eprintln!("churn connect: {e}");
            std::process::exit(1);
        });

        let response = client
            .call(RequestBody::Upload(UploadRequest { instance }))
            .unwrap_or_else(|e| {
                eprintln!("churn upload: {e}");
                std::process::exit(1);
            });
        counts.compute += 1;
        let ResponseBody::Upload(upload) = response.body else {
            eprintln!("churn upload was refused: {:?}", response.body);
            std::process::exit(1);
        };
        let pinned = PureProfile::new(upload.solution.choices.clone());
        if !is_pure_nash(&game, &pinned, &LinkLoads::zero(game.links()), tol) {
            eprintln!("churn upload answer failed certification");
            std::process::exit(1);
        }

        for (index, edit) in edits.iter().enumerate() {
            game = game
                .apply_edit(&edit.to_edit())
                .expect("workload streams are valid");
            let response = client
                .call(RequestBody::Edit(EditRequest {
                    session: upload.session,
                    edit: edit.clone(),
                }))
                .unwrap_or_else(|e| {
                    eprintln!("churn edit {index}: {e}");
                    std::process::exit(1);
                });
            counts.compute += 1;
            let ResponseBody::Edit(reply) = response.body else {
                eprintln!("churn edit {index} was refused: {:?}", response.body);
                std::process::exit(1);
            };
            let repaired = PureProfile::new(reply.solution.choices.clone());
            if !is_pure_nash(&game, &repaired, &LinkLoads::zero(game.links()), tol) {
                eprintln!("churn edit {index} answer failed certification on the edited game");
                std::process::exit(1);
            }
            counts.repairs += 1;
        }

        let response = client
            .call(RequestBody::Release(ReleaseRequest {
                session: upload.session,
            }))
            .unwrap_or_else(|e| {
                eprintln!("churn release: {e}");
                std::process::exit(1);
            });
        let ResponseBody::Release(release) = response.body else {
            eprintln!("churn release was refused: {:?}", response.body);
            std::process::exit(1);
        };
        if release.edits != EDITS as u64 {
            eprintln!("release counted {} edits, expected {EDITS}", release.edits);
            std::process::exit(1);
        }
        last_session = upload.session;
    }

    // A released id must be answered with the typed error — the store never
    // falls back to a silent cold solve on stale state.
    let (_, edits) = churn_session(seed, 8, 3, 1);
    let mut client = pool.get().unwrap_or_else(|e| {
        eprintln!("stale-edit connect: {e}");
        std::process::exit(1);
    });
    let response = client
        .call(RequestBody::Edit(EditRequest {
            session: last_session,
            edit: edits.into_iter().next().expect("one edit requested"),
        }))
        .unwrap_or_else(|e| {
            eprintln!("stale edit: {e}");
            std::process::exit(1);
        });
    counts.compute += 1;
    match response.body {
        ResponseBody::Error(error) if error.kind == ErrorKind::SessionEvicted => {}
        other => {
            eprintln!("stale edit answered {other:?}, expected a SessionEvicted error");
            std::process::exit(1);
        }
    }
    counts
}

/// Fetches a `Metrics` reply and audits it: non-empty, sane percentile
/// ordering on every histogram, and — when `expected_compute` is known —
/// queue-wait/service counts equal to the compute requests issued, plus
/// repair-provenance count equality (`repair.moves` and `engine.repair_ns`
/// must both have observed exactly the successful repairs).
fn check_metrics(addr: &str, expected_compute: Option<u64>, expected_repairs: Option<u64>) -> bool {
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("connect for metrics: {e}");
        std::process::exit(1);
    });
    let response = client.call(RequestBody::Metrics).unwrap_or_else(|e| {
        eprintln!("metrics call: {e}");
        std::process::exit(1);
    });
    let ResponseBody::Metrics(metrics) = response.body else {
        eprintln!("Metrics request did not return a Metrics reply");
        return false;
    };
    let mut ok = true;
    if metrics.counters.is_empty() || metrics.histograms.is_empty() {
        eprintln!("metrics reply is empty (no counters or no histograms)");
        ok = false;
    }
    for histogram in &metrics.histograms {
        if !(histogram.p50 <= histogram.p90 && histogram.p90 <= histogram.p99) {
            eprintln!(
                "histogram {} has disordered percentiles: p50={} p90={} p99={}",
                histogram.name, histogram.p50, histogram.p90, histogram.p99
            );
            ok = false;
        }
    }
    if let Some(expected) = expected_compute {
        for name in ["serve.queue_wait_ns", "serve.service_ns"] {
            match find_histogram(&metrics, name) {
                Some(histogram) if histogram.count == expected => {}
                Some(histogram) => {
                    eprintln!(
                        "{name} counted {} observations, expected {expected}",
                        histogram.count
                    );
                    ok = false;
                }
                None => {
                    eprintln!("{name} is missing from the metrics reply");
                    ok = false;
                }
            }
        }
    }
    if let Some(expected) = expected_repairs {
        // Provenance: every successful repair records its latency AND its
        // move count, exactly once, into the serve registry. A mismatch
        // between the two (or against what the driver counted) means a
        // repair escaped telemetry or was double-counted.
        for name in ["engine.repair_ns", "repair.moves"] {
            match find_histogram(&metrics, name) {
                Some(histogram) if histogram.count == expected => {}
                Some(histogram) => {
                    eprintln!(
                        "{name} counted {} repairs, driver observed {expected}",
                        histogram.count
                    );
                    ok = false;
                }
                None => {
                    eprintln!("{name} is missing from the metrics reply");
                    ok = false;
                }
            }
        }
    }
    ok
}

fn find_histogram<'a>(metrics: &'a MetricsReply, name: &str) -> Option<&'a WireHistogram> {
    metrics.histograms.iter().find(|h| h.name == name)
}

fn main() {
    let opts = parse_args();
    let (child, addr) = match (&opts.server, &opts.addr) {
        (Some(path), _) => {
            let (child, addr) = spawn_server(path);
            (Some(child), addr)
        }
        (None, Some(addr)) => (None, addr.clone()),
        _ => usage(),
    };

    // Drive the workload: `connections` threads, round-robin request split.
    // Each thread records its (request line, response line) pairs.
    let connections = opts.connections.max(1);
    let mut handles = Vec::new();
    for lane in 0..connections {
        let addr = addr.clone();
        let seed = opts.seed;
        let total = opts.requests;
        let binary = opts.binary;
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap_or_else(|e| {
                eprintln!("connect {addr}: {e}");
                std::process::exit(1);
            });
            // With --binary, a sibling binary-framed connection answers
            // every request too; the two framings must agree byte-for-byte
            // on the canonical response line.
            let mut binary_client = if binary {
                Some(Client::connect_binary(&addr).unwrap_or_else(|e| {
                    eprintln!("binary connect {addr}: {e}");
                    std::process::exit(1);
                }))
            } else {
                None
            };
            let mut pairs = Vec::new();
            for index in (lane..total).step_by(connections) {
                let request = mixed_request(seed, index);
                let line = serde_json::to_string(&request).expect("serialise");
                let response = client.call_line(&line).unwrap_or_else(|e| {
                    eprintln!("request {index}: {e}");
                    std::process::exit(1);
                });
                if let Some(binary_client) = binary_client.as_mut() {
                    let framed = binary_client.call_line(&line).unwrap_or_else(|e| {
                        eprintln!("binary request {index}: {e}");
                        std::process::exit(1);
                    });
                    if framed != response {
                        eprintln!(
                            "framing divergence on request {index}:\n  json:   {response}\n  binary: {framed}"
                        );
                        std::process::exit(1);
                    }
                }
                pairs.push((line, response));
            }
            pairs
        }));
    }
    let mut pairs: Vec<(String, String)> = Vec::new();
    for handle in handles {
        pairs.extend(handle.join().expect("driver thread"));
    }

    // Replay every answer through a fresh in-process state and byte-diff.
    let mut replayer = Replayer::new(&ServeConfig::default());
    let mut divergences = 0usize;
    for (request, served) in &pairs {
        if let Some(diff) = replayer.check(request, served) {
            eprintln!("{diff}");
            divergences += 1;
        }
    }

    // Churn phase: resident sessions streamed over pooled connections, with
    // client-side certification of every repaired answer and a typed-error
    // check on a released session id. These verbs are excluded from the
    // byte-replay (session state is cross-connection), so the phase audits
    // them against the engine contract directly.
    let churn = drive_churn(&addr, opts.seed, opts.binary);

    // Metrics audit: the registry must be populated and self-consistent
    // after the workload. When we spawned the service ourselves (no other
    // traffic), the queue-wait and service histograms must count exactly
    // the compute requests this run issued — mixed workload plus the churn
    // phase's uploads and edits (the stale edit still queues) — and the
    // repair-provenance probes must count exactly the successful repairs.
    let (expected_compute, expected_repairs) = if opts.server.is_some() {
        let mixed = (opts.requests * if opts.binary { 2 } else { 1 }) as u64;
        (Some(mixed + churn.compute), Some(churn.repairs))
    } else {
        (None, None)
    };
    let metrics_ok = check_metrics(&addr, expected_compute, expected_repairs);

    // Graceful shutdown (only if we own the process).
    let clean_exit = if let Some(mut child) = child {
        let mut client = Client::connect(&addr).unwrap_or_else(|e| {
            eprintln!("connect for shutdown: {e}");
            std::process::exit(1);
        });
        let response = client.call(RequestBody::Shutdown).unwrap_or_else(|e| {
            eprintln!("shutdown call: {e}");
            std::process::exit(1);
        });
        let acked = matches!(response.body, ResponseBody::Shutdown);
        let status = child.wait().unwrap_or_else(|e| {
            eprintln!("wait: {e}");
            std::process::exit(1);
        });
        if !acked {
            eprintln!("shutdown was not acknowledged");
        }
        if !status.success() {
            eprintln!("service exited with {status}");
        }
        acked && status.success()
    } else {
        true
    };

    println!(
        "serve_harness: {} checked, {} divergences, {} connections",
        replayer.checked(),
        divergences,
        connections
    );
    if divergences == 0 && clean_exit && metrics_ok {
        println!("serve_harness: PASS");
    } else {
        eprintln!("serve_harness: FAIL");
        std::process::exit(1);
    }
}
