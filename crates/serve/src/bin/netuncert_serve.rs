//! The resident service binary.
//!
//! ```text
//! netuncert_serve --addr 127.0.0.1:0 [--workers N] [--queue-depth N]
//!                 [--solve-cache N] [--opt-cache N] [--session-capacity N]
//!                 [--metrics-json PATH]
//! ```
//!
//! Prints `listening on <addr>` (the resolved address, so port `0` works
//! for tests) on stdout once bound, then serves until a `Shutdown`
//! request drains the service, and exits 0.
//!
//! `--metrics-json PATH` periodically overwrites `PATH` with the same JSON
//! document a `Metrics` request returns (counters, gauges, histogram
//! percentiles), plus one final snapshot when the service drains — a
//! scrape file for dashboards that do not want to speak the wire protocol.

use std::time::Duration;

use netuncert_serve::protocol::wire_metrics;
use netuncert_serve::{ServeConfig, Server};

/// How often the `--metrics-json` writer re-snapshots the registry.
const METRICS_PERIOD: Duration = Duration::from_secs(1);

fn usage() -> ! {
    eprintln!(
        "usage: netuncert_serve --addr HOST:PORT [--workers N] [--queue-depth N] \
         [--solve-cache ENTRIES] [--opt-cache ENTRIES] [--session-capacity SESSIONS] \
         [--metrics-json PATH]"
    );
    std::process::exit(2);
}

fn parse_count(flag: &str, value: Option<String>) -> usize {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    match value.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("{flag} wants a non-negative integer, got {value:?}");
            usage();
        }
    }
}

/// Serialises the current registry snapshot and writes it to `path` via a
/// temp-file rename, so a concurrent scraper never reads a torn document.
fn write_metrics_snapshot(state: &netuncert_serve::ServeState, path: &str) {
    let snapshot = wire_metrics(&state.registry().snapshot());
    let json = serde_json::to_string(&snapshot).expect("wire types always serialise");
    let tmp = format!("{path}.tmp");
    if std::fs::write(&tmp, json).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

fn main() {
    let mut addr = String::from("127.0.0.1:4700");
    let mut config = ServeConfig::default();
    let mut metrics_json: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => match argv.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr needs a value");
                    usage();
                }
            },
            "--workers" => {
                config.workers = parse_count("--workers", argv.next()).max(1);
            }
            "--queue-depth" => {
                config.queue_depth = parse_count("--queue-depth", argv.next()).max(1);
            }
            "--solve-cache" => {
                config.solve_cache_capacity = parse_count("--solve-cache", argv.next());
            }
            "--opt-cache" => {
                config.opt_cache_capacity = parse_count("--opt-cache", argv.next());
            }
            "--session-capacity" => {
                config.session_capacity = parse_count("--session-capacity", argv.next()).max(1);
            }
            "--metrics-json" => match argv.next() {
                Some(path) => metrics_json = Some(path),
                None => {
                    eprintln!("--metrics-json needs a value");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let server = match Server::bind(&addr, &config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(local) => {
            // The harness parses this line to find an ephemeral port.
            println!("listening on {local}");
        }
        Err(e) => {
            eprintln!("local_addr: {e}");
            std::process::exit(1);
        }
    }
    let snapshot_writer = metrics_json.map(|path| {
        let state = server.state();
        std::thread::spawn(move || {
            let tick = Duration::from_millis(50);
            while !state.draining() {
                write_metrics_snapshot(&state, &path);
                // Sleep in short ticks so a drain is noticed promptly and
                // does not hold up process exit for a full period.
                let mut slept = Duration::ZERO;
                while slept < METRICS_PERIOD && !state.draining() {
                    std::thread::sleep(tick);
                    slept += tick;
                }
            }
            // One final snapshot so the file reflects the full run.
            write_metrics_snapshot(&state, &path);
        })
    });
    if let Err(e) = server.run() {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
    if let Some(writer) = snapshot_writer {
        let _ = writer.join();
    }
}
