//! The resident service binary.
//!
//! ```text
//! netuncert_serve --addr 127.0.0.1:0 [--workers N] [--queue-depth N]
//!                 [--solve-cache N] [--opt-cache N]
//! ```
//!
//! Prints `listening on <addr>` (the resolved address, so port `0` works
//! for tests) on stdout once bound, then serves until a `Shutdown`
//! request drains the service, and exits 0.

use netuncert_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: netuncert_serve --addr HOST:PORT [--workers N] [--queue-depth N] \
         [--solve-cache ENTRIES] [--opt-cache ENTRIES]"
    );
    std::process::exit(2);
}

fn parse_count(flag: &str, value: Option<String>) -> usize {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    match value.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("{flag} wants a non-negative integer, got {value:?}");
            usage();
        }
    }
}

fn main() {
    let mut addr = String::from("127.0.0.1:4700");
    let mut config = ServeConfig::default();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => match argv.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr needs a value");
                    usage();
                }
            },
            "--workers" => {
                config.workers = parse_count("--workers", argv.next()).max(1);
            }
            "--queue-depth" => {
                config.queue_depth = parse_count("--queue-depth", argv.next()).max(1);
            }
            "--solve-cache" => {
                config.solve_cache_capacity = parse_count("--solve-cache", argv.next());
            }
            "--opt-cache" => {
                config.opt_cache_capacity = parse_count("--opt-cache", argv.next());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let server = match Server::bind(&addr, &config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(local) => {
            // The harness parses this line to find an ephemeral port.
            println!("listening on {local}");
        }
        Err(e) => {
            eprintln!("local_addr: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = server.run() {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}
