//! The optional binary frame mode: length-prefixed compact frames carrying
//! the same wire types as the newline-delimited JSON mode.
//!
//! A client opts in per connection by sending [`BINARY_MAGIC`] as the very
//! first byte after connecting. `0xB1` is a UTF-8 continuation byte, so it
//! can never begin a JSON request line — the server sniffs one byte and
//! knows the framing for the rest of the connection. Both directions then
//! speak length-prefixed frames:
//!
//! ```text
//! [u32 LE payload length][payload]
//! ```
//!
//! The payload is a tagged pre-order encoding of the serde [`Value`] tree
//! the JSON mode would have serialised — the *same* derived
//! `Serialize`/`Deserialize` impls run on both framings, so a binary frame
//! decodes to exactly the `Request`/`Response` the JSON line would have
//! produced (the replay harness pins this by diffing the two framings
//! against each other and against direct in-process calls):
//!
//! | tag | payload |
//! |-----|-----------------------------------------------------|
//! | 0   | null                                                |
//! | 1   | false                                               |
//! | 2   | true                                                |
//! | 3   | non-negative integer, LEB128 varint                 |
//! | 4   | negative integer, LEB128 varint of the `i64` bits   |
//! | 5   | float, 8-byte LE IEEE-754 bits (lossless)           |
//! | 6   | string: varint byte length + UTF-8 bytes            |
//! | 7   | array: varint count + elements                      |
//! | 8   | object: varint count + (varint key length + key + value) per field |
//!
//! Integers and floats are kept in distinct representations so the decoded
//! [`Value`] is structurally identical to the one the encoder saw — a
//! round trip is `==`, and re-serialising the decoded value as JSON gives
//! byte-identical lines. Floats travel as raw bits, so binary frames are
//! lossless where JSON's shortest-round-trip printing already was.
//!
//! Malformed payloads (truncated, bad tags, invalid UTF-8, nesting past
//! [`MAX_DEPTH`]) decode to a typed [`FrameError`]; the length prefix
//! keeps the stream framed, so the server can answer with a typed `Parse`
//! error and continue the connection.

use std::io::{Read, Write};

use serde_json::{Number, Value};

/// The one-byte preamble that switches a fresh connection to binary
/// framing. A UTF-8 continuation byte: no JSON request line can start with
/// it, so the sniff is unambiguous.
pub const BINARY_MAGIC: u8 = 0xB1;

/// Deepest accepted nesting while decoding (objects/arrays). The wire
/// types nest nowhere near this; the limit exists so hostile payloads
/// cannot recurse the decoder off the stack.
pub const MAX_DEPTH: usize = 64;

/// A malformed binary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(String);

impl FrameError {
    fn new(message: impl Into<String>) -> Self {
        FrameError(message.into())
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary frame error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn encode_into(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Bool(false) => out.push(1),
        Value::Bool(true) => out.push(2),
        Value::Num(Number::PosInt(u)) => {
            out.push(3);
            push_varint(out, *u);
        }
        Value::Num(Number::NegInt(i)) => {
            out.push(4);
            push_varint(out, *i as u64);
        }
        Value::Num(Number::Float(f)) => {
            out.push(5);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(6);
            push_str(out, s);
        }
        Value::Array(items) => {
            out.push(7);
            push_varint(out, items.len() as u64);
            for item in items {
                encode_into(out, item);
            }
        }
        Value::Object(fields) => {
            out.push(8);
            push_varint(out, fields.len() as u64);
            for (key, field) in fields {
                push_str(out, key);
                encode_into(out, field);
            }
        }
    }
}

/// Encodes one [`Value`] tree as a binary payload (no length prefix).
pub fn encode_value(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(&mut out, value);
    out
}

struct Decoder<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Decoder<'a> {
    fn byte(&mut self) -> Result<u8, FrameError> {
        let byte = *self
            .bytes
            .get(self.at)
            .ok_or_else(|| FrameError::new(format!("truncated at byte {}", self.at)))?;
        self.at += 1;
        Ok(byte)
    }

    fn varint(&mut self) -> Result<u64, FrameError> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            let bits = u64::from(byte & 0x7f);
            if shift == 63 && bits > 1 {
                return Err(FrameError::new("varint overflows 64 bits"));
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(FrameError::new("varint longer than 10 bytes"))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.varint()? as usize;
        let end = self
            .at
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len());
        let end = end.ok_or_else(|| FrameError::new("string runs past the payload"))?;
        let s = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| FrameError::new("string is not valid UTF-8"))?;
        self.at = end;
        Ok(s.to_string())
    }

    fn value(&mut self, depth: usize) -> Result<Value, FrameError> {
        if depth > MAX_DEPTH {
            return Err(FrameError::new(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.byte()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(false)),
            2 => Ok(Value::Bool(true)),
            3 => Ok(Value::Num(Number::PosInt(self.varint()?))),
            4 => {
                let bits = self.varint()?;
                let i = bits as i64;
                if i >= 0 {
                    return Err(FrameError::new(
                        "negative-integer tag with a non-negative value",
                    ));
                }
                Ok(Value::Num(Number::NegInt(i)))
            }
            5 => {
                let mut raw = [0u8; 8];
                for slot in &mut raw {
                    *slot = self.byte()?;
                }
                Ok(Value::Num(Number::Float(f64::from_bits(
                    u64::from_le_bytes(raw),
                ))))
            }
            6 => Ok(Value::Str(self.string()?)),
            7 => {
                let count = self.varint()? as usize;
                // Each element costs at least one byte: reject fabricated
                // counts before allocating for them.
                if count > self.bytes.len() - self.at {
                    return Err(FrameError::new("array count runs past the payload"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            8 => {
                let count = self.varint()? as usize;
                if count > self.bytes.len() - self.at {
                    return Err(FrameError::new("object count runs past the payload"));
                }
                let mut fields = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = self.string()?;
                    let field = self.value(depth + 1)?;
                    fields.push((key, field));
                }
                Ok(Value::Object(fields))
            }
            tag => Err(FrameError::new(format!("unknown tag {tag}"))),
        }
    }
}

/// Decodes one binary payload back into a [`Value`] tree. The whole
/// payload must be consumed — trailing bytes are an error, so a frame can
/// never smuggle a second message.
pub fn decode_value(bytes: &[u8]) -> Result<Value, FrameError> {
    let mut decoder = Decoder { bytes, at: 0 };
    let value = decoder.value(0)?;
    if decoder.at != bytes.len() {
        return Err(FrameError::new(format!(
            "{} trailing bytes after the value",
            bytes.len() - decoder.at
        )));
    }
    Ok(value)
}

/// Writes one length-prefixed binary frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Reads one length-prefixed binary frame, rejecting payloads over
/// `max_len` before allocating for them.
pub fn read_frame(reader: &mut impl Read, max_len: usize) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};
    use crate::workload::mixed_request;
    use serde::{Deserialize, Serialize};

    #[test]
    fn every_value_shape_round_trips() {
        let value = Value::Object(vec![
            ("null".into(), Value::Null),
            (
                "bools".into(),
                Value::Array(vec![Value::Bool(true), Value::Bool(false)]),
            ),
            ("pos".into(), Value::Num(Number::PosInt(u64::MAX))),
            ("neg".into(), Value::Num(Number::NegInt(i64::MIN))),
            ("float".into(), Value::Num(Number::Float(-0.1))),
            ("nan".into(), Value::Num(Number::Float(f64::NAN))),
            ("text".into(), Value::Str("naïve — ünïcode".into())),
            ("empty".into(), Value::Array(Vec::new())),
        ]);
        let decoded = decode_value(&encode_value(&value)).unwrap();
        // NaN breaks ==; compare through the JSON printer instead (which
        // folds NaN to null, same as the JSON framing does).
        assert_eq!(
            serde_json::to_string(&decoded).unwrap(),
            serde_json::to_string(&value).unwrap()
        );
    }

    #[test]
    fn workload_requests_survive_a_binary_round_trip_byte_identically() {
        for index in 0..24 {
            let request = mixed_request(11, index);
            let payload = encode_value(&request.to_value());
            let back = Request::from_value(&decode_value(&payload).unwrap()).unwrap();
            assert_eq!(
                serde_json::to_string(&request).unwrap(),
                serde_json::to_string(&back).unwrap()
            );
            // And the compact claim is real: the binary payload is smaller
            // than the JSON line for every workload request.
            assert!(payload.len() < serde_json::to_string(&request).unwrap().len());
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        assert!(decode_value(&[]).is_err()); // empty
        assert!(decode_value(&[9]).is_err()); // unknown tag
        assert!(decode_value(&[6, 5, b'h', b'i']).is_err()); // truncated string
        assert!(decode_value(&[3, 0x80]).is_err()); // truncated varint
        assert!(decode_value(&[0, 0]).is_err()); // trailing byte
        assert!(decode_value(&[4, 1]).is_err()); // "negative" int that is not
        assert!(decode_value(&[7, 0xff, 0xff, 0xff, 0xff, 0x0f]).is_err()); // huge count
        let mut deep = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            deep.extend_from_slice(&[7, 1]); // array of one...
        }
        deep.push(0);
        assert!(decode_value(&deep).is_err()); // ...nested too deep
    }

    #[test]
    fn responses_round_trip_too() {
        use crate::protocol::{ErrorKind, ResponseBody, WireError};
        let response = Response {
            id: 9,
            body: ResponseBody::Error(WireError::new(ErrorKind::Parse, "truncated")),
        };
        let payload = encode_value(&response.to_value());
        let back = Response::from_value(&decode_value(&payload).unwrap()).unwrap();
        assert_eq!(response, back);
    }
}
