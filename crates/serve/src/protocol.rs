//! The newline-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object on one line. Requests carry
//! a client-chosen `id` that the matching response echoes, an instance (for
//! the compute verbs) and a declarative [`Policy`](crate::policy::Policy)
//! tree describing *how* to answer. Responses are **deterministic**: the
//! wire types strip every wall-clock field the engines record, so the bytes
//! of a reply depend only on the request — which is what makes the service
//! diffable byte-for-byte against a direct in-process engine call (see
//! [`replay`](crate::replay)).
//!
//! Malformed input never kills a connection or a worker: every failure mode
//! maps to a typed [`ErrorKind`] inside a normal [`Response`] envelope. The
//! only exception is an over-long line ([`Limits::max_line_bytes`]), where
//! the server replies with [`ErrorKind::Oversize`] and then closes *that*
//! connection (the stream can no longer be framed); other connections and
//! the worker pool are unaffected.

use serde::{Deserialize, Serialize};

use netuncert_core::obs::MetricsSnapshot;
use netuncert_core::opt::{OptAttempt, OptMethod};
use netuncert_core::prelude::{
    EngineSolution, GameEdit, GameError, OptBracket, OptOutcome, PureNashMethod, RepairTelemetry,
    SolverAttempt,
};
use netuncert_core::social_cost::RatioBracket;

use crate::policy::Policy;

/// Size caps enforced before any engine work is scheduled.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line, bytes (framing cap).
    pub max_line_bytes: usize,
    /// Largest accepted user count `n`.
    pub max_users: usize,
    /// Largest accepted link count `m`.
    pub max_links: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line_bytes: 1 << 20,
            max_users: 4096,
            max_links: 64,
        }
    }
}

/// One request envelope: a client-chosen correlation id plus the verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Echoed verbatim in the matching [`Response`].
    pub id: u64,
    /// The verb and its payload.
    pub body: RequestBody,
}

/// The request verbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Find a pure Nash equilibrium under a solve policy.
    Solve(SolveRequest),
    /// Bracket both social optima under a bracket policy.
    Bracket(BracketRequest),
    /// Measure a pure profile's social cost against bracketed optima.
    Measure(MeasureRequest),
    /// Pin an instance in a resident session: solve it once cold, keep the
    /// game and the certified profile server-side, and return a session id
    /// for subsequent `Edit` requests.
    Upload(UploadRequest),
    /// Apply one churn edit to a pinned session and warm-start repair its
    /// equilibrium from the last certified profile.
    Edit(EditRequest),
    /// Release a pinned session, dropping its game and profile.
    Release(ReleaseRequest),
    /// Read the service's cache and request counters.
    Stats,
    /// Read the full observability registry: every counter, gauge and
    /// latency histogram. Like `Stats`, the reply carries wall-clock values
    /// and is therefore excluded from the byte-for-byte replay contract.
    Metrics,
    /// Drain in-flight requests, stop accepting, exit cleanly.
    Shutdown,
}

/// An effective game on the wire: weights, per-user capacity rows, and an
/// optional initial-traffic vector (`null` means zero traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireInstance {
    /// Per-user traffic weights (`n` entries).
    pub weights: Vec<f64>,
    /// Per-user effective capacity rows (`n` rows of `m` entries).
    pub capacities: Vec<Vec<f64>>,
    /// Initial link loads (`m` entries), or `null` for zero traffic.
    pub initial: Option<Vec<f64>>,
}

/// A `Solve` request: instance + solve-policy tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The game to solve.
    pub instance: WireInstance,
    /// How to solve it (only [`Policy::Solve`] leaves allowed).
    pub policy: Policy,
}

/// A `Bracket` request: instance + bracket-policy tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BracketRequest {
    /// The game whose optima to bracket.
    pub instance: WireInstance,
    /// How to bracket them (only [`Policy::Bracket`] leaves allowed).
    pub policy: Policy,
}

/// A `Measure` request: instance + pure profile + bracket policy for the
/// optimum side of the coordination ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureRequest {
    /// The game to measure in.
    pub instance: WireInstance,
    /// Per-user link choices of the pure profile being measured.
    pub profile: Vec<usize>,
    /// How to bracket the optima (only [`Policy::Bracket`] leaves allowed).
    pub policy: Policy,
}

/// An `Upload` request: the instance to pin. The session is solved with the
/// service's resident engine (no policy tree — session solving must leave a
/// certified profile to repair from, so the portfolio is fixed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UploadRequest {
    /// The game to pin and solve.
    pub instance: WireInstance,
}

/// An `Edit` request: one churn edit against a pinned session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EditRequest {
    /// The session id an `Upload` reply handed out.
    pub session: u64,
    /// The edit to apply.
    pub edit: WireEdit,
}

/// A `Release` request: drop a pinned session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseRequest {
    /// The session id to release.
    pub session: u64,
}

/// A churn edit on the wire, mirroring
/// [`GameEdit`](netuncert_core::model::GameEdit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireEdit {
    /// A new user joins with traffic `weight` and capacity row
    /// `capacities` (one entry per link); they are appended at index `n`.
    Join {
        /// Traffic of the joining user.
        weight: f64,
        /// The joining user's effective capacity on each link.
        capacities: Vec<f64>,
    },
    /// User `user` leaves; later users shift down by one index.
    Leave {
        /// Index of the departing user.
        user: usize,
    },
    /// The effective capacity of one `(user, link)` entry changes.
    Capacity {
        /// Row of the changed entry.
        user: usize,
        /// Column of the changed entry.
        link: usize,
        /// The new effective capacity.
        capacity: f64,
    },
}

impl WireEdit {
    /// The engine-side edit this wire edit describes.
    pub fn to_edit(&self) -> GameEdit {
        match self {
            WireEdit::Join { weight, capacities } => GameEdit::UserJoins {
                weight: *weight,
                capacities: capacities.clone(),
            },
            WireEdit::Leave { user } => GameEdit::UserLeaves { user: *user },
            WireEdit::Capacity {
                user,
                link,
                capacity,
            } => GameEdit::CapacityChange {
                user: *user,
                link: *link,
                capacity: *capacity,
            },
        }
    }

    /// The wire form of an engine-side edit.
    pub fn from_edit(edit: &GameEdit) -> WireEdit {
        match edit {
            GameEdit::UserJoins { weight, capacities } => WireEdit::Join {
                weight: *weight,
                capacities: capacities.clone(),
            },
            GameEdit::UserLeaves { user } => WireEdit::Leave { user: *user },
            GameEdit::CapacityChange {
                user,
                link,
                capacity,
            } => WireEdit::Capacity {
                user: *user,
                link: *link,
                capacity: *capacity,
            },
        }
    }
}

/// One response envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// The result (or a typed error).
    pub body: ResponseBody,
}

/// The response payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Answer to a `Solve` request.
    Solve(SolveReply),
    /// Answer to a `Bracket` request.
    Bracket(BracketReply),
    /// Answer to a `Measure` request.
    Measure(MeasureReply),
    /// Answer to an `Upload` request.
    Upload(UploadReply),
    /// Answer to an `Edit` request.
    Edit(EditReply),
    /// Answer to a `Release` request.
    Release(ReleaseReply),
    /// Answer to a `Stats` request.
    Stats(StatsReply),
    /// Answer to a `Metrics` request.
    Metrics(MetricsReply),
    /// Acknowledges a `Shutdown` request; the service is now draining.
    Shutdown,
    /// The request failed in a typed, connection-preserving way.
    Error(WireError),
}

/// A typed protocol error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// The failure class.
    pub kind: ErrorKind,
    /// Human-readable detail (never needed to dispatch on).
    pub message: String,
    /// Queue depth observed at rejection ([`ErrorKind::Busy`] only).
    pub depth: Option<u64>,
    /// Configured queue capacity ([`ErrorKind::Busy`] only).
    pub capacity: Option<u64>,
}

/// The failure classes a request can hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not a well-formed request (truncated/invalid JSON,
    /// missing fields, wrong shapes).
    Parse,
    /// The request parsed but is structurally invalid (bad instance
    /// dimensions, bad profile, malformed policy tree, degenerate width
    /// goal).
    InvalidRequest,
    /// A policy leaf names a solver or opt-backend id the registry does not
    /// know.
    UnknownPolicy,
    /// A `Timeout` policy carries a zero or negative deadline.
    InvalidDeadline,
    /// The request exceeds a size cap ([`Limits`]).
    Oversize,
    /// The engines rejected the instance or failed while computing.
    Engine,
    /// The bounded job queue is full; the request was rejected at admission
    /// without queueing. Carries the observed depth and the configured
    /// capacity in [`WireError::depth`] / [`WireError::capacity`].
    Busy,
    /// The named session id was once live but has been evicted from the
    /// bounded session store (or explicitly released) since. The pinned
    /// game is gone — re-`Upload` to continue editing. The service never
    /// silently re-solves on a stale id.
    SessionEvicted,
    /// The named session id was never allocated by this service instance.
    UnknownSession,
    /// The service is draining after a `Shutdown` request.
    Shutdown,
}

impl WireError {
    /// A typed error with a message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
            depth: None,
            capacity: None,
        }
    }

    /// Wraps an engine-side [`GameError`].
    pub fn engine(err: &GameError) -> Self {
        WireError::new(ErrorKind::Engine, err.to_string())
    }

    /// The back-pressure rejection: the bounded job queue held `depth` jobs
    /// against a cap of `capacity` when this request arrived.
    pub fn busy(depth: usize, capacity: usize) -> Self {
        WireError {
            kind: ErrorKind::Busy,
            message: format!("job queue is full ({depth}/{capacity} jobs); retry later"),
            depth: Some(depth as u64),
            capacity: Some(capacity as u64),
        }
    }
}

/// A solved (or conclusively unsolved, or deadlined) equilibrium query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveReply {
    /// The canonical request key ([`request_key`]) this reply answers.
    pub key: String,
    /// The outcome.
    pub outcome: SolveOutcome,
    /// Every solver attempt behind the outcome, in engine order (empty for
    /// deadline exits).
    pub attempts: Vec<WireAttempt>,
}

/// The three ways a solve policy can end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveOutcome {
    /// An equilibrium was found.
    Solution(WireSolution),
    /// The policy completed without finding one (conclusive absence, or all
    /// budgets exhausted).
    NoSolution,
    /// The deadline fired before the policy completed.
    DeadlineExceeded,
}

/// A pure Nash equilibrium on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSolution {
    /// Per-user link choices.
    pub choices: Vec<usize>,
    /// Registry id of the method that found it (e.g. `"local_search"`).
    pub method: String,
}

/// One solver attempt, wall-clock stripped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireAttempt {
    /// Registry id of the solver.
    pub method: String,
    /// Iterations performed, for iterative methods.
    pub iterations: Option<u64>,
    /// Restarts consumed, for multi-restart methods.
    pub restarts: Option<u64>,
    /// Whether it produced an equilibrium.
    pub found: bool,
}

/// A bracketed (or deadlined) social-optimum query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BracketReply {
    /// The canonical request key ([`request_key`]) this reply answers.
    pub key: String,
    /// The outcome.
    pub outcome: BracketOutcome,
}

/// The three ways a bracket policy can end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BracketOutcome {
    /// Certified brackets were produced.
    Brackets(WireBrackets),
    /// The deadline fired **inside** a bracket leaf; these are the certified
    /// best-so-far brackets at the last checkpoint, possibly looser than the
    /// full composition would have produced (and possibly lacking a finite
    /// bound on one side's lower end).
    Partial(WireBrackets),
    /// The deadline fired before any leaf produced anything certifiable.
    DeadlineExceeded,
}

/// Both certified brackets plus the attempts behind them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBrackets {
    /// Certified bracket around `OPT1`.
    pub opt1: WireBracket,
    /// Certified bracket around `OPT2`.
    pub opt2: WireBracket,
    /// Every estimator attempt, in run order, wall-clock stripped.
    pub attempts: Vec<WireOptAttempt>,
}

/// A certified two-sided bracket on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBracket {
    /// Certified lower bound.
    pub lower: f64,
    /// Certified upper bound.
    pub upper: f64,
    /// Whether an exact backend collapsed the bracket to the optimum.
    pub exact: bool,
}

/// One estimator attempt, wall-clock stripped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireOptAttempt {
    /// Registry id of the estimator.
    pub method: String,
    /// Work performed, for iterative methods.
    pub iterations: Option<u64>,
    /// Whether the attempt returned exact values for both objectives.
    pub exact: bool,
}

/// A pinned session: the id for future `Edit`s plus the certified upload
/// solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UploadReply {
    /// The allocated session id (unique per service instance).
    pub session: u64,
    /// The certified equilibrium of the uploaded instance.
    pub solution: WireSolution,
}

/// A repaired session: the certified equilibrium on the edited game plus
/// the repair's provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EditReply {
    /// The session id (echoed).
    pub session: u64,
    /// The certified equilibrium on the game *after* the edit.
    pub solution: WireSolution,
    /// How the repair went.
    pub repair: WireRepair,
}

/// Warm-start repair provenance on the wire (wall-clock free, like every
/// other reply field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireRepair {
    /// Improvement moves the warm local-search run performed.
    pub moves: u64,
    /// Kernel passes the warm run consumed.
    pub passes: u64,
    /// Restarts consumed (1 when the warm seed alone certified).
    pub restarts: u64,
    /// Whether the warm run stalled and a cold portfolio solve produced the
    /// answer instead.
    pub fallback_cold: bool,
}

/// Projects engine repair telemetry onto the wire.
pub fn wire_repair(repair: &RepairTelemetry) -> WireRepair {
    WireRepair {
        moves: repair.moves,
        passes: repair.passes,
        restarts: repair.restarts,
        fallback_cold: repair.fallback_cold,
    }
}

/// A released session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleaseReply {
    /// The session id (echoed; now permanently stale).
    pub session: u64,
    /// Edits the session accepted over its lifetime.
    pub edits: u64,
}

/// A measured (or deadlined) social-cost query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureReply {
    /// The canonical request key ([`request_key`]) this reply answers.
    pub key: String,
    /// The outcome.
    pub outcome: MeasureOutcome,
}

/// The two ways a measure policy can end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MeasureOutcome {
    /// The cost report was produced.
    Report(WireCostReport),
    /// The deadline fired before the optimum side completed.
    DeadlineExceeded,
}

/// Social costs and bracketed coordination ratios on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCostReport {
    /// `SC1(G, P)`.
    pub sc1: f64,
    /// `SC2(G, P)`.
    pub sc2: f64,
    /// Certified bracket around `OPT1(G)`.
    pub opt1: WireBracket,
    /// Certified bracket around `OPT2(G)`.
    pub opt2: WireBracket,
    /// Lower end of `SC1/OPT1`.
    pub cr1_lower: f64,
    /// Upper end of `SC1/OPT1`.
    pub cr1_upper: f64,
    /// Lower end of `SC2/OPT2`.
    pub cr2_lower: f64,
    /// Upper end of `SC2/OPT2`.
    pub cr2_upper: f64,
}

/// The service's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Warm-tier counters of the solve cache.
    pub solve_cache: WireCacheStats,
    /// Warm-tier counters of the opt cache.
    pub opt_cache: WireCacheStats,
    /// Requests handled (all verbs).
    pub requests: u64,
    /// Requests that ended in a typed error.
    pub errors: u64,
    /// Requests that ended in a deadline outcome (partial brackets
    /// included).
    pub deadline_hits: u64,
    /// Requests refused at admission because the job queue was full; these
    /// never reach the engines and are **not** counted in `requests`.
    pub rejected: u64,
    /// Jobs sitting in the bounded queue right now (live gauge).
    pub queue_depth: u64,
    /// The configured queue capacity (the `Busy` threshold).
    pub queue_capacity: u64,
    /// Workers currently executing a job (live gauge).
    pub busy_workers: u64,
}

/// The full observability registry on the wire: every counter, gauge and
/// histogram summary, each list sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Monotonic event counts.
    pub counters: Vec<WireCounter>,
    /// Instantaneous levels.
    pub gauges: Vec<WireGauge>,
    /// Latency histogram summaries.
    pub histograms: Vec<WireHistogram>,
}

/// One named counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCounter {
    /// Instrument name (e.g. `"serve.admit_fast"`).
    pub name: String,
    /// Cumulative count.
    pub value: u64,
}

/// One named gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireGauge {
    /// Instrument name (e.g. `"serve.queue_depth"`).
    pub name: String,
    /// Current level.
    pub value: u64,
}

/// One named histogram summary. Values are nanoseconds for latency
/// histograms; percentiles are log2-bucket upper bounds, so
/// `p50 <= p90 <= p99 <= max` always holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireHistogram {
    /// Instrument name (e.g. `"serve.queue_wait_ns"`).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (wrapping).
    pub sum: u64,
    /// 50th-percentile bucket upper bound.
    pub p50: u64,
    /// 90th-percentile bucket upper bound.
    pub p90: u64,
    /// 99th-percentile bucket upper bound.
    pub p99: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
}

/// Projects a registry snapshot onto the wire.
pub fn wire_metrics(snapshot: &MetricsSnapshot) -> MetricsReply {
    MetricsReply {
        counters: snapshot
            .counters
            .iter()
            .map(|(name, value)| WireCounter {
                name: name.clone(),
                value: *value,
            })
            .collect(),
        gauges: snapshot
            .gauges
            .iter()
            .map(|(name, value)| WireGauge {
                name: name.clone(),
                value: *value,
            })
            .collect(),
        histograms: snapshot
            .histograms
            .iter()
            .map(|(name, h)| WireHistogram {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                p50: h.p50,
                p90: h.p90,
                p99: h.p99,
                max: h.max,
            })
            .collect(),
    }
}

/// One cache's counters plus its configured bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a cold run.
    pub misses: u64,
    /// Distinct entries currently stored.
    pub entries: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// The entry cap.
    pub capacity: u64,
}

/// The canonical request key: a streaming structural FNV-1a-64 over the
/// typed request body (the id is deliberately excluded — two clients asking
/// the same question share a key).
///
/// The hasher walks the body directly — variant tags, field lengths, the
/// raw IEEE-754 bits of every float — without materialising a canonical
/// JSON line first. Both framings share this function, so the reply `key`
/// stays byte-identical across JSON and binary connections (the three-way
/// replay diff depends on that), but the warm path no longer pays a
/// shortest-round-trip float-printing pass per request: at `n = 512` that
/// canonicalisation dominated a cache hit and was why warm binary framing
/// tied warm JSON in BENCHMARKS.md.
///
/// Distinct bodies hash distinct byte streams: every variant is tagged and
/// every variable-length field is length-prefixed, so the encoding is
/// prefix-free in the same way the binary frame encoding is.
pub fn request_key(body: &RequestBody) -> String {
    let mut hasher = KeyHasher::new();
    hash_body(&mut hasher, body);
    format!("{:016x}", hasher.finish())
}

/// FNV-1a-64 fed field-by-field (same offset basis and prime as the
/// historical canonical-JSON hash; only the byte stream changed).
struct KeyHasher {
    hash: u64,
}

impl KeyHasher {
    fn new() -> Self {
        KeyHasher {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    #[inline]
    fn byte(&mut self, byte: u8) {
        self.hash ^= u64::from(byte);
        self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
    }

    #[inline]
    fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.byte(byte);
        }
    }

    #[inline]
    fn u64(&mut self, value: u64) {
        self.bytes(&value.to_le_bytes());
    }

    #[inline]
    fn f64(&mut self, value: f64) {
        self.bytes(&value.to_bits().to_le_bytes());
    }

    fn f64s(&mut self, values: &[f64]) {
        self.u64(values.len() as u64);
        for &value in values {
            self.f64(value);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn opt_u64(&mut self, value: Option<u64>) {
        match value {
            None => self.byte(0),
            Some(v) => {
                self.byte(1);
                self.u64(v);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

fn hash_body(h: &mut KeyHasher, body: &RequestBody) {
    match body {
        RequestBody::Solve(r) => {
            h.byte(0);
            hash_instance(h, &r.instance);
            hash_policy(h, &r.policy);
        }
        RequestBody::Bracket(r) => {
            h.byte(1);
            hash_instance(h, &r.instance);
            hash_policy(h, &r.policy);
        }
        RequestBody::Measure(r) => {
            h.byte(2);
            hash_instance(h, &r.instance);
            h.u64(r.profile.len() as u64);
            for &choice in &r.profile {
                h.u64(choice as u64);
            }
            hash_policy(h, &r.policy);
        }
        RequestBody::Stats => h.byte(3),
        RequestBody::Shutdown => h.byte(4),
        RequestBody::Metrics => h.byte(5),
        RequestBody::Upload(r) => {
            h.byte(6);
            hash_instance(h, &r.instance);
        }
        RequestBody::Edit(r) => {
            h.byte(7);
            h.u64(r.session);
            hash_edit(h, &r.edit);
        }
        RequestBody::Release(r) => {
            h.byte(8);
            h.u64(r.session);
        }
    }
}

fn hash_edit(h: &mut KeyHasher, edit: &WireEdit) {
    match edit {
        WireEdit::Join { weight, capacities } => {
            h.byte(0);
            h.f64(*weight);
            h.f64s(capacities);
        }
        WireEdit::Leave { user } => {
            h.byte(1);
            h.u64(*user as u64);
        }
        WireEdit::Capacity {
            user,
            link,
            capacity,
        } => {
            h.byte(2);
            h.u64(*user as u64);
            h.u64(*link as u64);
            h.f64(*capacity);
        }
    }
}

fn hash_instance(h: &mut KeyHasher, instance: &WireInstance) {
    h.f64s(&instance.weights);
    h.u64(instance.capacities.len() as u64);
    for row in &instance.capacities {
        h.f64s(row);
    }
    match &instance.initial {
        None => h.byte(0),
        Some(loads) => {
            h.byte(1);
            h.f64s(loads);
        }
    }
}

fn hash_policy(h: &mut KeyHasher, policy: &Policy) {
    match policy {
        Policy::Solve(leaf) => {
            h.byte(0);
            h.u64(leaf.solvers.len() as u64);
            for id in &leaf.solvers {
                h.str(id);
            }
            h.opt_u64(leaf.restarts);
            h.opt_u64(leaf.max_steps);
        }
        Policy::Bracket(leaf) => {
            h.byte(1);
            h.u64(leaf.backends.len() as u64);
            for id in &leaf.backends {
                h.str(id);
            }
            match leaf.width_goal {
                None => h.byte(0),
                Some(goal) => {
                    h.byte(1);
                    h.f64(goal);
                }
            }
            h.opt_u64(leaf.restarts);
        }
        Policy::Race(children) => {
            h.byte(2);
            h.u64(children.len() as u64);
            for child in children {
                hash_policy(h, child);
            }
        }
        Policy::Fallback(children) => {
            h.byte(3);
            h.u64(children.len() as u64);
            for child in children {
                hash_policy(h, child);
            }
        }
        Policy::Timeout(timeout) => {
            h.byte(4);
            h.u64(timeout.ms as u64);
            hash_policy(h, &timeout.lower);
        }
    }
}

/// Registry id of a solver method (matches `SolverKind::id`).
pub fn solve_method_id(method: PureNashMethod) -> &'static str {
    match method {
        PureNashMethod::TwoLinks => "two_links",
        PureNashMethod::Symmetric => "symmetric",
        PureNashMethod::UniformBeliefs => "uniform",
        PureNashMethod::BestResponse => "best_response",
        PureNashMethod::LocalSearch => "local_search",
        PureNashMethod::Exhaustive => "exhaustive",
    }
}

/// Registry id of an opt method (matches `OptBackendKind::id`).
pub fn opt_method_id(method: OptMethod) -> &'static str {
    match method {
        OptMethod::Exhaustive => "exhaustive",
        OptMethod::BranchAndBound => "branch_and_bound",
        OptMethod::LptGreedy => "lpt",
        OptMethod::Descent => "descent",
        OptMethod::Relaxation => "relaxation",
    }
}

fn wire_attempt(attempt: &SolverAttempt) -> WireAttempt {
    WireAttempt {
        method: solve_method_id(attempt.method).to_string(),
        iterations: attempt.iterations,
        restarts: attempt.restarts,
        found: attempt.found,
    }
}

fn wire_opt_attempt(attempt: &OptAttempt) -> WireOptAttempt {
    WireOptAttempt {
        method: opt_method_id(attempt.method).to_string(),
        iterations: attempt.iterations,
        exact: attempt.exact,
    }
}

/// Projects an [`OptBracket`] onto the wire.
pub fn wire_bracket(bracket: &OptBracket) -> WireBracket {
    WireBracket {
        lower: bracket.lower,
        upper: bracket.upper,
        exact: bracket.exact,
    }
}

/// Projects an [`EngineSolution`] onto the deterministic wire form: the
/// solution choices plus every attempt with its wall-clock field dropped.
pub fn wire_solve_reply(key: String, solved: &EngineSolution) -> SolveReply {
    let outcome = match &solved.solution {
        Some(solution) => SolveOutcome::Solution(WireSolution {
            choices: solution.profile.choices().to_vec(),
            method: solve_method_id(solution.method).to_string(),
        }),
        None => SolveOutcome::NoSolution,
    };
    SolveReply {
        key,
        outcome,
        attempts: solved.telemetry.attempts.iter().map(wire_attempt).collect(),
    }
}

/// The deadline form of a solve reply.
pub fn deadline_solve_reply(key: String) -> SolveReply {
    SolveReply {
        key,
        outcome: SolveOutcome::DeadlineExceeded,
        attempts: Vec::new(),
    }
}

/// Projects an [`OptOutcome`]'s brackets and attempts onto the wire.
pub fn wire_brackets(outcome: &OptOutcome) -> WireBrackets {
    WireBrackets {
        opt1: wire_bracket(&outcome.opt1),
        opt2: wire_bracket(&outcome.opt2),
        attempts: outcome
            .telemetry
            .attempts
            .iter()
            .map(wire_opt_attempt)
            .collect(),
    }
}

/// Projects an [`OptOutcome`] onto the deterministic wire form.
pub fn wire_bracket_reply(key: String, outcome: &OptOutcome) -> BracketReply {
    BracketReply {
        key,
        outcome: BracketOutcome::Brackets(wire_brackets(outcome)),
    }
}

/// Builds the wire cost report from measured costs, brackets and ratios.
pub fn wire_cost_report(
    sc1: f64,
    sc2: f64,
    outcome: &OptOutcome,
    cr1: &RatioBracket,
    cr2: &RatioBracket,
) -> WireCostReport {
    WireCostReport {
        sc1,
        sc2,
        opt1: wire_bracket(&outcome.opt1),
        opt2: wire_bracket(&outcome.opt2),
        cr1_lower: cr1.lower,
        cr1_upper: cr1.upper,
        cr2_lower: cr2.lower,
        cr2_upper: cr2.upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, SolveLeaf};

    fn solve_request() -> RequestBody {
        RequestBody::Solve(SolveRequest {
            instance: WireInstance {
                weights: vec![1.0, 2.0],
                capacities: vec![vec![1.0, 2.0], vec![2.0, 1.0]],
                initial: None,
            },
            policy: Policy::Solve(SolveLeaf {
                solvers: vec!["two_links".to_string()],
                restarts: None,
                max_steps: None,
            }),
        })
    }

    #[test]
    fn requests_round_trip_through_json() {
        let request = Request {
            id: 7,
            body: solve_request(),
        };
        let line = serde_json::to_string(&request).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(request, back);
    }

    #[test]
    fn responses_round_trip_through_json() {
        let response = Response {
            id: 7,
            body: ResponseBody::Error(WireError::new(ErrorKind::Parse, "truncated")),
        };
        let line = serde_json::to_string(&response).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(response, back);
    }

    #[test]
    fn request_keys_ignore_the_id_but_not_the_payload() {
        let body = solve_request();
        let key = request_key(&body);
        assert_eq!(key.len(), 16);
        assert_eq!(key, request_key(&body.clone()));
        let RequestBody::Solve(mut other) = body.clone() else {
            unreachable!()
        };
        other.instance.weights[0] = 1.5;
        assert_ne!(key, request_key(&RequestBody::Solve(other)));
    }

    #[test]
    fn request_keys_distinguish_verbs_and_policy_structure() {
        // Admin verbs all hash apart.
        let admin = [
            RequestBody::Stats,
            RequestBody::Metrics,
            RequestBody::Shutdown,
        ];
        for (i, a) in admin.iter().enumerate() {
            for b in &admin[i + 1..] {
                assert_ne!(request_key(a), request_key(b));
            }
        }
        // The same leaf under Race vs Fallback is a different question.
        let leaf = Policy::Solve(SolveLeaf {
            solvers: vec!["two_links".to_string()],
            restarts: None,
            max_steps: None,
        });
        let instance = WireInstance {
            weights: vec![1.0, 2.0],
            capacities: vec![vec![1.0, 2.0], vec![2.0, 1.0]],
            initial: None,
        };
        let with_policy = |policy: Policy| {
            request_key(&RequestBody::Solve(SolveRequest {
                instance: instance.clone(),
                policy,
            }))
        };
        assert_ne!(
            with_policy(Policy::Race(vec![leaf.clone()])),
            with_policy(Policy::Fallback(vec![leaf.clone()])),
        );
        assert_ne!(
            with_policy(leaf.clone()),
            with_policy(Policy::Race(vec![leaf]))
        );
    }

    #[test]
    fn request_keys_are_length_prefixed_not_concatenated() {
        // Moving a value across a field boundary must change the key: the
        // hash is fed length-prefixed streams, not raw concatenated floats.
        let key = |weights: Vec<f64>, caps: Vec<Vec<f64>>| {
            request_key(&RequestBody::Solve(SolveRequest {
                instance: WireInstance {
                    weights,
                    capacities: caps,
                    initial: None,
                },
                policy: Policy::Solve(SolveLeaf {
                    solvers: vec!["two_links".to_string()],
                    restarts: None,
                    max_steps: None,
                }),
            }))
        };
        assert_ne!(
            key(vec![1.0, 2.0, 3.0], vec![vec![4.0]]),
            key(vec![1.0, 2.0], vec![vec![3.0, 4.0]]),
        );
    }

    #[test]
    fn session_requests_round_trip_and_hash_apart() {
        let instance = WireInstance {
            weights: vec![1.0, 2.0],
            capacities: vec![vec![1.0, 2.0], vec![2.0, 1.0]],
            initial: None,
        };
        let upload = RequestBody::Upload(UploadRequest {
            instance: instance.clone(),
        });
        let edit = RequestBody::Edit(EditRequest {
            session: 3,
            edit: WireEdit::Capacity {
                user: 0,
                link: 1,
                capacity: 5.0,
            },
        });
        let release = RequestBody::Release(ReleaseRequest { session: 3 });
        for body in [&upload, &edit, &release] {
            let request = Request {
                id: 9,
                body: body.clone(),
            };
            let line = serde_json::to_string(&request).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(request, back);
        }
        // The session verbs hash apart from each other and from a Solve of
        // the same instance.
        let solve = solve_request();
        let bodies = [&upload, &edit, &release, &solve];
        for (i, a) in bodies.iter().enumerate() {
            for b in &bodies[i + 1..] {
                assert_ne!(request_key(a), request_key(b));
            }
        }
        // Different edits on the same session are different questions.
        let other_edit = RequestBody::Edit(EditRequest {
            session: 3,
            edit: WireEdit::Leave { user: 0 },
        });
        assert_ne!(request_key(&edit), request_key(&other_edit));
    }

    #[test]
    fn wire_edits_round_trip_through_the_engine_form() {
        let edits = [
            WireEdit::Join {
                weight: 2.5,
                capacities: vec![1.0, 4.0],
            },
            WireEdit::Leave { user: 1 },
            WireEdit::Capacity {
                user: 0,
                link: 1,
                capacity: 9.0,
            },
        ];
        for wire in edits {
            assert_eq!(WireEdit::from_edit(&wire.to_edit()), wire);
        }
    }

    #[test]
    fn metrics_replies_round_trip_through_json() {
        let response = Response {
            id: 9,
            body: ResponseBody::Metrics(MetricsReply {
                counters: vec![WireCounter {
                    name: "serve.admit_fast".to_string(),
                    value: 3,
                }],
                gauges: vec![WireGauge {
                    name: "serve.queue_depth".to_string(),
                    value: 0,
                }],
                histograms: vec![WireHistogram {
                    name: "serve.service_ns".to_string(),
                    count: 3,
                    sum: 3000,
                    p50: 1023,
                    p90: 1023,
                    p99: 2047,
                    max: 2047,
                }],
            }),
        };
        let line = serde_json::to_string(&response).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(response, back);
    }

    #[test]
    fn method_ids_match_the_engine_registries() {
        use netuncert_core::prelude::{OptBackendKind, SolverKind};
        for kind in SolverKind::ALL {
            assert_eq!(solve_method_id(kind.method()), kind.id());
        }
        for kind in OptBackendKind::ALL {
            assert_eq!(opt_method_id(kind.method()), kind.id());
        }
    }
}
