//! netuncert-serve: a resident equilibrium-as-a-service query layer.
//!
//! The experiment pipeline pays the full engine cost for every solve even
//! when instances repeat across sweeps. This crate keeps the engines —
//! and their warm caches — *resident*: a std-only TCP service speaking
//! newline-delimited JSON accepts `Solve`, `Bracket`, and `Measure`
//! requests, multiplexes them onto a fixed worker pool wrapping
//! [`SolverEngine`](netuncert_core::prelude::SolverEngine) and
//! [`OptEngine`](netuncert_core::prelude::OptEngine), and shares a bounded
//! LRU warm tier ([`SolveCache`](netuncert_core::prelude::SolveCache) /
//! [`OptCache`](netuncert_core::prelude::OptCache)) across connections.
//!
//! Requests carry a declarative **policy tree** — `Race` competing solver
//! lanes pass-by-pass, `Fallback` widening through backend lists,
//! `Timeout` enforcing deadlines cooperatively at pass granularity (the
//! interpreter checks the clock between kernel passes, never mid-pass).
//!
//! The load-bearing contract is **replay exactness**: every answer the
//! service produces is byte-for-byte identical to a direct in-process
//! engine call with the same configuration ([`replay`] checks this
//! mechanically). The wire types strip wall-clock telemetry so that the
//! contract is decidable by `==` on response lines.
//!
//! Beyond the stateless compute verbs, the service also keeps **resident
//! instance sessions**: `Upload` pins a game plus its certified
//! equilibrium server-side, `Edit` streams churn edits (joins, leaves,
//! capacity drift) against the pinned state and answers with a
//! warm-start-*repaired*, re-certified equilibrium — typically a handful
//! of local-search moves instead of a cold solve — and `Release` drops the
//! pin. The session store is bounded and LRU-evicting; a stale id gets a
//! typed `SessionEvicted` answer, never a silent cold solve.
//!
//! Module map:
//! - [`protocol`] — wire types, size limits, typed errors, request keys
//! - [`policy`] — the policy tree and its pass-resumable interpreter
//! - [`state`] — engine-side service state (caches, budgets, counters)
//! - [`session`] — the bounded resident-session store behind
//!   `Upload`/`Edit`/`Release`
//! - [`server`] — TCP listener, bounded queue, worker pool, graceful drain
//! - [`frame`] — the optional length-prefixed binary framing
//! - [`client`] — minimal blocking client (either framing) and a reusing
//!   connection pool
//! - [`replay`] — byte-for-byte verification against direct engine calls

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod policy;
pub mod protocol;
pub mod replay;
pub mod server;
pub mod session;
pub mod state;
pub mod workload;

pub use client::{Client, ClientError, ClientPool, PooledClient};
pub use policy::{BracketLeaf, Policy, SolveLeaf, TimeoutPolicy};
pub use protocol::{Request, RequestBody, Response, ResponseBody, WireEdit, WireInstance};
pub use replay::{ReplayDiff, Replayer};
pub use server::Server;
pub use session::{SessionLookup, SessionRemoval, SessionSnapshot, SessionStore};
pub use state::{ServeConfig, ServeState};
