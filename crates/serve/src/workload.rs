//! Deterministic mixed workloads for the harness, the integration tests,
//! and the round-trip benchmark.
//!
//! Everything here is seeded: the same `(seed, index)` pair always
//! produces the same request, so a workload can be generated on both
//! sides of a socket (driver and replayer) without shipping it.

use instance_gen::{CapacityDist, ChurnSpec, EffectiveSpec, WeightDist};
use netuncert_core::prelude::EffectiveGame;

use crate::policy::{BracketLeaf, Policy, SolveLeaf};
use crate::protocol::{
    BracketRequest, MeasureRequest, Request, RequestBody, SolveRequest, WireEdit, WireInstance,
};

/// Distinct instance shapes a mixed workload cycles through. Kept small so
/// that duplicate requests (warm-tier hits) occur naturally.
const SHAPES: &[(usize, usize)] = &[(4, 3), (6, 3), (8, 4), (5, 2), (12, 4), (10, 3)];

/// A deterministic random instance in wire form: `users`×`links`, general
/// (fully user-specific) capacities, skewed traffics.
pub fn wire_instance(users: usize, links: usize, seed: u64) -> WireInstance {
    let spec = EffectiveSpec::General {
        users,
        links,
        capacity: CapacityDist::Uniform { lo: 4.0, hi: 32.0 },
        weights: WeightDist::Skewed {
            lo: 1.0,
            doublings: 3.0,
        },
    };
    let game = spec.generate(&mut instance_gen::rng(seed, 0));
    from_game(&game)
}

/// Converts an engine-side game into its wire form (no initial loads).
pub fn from_game(game: &EffectiveGame) -> WireInstance {
    let capacities = (0..game.users())
        .map(|u| (0..game.links()).map(|l| game.capacity(u, l)).collect())
        .collect();
    WireInstance {
        weights: game.weights().to_vec(),
        capacities,
        initial: None,
    }
}

/// The default solve policy a workload uses: the engine's full paper-order
/// walk, expressed as a single leaf.
pub fn default_solve_policy() -> Policy {
    Policy::Solve(SolveLeaf {
        solvers: vec![
            "two_links".into(),
            "symmetric".into(),
            "uniform".into(),
            "best_response".into(),
            "local_search".into(),
            "exhaustive".into(),
        ],
        restarts: None,
        max_steps: None,
    })
}

/// A race between the two iterative solvers, falling back to exhaustive.
pub fn race_policy() -> Policy {
    Policy::Fallback(vec![
        Policy::Race(vec![
            Policy::Solve(SolveLeaf {
                solvers: vec!["best_response".into()],
                restarts: None,
                max_steps: None,
            }),
            Policy::Solve(SolveLeaf {
                solvers: vec!["local_search".into()],
                restarts: None,
                max_steps: None,
            }),
        ]),
        Policy::Solve(SolveLeaf {
            solvers: vec!["exhaustive".into()],
            restarts: None,
            max_steps: None,
        }),
    ])
}

/// The default bracket policy: cheap bounds first, widening to exact
/// backends only if the goal is unmet.
pub fn default_bracket_policy() -> Policy {
    Policy::Fallback(vec![
        Policy::Bracket(BracketLeaf {
            backends: vec!["lpt".into(), "relaxation".into()],
            width_goal: Some(1.5),
            restarts: None,
        }),
        Policy::Bracket(BracketLeaf {
            backends: vec!["branch_and_bound".into(), "exhaustive".into()],
            width_goal: None,
            restarts: None,
        }),
    ])
}

/// The `index`-th request of the deterministic mixed workload for `seed`.
///
/// The mix cycles Solve (plain and racing), Bracket, and Measure over a
/// small pool of instance shapes; every 5th request reuses the previous
/// instance so the warm tier sees genuine duplicates.
pub fn mixed_request(seed: u64, index: usize) -> Request {
    let dup = index % 5 == 4 && index > 0;
    // A duplicate replays the previous request verbatim (same instance AND
    // same verb/policy), so the warm tier sees true repeat keys.
    let inst_index = if dup { index - 1 } else { index };
    let (users, links) = SHAPES[inst_index % SHAPES.len()];
    // A small pool of instance seeds keeps repeats frequent.
    let inst_seed = seed.wrapping_add((inst_index % 17) as u64);
    let instance = wire_instance(users, links, inst_seed);
    let body = match inst_index % 4 {
        0 => RequestBody::Solve(SolveRequest {
            instance,
            policy: default_solve_policy(),
        }),
        1 => RequestBody::Bracket(BracketRequest {
            instance,
            policy: default_bracket_policy(),
        }),
        2 => RequestBody::Solve(SolveRequest {
            instance,
            policy: race_policy(),
        }),
        _ => {
            // Everyone on link 0 is always a valid profile.
            let profile = vec![0; users];
            RequestBody::Measure(MeasureRequest {
                instance,
                profile,
                policy: default_bracket_policy(),
            })
        }
    };
    Request {
        id: (index + 1) as u64,
        body,
    }
}

/// One deterministic churn session for the harness: the instance to
/// `Upload` plus `edits` structurally valid edits to stream as `Edit`
/// requests, all derived from `seed`. Both sides of a socket can mirror the
/// session (apply the edits locally) without shipping it.
pub fn churn_session(
    seed: u64,
    users: usize,
    links: usize,
    edits: usize,
) -> (WireInstance, Vec<WireEdit>) {
    let instance = wire_instance(users, links, seed);
    let spec = ChurnSpec {
        // Stay comfortably above the 2-user legality floor so leaves never
        // degrade away entirely.
        min_users: 3.min(users),
        max_users: users + edits,
        ..ChurnSpec::default_scenario()
    };
    let wire_edits = spec
        .stream(users, links, instance_gen::rng(seed, 1))
        .take_edits(edits)
        .iter()
        .map(WireEdit::from_edit)
        .collect();
    (instance, wire_edits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_is_deterministic() {
        let a = serde_json::to_string(&mixed_request(7, 3)).unwrap();
        let b = serde_json::to_string(&mixed_request(7, 3)).unwrap();
        assert_eq!(a, b);
        let c = serde_json::to_string(&mixed_request(8, 3)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn churn_sessions_are_deterministic_and_structurally_valid() {
        use netuncert_core::prelude::EffectiveGame;
        let (instance, edits) = churn_session(5, 6, 3, 24);
        let (again, edits_again) = churn_session(5, 6, 3, 24);
        assert_eq!(instance, again);
        assert_eq!(edits, edits_again);
        // Every edit applies cleanly in order to the mirrored game.
        let mut game =
            EffectiveGame::from_rows(instance.weights.clone(), instance.capacities.clone())
                .unwrap();
        for edit in &edits {
            game = game.apply_edit(&edit.to_edit()).expect("valid stream");
        }
    }

    #[test]
    fn duplicate_requests_share_instances() {
        // index 4 reuses index 3's instance (different body kinds allowed).
        let r3 = mixed_request(1, 3);
        let r4 = mixed_request(1, 4);
        let inst = |r: &Request| match &r.body {
            RequestBody::Solve(s) => s.instance.clone(),
            RequestBody::Bracket(b) => b.instance.clone(),
            RequestBody::Measure(m) => m.instance.clone(),
            _ => unreachable!(),
        };
        assert_eq!(
            serde_json::to_string(&inst(&r3)).unwrap(),
            serde_json::to_string(&inst(&r4)).unwrap()
        );
    }
}
