//! The bounded resident-session store behind the `Upload`/`Edit`/`Release`
//! verbs.
//!
//! A session pins one instance server-side: the current game, its fixed
//! initial traffic, and the **last certified profile** — the warm state an
//! `Edit` request repairs from without the client re-shipping the instance
//! each frame. The store is bounded the same way the warm tiers are: a
//! capacity in entries, least-recently-used eviction, and eviction really
//! *releases* the pinned game and profile (the entry is dropped, not
//! tombstoned).
//!
//! Staleness is typed, never silent. Session ids are allocated
//! sequentially, so a missing id tells its own history: an id below the
//! allocation watermark was once live and has since been evicted or
//! released ([`SessionLookup::Evicted`] →
//! [`ErrorKind::SessionEvicted`](crate::protocol::ErrorKind::SessionEvicted)),
//! while an id at or above the watermark never existed
//! ([`SessionLookup::Unknown`] →
//! [`ErrorKind::UnknownSession`](crate::protocol::ErrorKind::UnknownSession)).
//! That distinction costs two `u64`s of state, not a tombstone per dead
//! session.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use netuncert_core::prelude::{EffectiveGame, LinkLoads, PureProfile};

/// One session's pinned state, cloned out of the store for the repair call
/// (the store lock is never held across engine work).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The current game (the original upload with every accepted edit
    /// applied in order).
    pub game: EffectiveGame,
    /// The fixed initial link traffic the instance was uploaded with.
    pub initial: LinkLoads,
    /// The last certified pure Nash profile on `game`.
    pub profile: PureProfile,
    /// How many edits have been accepted since the upload.
    pub edits: u64,
}

/// How a session id resolved against the store.
#[derive(Debug)]
pub enum SessionLookup {
    /// The session is live; here is its pinned state.
    Found(SessionSnapshot),
    /// The id was once allocated but its session has been evicted (or
    /// explicitly released) since.
    Evicted,
    /// The id was never allocated by this store.
    Unknown,
}

/// How a [`SessionStore::remove`] resolved.
#[derive(Debug, PartialEq, Eq)]
pub enum SessionRemoval {
    /// The session was live and is now released; `edits` edits had been
    /// accepted over its lifetime.
    Released {
        /// Edits accepted since the upload.
        edits: u64,
    },
    /// The id was once allocated but already evicted or released.
    Evicted,
    /// The id was never allocated by this store.
    Unknown,
}

struct Entry {
    snapshot: SessionSnapshot,
    /// Key into `recency`; rewritten on every touch.
    tick: u64,
}

struct StoreInner {
    entries: HashMap<u64, Entry>,
    /// LRU order: tick → session id, oldest tick first. Ticks are unique
    /// (one per touch), so the first entry is always the eviction victim.
    recency: BTreeMap<u64, u64>,
    next_tick: u64,
    /// The allocation watermark: ids below it were once live.
    next_id: u64,
}

impl StoreInner {
    fn touch(&mut self, id: u64) {
        let entry = self.entries.get_mut(&id).expect("touched id is live");
        self.recency.remove(&entry.tick);
        entry.tick = self.next_tick;
        self.recency.insert(self.next_tick, id);
        self.next_tick += 1;
    }
}

/// A bounded LRU store of resident sessions. All methods take `&self`; one
/// internal mutex serialises metadata updates, and the pinned state is
/// cloned out so engine work never runs under the lock.
pub struct SessionStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
}

impl SessionStore {
    /// A store bounded to `capacity` live sessions (floored at 1).
    pub fn new(capacity: usize) -> Self {
        SessionStore {
            inner: Mutex::new(StoreInner {
                entries: HashMap::new(),
                recency: BTreeMap::new(),
                next_tick: 0,
                next_id: 1,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Pins a fresh session and returns `(id, evicted)`, where `evicted` is
    /// the id of the least-recently-used session this insert pushed out (its
    /// pinned game and profile are dropped here and now), if any.
    pub fn insert(
        &self,
        game: EffectiveGame,
        initial: LinkLoads,
        profile: PureProfile,
    ) -> (u64, Option<u64>) {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        let evicted = if inner.entries.len() >= self.capacity {
            let (&tick, &victim) = inner.recency.iter().next().expect("non-empty at capacity");
            inner.recency.remove(&tick);
            inner.entries.remove(&victim);
            Some(victim)
        } else {
            None
        };
        let id = inner.next_id;
        inner.next_id += 1;
        let tick = inner.next_tick;
        inner.next_tick += 1;
        inner.entries.insert(
            id,
            Entry {
                snapshot: SessionSnapshot {
                    game,
                    initial,
                    profile,
                    edits: 0,
                },
                tick,
            },
        );
        inner.recency.insert(tick, id);
        (id, evicted)
    }

    /// Resolves a session id, cloning its pinned state out and marking it
    /// most recently used.
    pub fn lookup(&self, id: u64) -> SessionLookup {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        if !inner.entries.contains_key(&id) {
            return if id != 0 && id < inner.next_id {
                SessionLookup::Evicted
            } else {
                SessionLookup::Unknown
            };
        }
        inner.touch(id);
        SessionLookup::Found(inner.entries[&id].snapshot.clone())
    }

    /// Replaces a session's game and certified profile after an accepted
    /// edit, bumping its edit count. Returns `false` (and stores nothing)
    /// when the session was evicted or released in the meantime.
    pub fn update(&self, id: u64, game: EffectiveGame, profile: PureProfile) -> bool {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        let Some(entry) = inner.entries.get_mut(&id) else {
            return false;
        };
        entry.snapshot.game = game;
        entry.snapshot.profile = profile;
        entry.snapshot.edits += 1;
        inner.touch(id);
        true
    }

    /// Releases a session, dropping its pinned state.
    pub fn remove(&self, id: u64) -> SessionRemoval {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        match inner.entries.remove(&id) {
            Some(entry) => {
                inner.recency.remove(&entry.tick);
                SessionRemoval::Released {
                    edits: entry.snapshot.edits,
                }
            }
            None if id != 0 && id < inner.next_id => SessionRemoval::Evicted,
            None => SessionRemoval::Unknown,
        }
    }

    /// Live sessions right now.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("session lock poisoned")
            .entries
            .len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netuncert_core::prelude::LinkLoads;

    fn pinned(tag: f64) -> (EffectiveGame, LinkLoads, PureProfile) {
        let game =
            EffectiveGame::from_rows(vec![1.0 + tag, 2.0], vec![vec![1.0, 2.0], vec![2.0, 1.0]])
                .unwrap();
        (game, LinkLoads::zero(2), PureProfile::new(vec![0, 1]))
    }

    fn insert(store: &SessionStore, tag: f64) -> (u64, Option<u64>) {
        let (game, initial, profile) = pinned(tag);
        store.insert(game, initial, profile)
    }

    #[test]
    fn ids_are_sequential_and_lookup_round_trips() {
        let store = SessionStore::new(4);
        let (a, _) = insert(&store, 0.0);
        let (b, _) = insert(&store, 1.0);
        assert_eq!((a, b), (1, 2));
        let SessionLookup::Found(snapshot) = store.lookup(a) else {
            panic!("session {a} must be live");
        };
        assert_eq!(snapshot.edits, 0);
        assert_eq!(snapshot.game.weights()[0], 1.0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn eviction_is_lru_and_lookup_refreshes_recency() {
        let store = SessionStore::new(2);
        let (a, _) = insert(&store, 0.0);
        let (b, _) = insert(&store, 1.0);
        // Touch a so b becomes the LRU victim.
        assert!(matches!(store.lookup(a), SessionLookup::Found(_)));
        let (c, evicted) = insert(&store, 2.0);
        assert_eq!(evicted, Some(b));
        assert!(matches!(store.lookup(b), SessionLookup::Evicted));
        assert!(matches!(store.lookup(a), SessionLookup::Found(_)));
        assert!(matches!(store.lookup(c), SessionLookup::Found(_)));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn evicted_and_unknown_ids_are_distinguished() {
        let store = SessionStore::new(1);
        let (a, _) = insert(&store, 0.0);
        let (_b, evicted) = insert(&store, 1.0);
        assert_eq!(evicted, Some(a));
        assert!(matches!(store.lookup(a), SessionLookup::Evicted));
        assert!(matches!(store.lookup(999), SessionLookup::Unknown));
        assert!(matches!(store.lookup(0), SessionLookup::Unknown));
        assert_eq!(store.remove(a), SessionRemoval::Evicted);
        assert_eq!(store.remove(999), SessionRemoval::Unknown);
    }

    #[test]
    fn update_bumps_the_edit_count_and_release_reports_it() {
        let store = SessionStore::new(2);
        let (id, _) = insert(&store, 0.0);
        let (game, _, profile) = pinned(3.0);
        assert!(store.update(id, game.clone(), profile.clone()));
        assert!(store.update(id, game.clone(), profile.clone()));
        let SessionLookup::Found(snapshot) = store.lookup(id) else {
            panic!("live");
        };
        assert_eq!(snapshot.edits, 2);
        assert_eq!(snapshot.game.weights()[0], 4.0);
        assert_eq!(store.remove(id), SessionRemoval::Released { edits: 2 });
        // Released ids answer Evicted from now on, and updates are ignored.
        assert!(matches!(store.lookup(id), SessionLookup::Evicted));
        assert!(!store.update(id, game, profile));
        assert!(store.is_empty());
    }

    #[test]
    fn capacity_is_floored_at_one() {
        let store = SessionStore::new(0);
        assert_eq!(store.capacity(), 1);
        let (a, _) = insert(&store, 0.0);
        let (b, evicted) = insert(&store, 1.0);
        assert_eq!(evicted, Some(a));
        assert!(matches!(store.lookup(b), SessionLookup::Found(_)));
    }
}
