//! The resident TCP service: listener, fixed worker pool, graceful drain.
//!
//! Architecture: one acceptor (the thread inside [`Server::run`]), one
//! lightweight reader thread per connection, and a **fixed pool** of worker
//! threads that do all engine work. Reader threads never compute — they
//! frame lines, enqueue [`Job`]s on an `mpsc` channel the workers share
//! behind a mutex, and write finished response lines back in request order
//! per connection. A slow request therefore occupies exactly one worker;
//! cached requests keep flowing through the remaining workers — the
//! property the `Timeout`-policy acceptance test pins.
//!
//! Graceful shutdown: a `Shutdown` request flips the draining flag (its
//! connection gets an ack first). The acceptor wakes via a self-connect,
//! stops accepting, and waits for every connection reader — which notice
//! the flag through a short read timeout, finish writing any in-flight
//! response, and close. When the last reader exits the job channel closes,
//! the workers drain what is queued and exit, and [`Server::run`] returns
//! `Ok(())` — the binary's exit 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::state::{ServeConfig, ServeState};

/// How often an idle connection reader wakes to check the draining flag.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// One unit of work for the pool: a framed request line plus the channel
/// that hands the response line back to the connection's reader thread.
struct Job {
    line: String,
    reply: Sender<String>,
}

/// A bound service, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    workers: usize,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) with the given
    /// configuration.
    pub fn bind(addr: &str, config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState::new(config)),
            workers: config.workers.max(1),
        })
    }

    /// The actually bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine-side state (shared; useful for in-process tests).
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Serves until a `Shutdown` request has drained the service. Blocks.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let (jobs_tx, jobs_rx) = channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let state = Arc::clone(&self.state);
                let rx = Arc::clone(&jobs_rx);
                std::thread::spawn(move || worker_loop(&state, &rx))
            })
            .collect();

        let mut readers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.draining() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            let tx = jobs_tx.clone();
            let addr_copy = addr;
            readers.push(std::thread::spawn(move || {
                connection_loop(stream, &state, &tx, addr_copy);
            }));
        }
        // Close our own job sender so the channel dies once the last reader
        // (each holding a clone) exits; then the workers drain and stop.
        drop(jobs_tx);
        for reader in readers {
            let _ = reader.join();
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// A worker: pull one job, run it through the engine state, send the line
/// back. Exits when the job channel closes (all readers gone).
fn worker_loop(state: &ServeState, jobs: &Mutex<Receiver<Job>>) {
    loop {
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let response = state.handle_line(&job.line);
        // The reader may have hung up (client gone) — fine, drop the reply.
        let _ = job.reply.send(response);
    }
}

/// One connection: frame lines under the size cap, dispatch each to the
/// pool, write the response, and wake periodically to honour draining. A
/// `Shutdown` request is acked and then this connection closes; an
/// over-long line gets a typed `Oversize` error and also closes (the
/// stream can no longer be framed), leaving every other connection and the
/// pool untouched.
fn connection_loop(
    stream: TcpStream,
    state: &ServeState,
    jobs: &Sender<Job>,
    server_addr: SocketAddr,
) {
    let max_line = state.limits().max_line_bytes;
    // Response lines are small and latency-bound; never wait on Nagle.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let _ = read_half.set_read_timeout(Some(DRAIN_POLL));
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        // `take` caps the bytes one frame may consume; timeouts leave the
        // partial line in `line` and the loop resumes it.
        let read = (&mut reader)
            .take((max_line + 1) as u64)
            .read_line(&mut line);
        match read {
            Ok(0) => return, // client closed
            Ok(_) if line.len() > max_line && !line.ends_with('\n') => {
                let reply = state.handle_oversize_line();
                let _ = write_frame(&mut writer, &reply);
                return;
            }
            Ok(_) if !line.ends_with('\n') => {
                // take() hit its cap exactly at a frame boundary case or the
                // peer sent EOF without a newline: treat as a final frame.
                let done = dispatch(state, jobs, &mut writer, line.trim_end());
                line.clear();
                if done {
                    let _ = wake_acceptor(server_addr);
                    return;
                }
                return; // EOF after an unterminated line
            }
            Ok(_) => {
                let done = dispatch(state, jobs, &mut writer, line.trim_end());
                line.clear();
                if done {
                    // The shutdown ack is written; unblock the acceptor so
                    // run() can stop accepting and join everyone.
                    let _ = wake_acceptor(server_addr);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Sends one framed request through the pool and writes the response line.
/// Returns `true` when the request was a `Shutdown` (connection closes).
fn dispatch(state: &ServeState, jobs: &Sender<Job>, writer: &mut TcpStream, line: &str) -> bool {
    let (reply_tx, reply_rx) = channel();
    let sent = jobs.send(Job {
        line: line.to_string(),
        reply: reply_tx,
    });
    let response = match sent {
        Ok(()) => reply_rx.recv().unwrap_or_default(),
        // Pool already gone (late drain): answer inline so the client still
        // gets a typed response.
        Err(_) => state.handle_line(line),
    };
    let _ = write_frame(writer, &response);
    state.draining()
}

/// Writes one response line as a single frame (one packet on loopback).
fn write_frame(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(response.len() + 1);
    frame.extend_from_slice(response.as_bytes());
    frame.push(b'\n');
    writer.write_all(&frame)?;
    writer.flush()
}

/// Self-connects to the acceptor so its blocking `accept` wakes up and
/// observes the draining flag.
fn wake_acceptor(addr: SocketAddr) -> std::io::Result<()> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
    drop(stream);
    Ok(())
}

impl ServeState {
    /// The typed reply for a line that exceeded the framing cap.
    pub(crate) fn handle_oversize_line(&self) -> String {
        use crate::protocol::{ErrorKind, Response, ResponseBody, WireError};
        let response = Response {
            id: 0,
            body: ResponseBody::Error(WireError::new(
                ErrorKind::Oversize,
                format!(
                    "request line exceeds the {}-byte cap",
                    self.limits().max_line_bytes
                ),
            )),
        };
        serde_json::to_string(&response).expect("wire types always serialise")
    }
}
