//! The resident TCP service: listener, bounded job queue, fixed worker
//! pool, graceful drain.
//!
//! Architecture: one acceptor (the thread inside [`Server::run`]), one
//! lightweight reader thread per connection, and a **fixed pool** of worker
//! threads that do all engine work. Reader threads parse frames and answer
//! three classes of request themselves — parse failures, `Stats`/`Shutdown`
//! and validation errors, and anything resolvable purely from the warm tier
//! ([`ServeState::try_handle_fast`]) — and enqueue everything else on a
//! **depth-capped** queue the workers share. A request that finds the queue
//! full is rejected immediately with a typed
//! [`ErrorKind::Busy`](crate::protocol::ErrorKind::Busy) carrying the
//! observed depth and the cap: under overload the service answers `Busy`
//! promptly and keeps serving cached requests through the reader fast path,
//! instead of queueing without bound behind the slow work.
//!
//! Framing is negotiated per connection by the first byte: a client that
//! opens with [`BINARY_MAGIC`] speaks length-prefixed binary frames
//! ([`crate::frame`]) for the rest of the connection; anything else is the
//! classic newline-delimited JSON. Both framings carry the same wire types
//! and produce identical decoded answers.
//!
//! Graceful shutdown: a `Shutdown` request flips the draining flag (its
//! connection gets an ack first). The acceptor wakes via a self-connect,
//! stops accepting, and waits for every connection reader — which notice
//! the flag through a short read timeout. A reader that is **mid-frame**
//! when the flag flips does not silently drop the started request: it
//! grants the peer a few more poll ticks to finish the frame (a completed
//! frame is answered normally — by then with a typed `Shutdown` error from
//! the draining gate), and if the frame still has not completed it answers
//! with a typed `Shutdown` error itself before closing. When the last
//! reader exits the queue closes, the workers drain what is queued and
//! exit, and [`Server::run`] returns `Ok(())` — the binary's exit 0.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use netuncert_core::obs::{elapsed_ns, Gauge};

use crate::frame::{self, BINARY_MAGIC};
use crate::protocol::{ErrorKind, Request, RequestBody, Response, ResponseBody, WireError};
use crate::state::{ServeConfig, ServeState};

/// How often an idle connection reader wakes to check the draining flag.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Extra [`DRAIN_POLL`] ticks a reader grants an already-started frame
/// once draining begins, before answering it with a typed `Shutdown` error
/// and closing.
const DRAIN_GRACE_TICKS: u32 = 3;

/// One unit of work for the pool: a parsed request plus the channel that
/// hands the finished response back to the connection's reader thread.
struct Job {
    request: Request,
    reply: Sender<Response>,
    /// When the reader pushed this job — the start of its queue wait.
    enqueued: Instant,
}

/// Why a [`JobQueue::push`] was refused.
enum PushError {
    /// The queue held `.0` jobs, at or over its cap — the back-pressure
    /// rejection.
    Full(usize),
    /// The queue is closed (late drain); the job is handed back so the
    /// reader can run it inline.
    Closed(Box<Job>),
}

/// The depth-capped job queue the readers feed and the workers drain.
/// `push` never blocks — admission control happens at the door, so a
/// rejected request learns its fate immediately instead of queueing behind
/// the very overload it is part of.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
    /// Mirrors the live depth into `serve.queue_depth`; updated under the
    /// queue lock so the gauge never observes a torn transition.
    depth: Arc<Gauge>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize, depth: Arc<Gauge>) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            depth,
        }
    }

    /// Admits a job if there is room, else reports `Full` with the observed
    /// depth (or `Closed` with the job handed back).
    fn push(&self, job: Job) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed(Box::new(job)));
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full(inner.jobs.len()));
        }
        inner.jobs.push_back(job);
        self.depth.set(inner.jobs.len() as u64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed **and**
    /// drained, which is a worker's signal to exit.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().ok()?;
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.depth.set(inner.jobs.len() as u64);
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).ok()?;
        }
    }

    /// Closes the queue: queued jobs still drain, new pushes get `Closed`.
    fn close(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.closed = true;
        }
        self.ready.notify_all();
    }
}

/// A bound service, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    workers: usize,
    queue_depth: usize,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) with the given
    /// configuration.
    pub fn bind(addr: &str, config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState::new(config)),
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
        })
    }

    /// The actually bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine-side state (shared; useful for in-process tests).
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Serves until a `Shutdown` request has drained the service. Blocks.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let queue = Arc::new(JobQueue::new(
            self.queue_depth,
            Arc::clone(&self.state.obs().queue_depth),
        ));
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let state = Arc::clone(&self.state);
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || worker_loop(&state, &queue))
            })
            .collect();

        let mut readers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.draining() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            let queue = Arc::clone(&queue);
            let addr_copy = addr;
            readers.push(std::thread::spawn(move || {
                connection_loop(stream, &state, &queue, addr_copy);
            }));
        }
        for reader in readers {
            let _ = reader.join();
        }
        // All readers are gone, so nothing can push any more: close the
        // queue, let the workers drain what is left, and join them.
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// A worker: pull one job, run it through the engine state, send the
/// response back. Exits when the queue closes (all readers gone).
///
/// The queue only ever holds compute verbs (the reader fast path always
/// answers admin verbs itself), so the wait/service histograms here — plus
/// the fast-path and inline records in [`respond`] — together count exactly
/// the compute requests the service answered.
fn worker_loop(state: &ServeState, queue: &JobQueue) {
    let obs = state.obs();
    while let Some(job) = queue.pop() {
        obs.queue_wait.record(elapsed_ns(job.enqueued));
        obs.busy_workers.add(1);
        let service_start = Instant::now();
        let response = state.handle_request(job.request);
        obs.service.record(elapsed_ns(service_start));
        obs.busy_workers.sub(1);
        // The reader may have hung up (client gone) — fine, drop the reply.
        let _ = job.reply.send(response);
    }
}

/// Whether a request needs engine work (and therefore belongs in the
/// queue-wait/service histograms). `Upload` and `Edit` solve/repair on a
/// worker; `Release` is bookkeeping the reader fast path always answers.
fn is_compute(body: &RequestBody) -> bool {
    matches!(
        body,
        RequestBody::Solve(_)
            | RequestBody::Bracket(_)
            | RequestBody::Measure(_)
            | RequestBody::Upload(_)
            | RequestBody::Edit(_)
    )
}

/// Answers one parsed request from a reader thread: the warm fast path if
/// it applies, else the bounded queue — with a typed `Busy` rejection when
/// the queue is full, and an inline evaluation when the pool is already
/// gone (late drain).
fn respond(state: &ServeState, queue: &JobQueue, request: Request) -> Response {
    let obs = state.obs();
    let received = Instant::now();
    let compute = is_compute(&request.body);
    if let Some(response) = state.try_handle_fast(&request) {
        obs.admit_fast.incr(1);
        if compute {
            // A fast-path answer never queued: zero wait, and its whole
            // cost is service time.
            obs.queue_wait.record(0);
            obs.service.record(elapsed_ns(received));
        }
        return response;
    }
    let id = request.id;
    let (reply_tx, reply_rx) = channel();
    match queue.push(Job {
        request,
        reply: reply_tx,
        enqueued: Instant::now(),
    }) {
        Ok(()) => {
            obs.admit_queued.incr(1);
            reply_rx.recv().unwrap_or_else(|_| Response {
                id,
                body: ResponseBody::Error(WireError::new(
                    ErrorKind::Engine,
                    "the worker handling this request died before answering",
                )),
            })
        }
        Err(PushError::Full(depth)) => {
            obs.admit_busy.incr(1);
            state.busy_response(id, depth, queue.capacity)
        }
        Err(PushError::Closed(job)) => {
            // Late drain: the pool is gone, so the reader evaluates the job
            // inline. Its wait is however long the failed push took.
            obs.admit_inline.incr(1);
            obs.queue_wait.record(elapsed_ns(job.enqueued));
            let service_start = Instant::now();
            let response = state.handle_request(job.request);
            obs.service.record(elapsed_ns(service_start));
            response
        }
    }
}

/// The typed answer for a frame that was started but never completed by
/// the time the drain grace ran out.
fn drain_abandoned_response() -> Response {
    Response {
        id: 0,
        body: ResponseBody::Error(WireError::new(
            ErrorKind::Shutdown,
            "service is draining and the in-flight frame never completed",
        )),
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One connection: sniff the first byte to pick the framing, then serve
/// frames until the client closes, the service drains, or the connection
/// poisons itself (oversize line). A `Shutdown` request is acked and then
/// this connection closes; an over-long frame gets a typed `Oversize`
/// error and also closes (the stream can no longer be framed), leaving
/// every other connection and the pool untouched.
fn connection_loop(
    stream: TcpStream,
    state: &ServeState,
    queue: &JobQueue,
    server_addr: SocketAddr,
) {
    // Response frames are small and latency-bound; never wait on Nagle.
    let _ = stream.set_nodelay(true);
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let _ = read_half.set_read_timeout(Some(DRAIN_POLL));
    let mut writer = stream;
    // Framing sniff: peek (not read) the first byte, honouring draining
    // while the connection sits idle before its first request.
    let mut first = [0u8; 1];
    loop {
        match read_half.peek(&mut first) {
            Ok(0) => return, // client closed without sending anything
            Ok(_) => break,
            Err(e) if is_timeout(&e) => {
                if state.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    if first[0] == BINARY_MAGIC {
        // Consume the sniffed magic byte; it is already buffered, so this
        // cannot block.
        let mut magic = [0u8; 1];
        if !matches!(read_half.read(&mut magic), Ok(1)) {
            return;
        }
        binary_loop(read_half, state, queue, &mut writer, server_addr);
    } else {
        json_loop(
            BufReader::new(read_half),
            state,
            queue,
            &mut writer,
            server_addr,
        );
    }
}

/// The newline-delimited JSON framing loop.
fn json_loop(
    mut reader: BufReader<TcpStream>,
    state: &ServeState,
    queue: &JobQueue,
    writer: &mut TcpStream,
    server_addr: SocketAddr,
) {
    let max_line = state.limits().max_line_bytes;
    let mut line = String::new();
    let mut grace = 0u32;
    loop {
        // `take` caps the bytes one frame may consume; timeouts leave the
        // partial line in `line` and the loop resumes it.
        let read = (&mut reader)
            .take((max_line + 1) as u64)
            .read_line(&mut line);
        match read {
            Ok(0) => return, // client closed
            Ok(_) if line.len() > max_line && !line.ends_with('\n') => {
                let reply = state.handle_oversize_line();
                let _ = write_line(writer, &reply);
                return;
            }
            Ok(_) if !line.ends_with('\n') => {
                // take() hit its cap exactly at a frame boundary case or the
                // peer sent EOF without a newline: treat as a final frame.
                let done = dispatch_line(state, queue, writer, &line);
                line.clear();
                if done {
                    let _ = wake_acceptor(server_addr);
                }
                return; // EOF after an unterminated line
            }
            Ok(_) => {
                grace = 0;
                let done = dispatch_line(state, queue, writer, &line);
                line.clear();
                if done {
                    // The shutdown ack is written; unblock the acceptor so
                    // run() can stop accepting and join everyone.
                    let _ = wake_acceptor(server_addr);
                    return;
                }
            }
            Err(e) if is_timeout(&e) => {
                if !state.draining() {
                    continue;
                }
                if line.is_empty() {
                    return; // idle connection: drain closes it silently
                }
                // A frame is in flight: let the peer finish it for a few
                // more ticks, then answer it as abandoned rather than
                // dropping it without a word.
                grace += 1;
                if grace > DRAIN_GRACE_TICKS {
                    let encoded = serde_json::to_string(&drain_abandoned_response())
                        .expect("wire types always serialise");
                    let _ = write_line(writer, &encoded);
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Parses one line, answers it (fast path, queue, or typed parse error),
/// writes the response line. Returns `true` when the service is draining
/// (connection closes).
fn dispatch_line(state: &ServeState, queue: &JobQueue, writer: &mut TcpStream, line: &str) -> bool {
    let decode_start = Instant::now();
    let parsed = serde_json::from_str::<Request>(line.trim_end());
    state.obs().frame_decode.record(elapsed_ns(decode_start));
    let response = match parsed {
        Ok(request) => respond(state, queue, request),
        // The exact bytes `ServeState::handle_line` would produce — the
        // replay harness diffs against it.
        Err(err) => Response {
            id: 0,
            body: ResponseBody::Error(WireError::new(
                ErrorKind::Parse,
                format!("malformed request: {err}"),
            )),
        },
    };
    let encoded = serde_json::to_string(&response).expect("wire types always serialise");
    let _ = write_line(writer, &encoded);
    state.draining()
}

/// How one polled read ended.
enum PollRead {
    /// The buffer was filled.
    Filled,
    /// The peer closed (possibly mid-buffer — the connection is gone either
    /// way).
    Eof,
    /// Draining fired. `mid_frame` says whether a frame had been started
    /// (the grace ticks are exhausted) or the connection was simply idle.
    Drained { mid_frame: bool },
    /// A hard I/O error.
    Failed,
}

/// Fills `buf` from short timeout-bounded reads, honouring the draining
/// flag between them: an idle connection closes silently, a started frame
/// (`frame_started`, or any byte of `buf` already read) gets
/// [`DRAIN_GRACE_TICKS`] extra polls to complete before being abandoned.
fn read_poll(
    reader: &mut TcpStream,
    buf: &mut [u8],
    state: &ServeState,
    frame_started: bool,
) -> PollRead {
    let mut at = 0;
    let mut grace = 0u32;
    while at < buf.len() {
        match reader.read(&mut buf[at..]) {
            Ok(0) => return PollRead::Eof,
            Ok(n) => {
                at += n;
                grace = 0;
            }
            Err(e) if is_timeout(&e) => {
                if !state.draining() {
                    continue;
                }
                if !frame_started && at == 0 {
                    return PollRead::Drained { mid_frame: false };
                }
                grace += 1;
                if grace > DRAIN_GRACE_TICKS {
                    return PollRead::Drained { mid_frame: true };
                }
            }
            Err(_) => return PollRead::Failed,
        }
    }
    PollRead::Filled
}

/// The length-prefixed binary framing loop ([`crate::frame`]).
fn binary_loop(
    mut reader: TcpStream,
    state: &ServeState,
    queue: &JobQueue,
    writer: &mut TcpStream,
    server_addr: SocketAddr,
) {
    let max_len = state.limits().max_line_bytes;
    loop {
        let mut header = [0u8; 4];
        match read_poll(&mut reader, &mut header, state, false) {
            PollRead::Filled => {}
            PollRead::Drained { mid_frame: true } => {
                let _ = write_binary_response(writer, &drain_abandoned_response());
                return;
            }
            PollRead::Eof | PollRead::Drained { mid_frame: false } | PollRead::Failed => return,
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > max_len {
            // Mirrors the JSON loop's oversize contract: typed error, then
            // close (the stream could still be framed, but the peer is
            // violating the cap — same policy on both framings).
            let _ = write_binary_response(writer, &state.oversize_response());
            return;
        }
        let mut payload = vec![0u8; len];
        match read_poll(&mut reader, &mut payload, state, true) {
            PollRead::Filled => {}
            PollRead::Drained { .. } => {
                let _ = write_binary_response(writer, &drain_abandoned_response());
                return;
            }
            PollRead::Eof | PollRead::Failed => return,
        }
        let decode_start = Instant::now();
        let decoded = decode_binary_request(&payload);
        state.obs().frame_decode.record(elapsed_ns(decode_start));
        let response = match decoded {
            Ok(request) => respond(state, queue, request),
            Err(message) => Response {
                id: 0,
                body: ResponseBody::Error(WireError::new(ErrorKind::Parse, message)),
            },
        };
        if write_binary_response(writer, &response).is_err() {
            return;
        }
        if state.draining() {
            let _ = wake_acceptor(server_addr);
            return;
        }
    }
}

/// Decodes one binary payload into a [`Request`].
fn decode_binary_request(payload: &[u8]) -> Result<Request, String> {
    let value = frame::decode_value(payload).map_err(|e| format!("malformed request: {e}"))?;
    Request::from_value(&value).map_err(|e| format!("malformed request: {e}"))
}

/// Writes one response as a binary frame.
fn write_binary_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let payload = frame::encode_value(&response.to_value());
    frame::write_frame(writer, &payload)
}

/// Writes one response line as a single buffer (one packet on loopback).
fn write_line(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(response.len() + 1);
    buf.extend_from_slice(response.as_bytes());
    buf.push(b'\n');
    writer.write_all(&buf)?;
    writer.flush()
}

/// Self-connects to the acceptor so its blocking `accept` wakes up and
/// observes the draining flag.
fn wake_acceptor(addr: SocketAddr) -> std::io::Result<()> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
    drop(stream);
    Ok(())
}

impl ServeState {
    /// The typed reply for a line that exceeded the framing cap.
    pub(crate) fn handle_oversize_line(&self) -> String {
        serde_json::to_string(&self.oversize_response()).expect("wire types always serialise")
    }

    /// The typed response for a frame that exceeded the framing cap.
    pub(crate) fn oversize_response(&self) -> Response {
        Response {
            id: 0,
            body: ResponseBody::Error(WireError::new(
                ErrorKind::Oversize,
                format!(
                    "request line exceeds the {}-byte cap",
                    self.limits().max_line_bytes
                ),
            )),
        }
    }
}
