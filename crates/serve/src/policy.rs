//! The declarative request-policy tree and its interpreter.
//!
//! Requests do not pick a single algorithm; they carry a policy tree in the
//! geph5 `RouteDescriptor` idiom (SNIPPETS.md, snippet 3):
//!
//! * [`Policy::Solve`] / [`Policy::Bracket`] — leaves naming an ordered
//!   engine composition by registry id, with optional budget overrides.
//! * [`Policy::Race`] — solve-only: step every child leaf **in lockstep
//!   passes** and return the first completed child that found an
//!   equilibrium. The winner is decided by `(completion round, child
//!   index)`, which depends only on pass counts — never on wall-clock — so
//!   races are deterministic.
//! * [`Policy::Fallback`] — try children in order; move on when a child
//!   completes without a solution, misses its width goal, deadlines, or
//!   fails; the last child's outcome is returned as-is.
//! * [`Policy::Timeout`] — evaluate the inner policy under a deadline,
//!   enforced **cooperatively at pass granularity**: the interpreter checks
//!   the clock between kernel passes (and before each atomic unit), never
//!   mid-pass, so any result that is produced is bit-identical to an
//!   undeadlined run. Atomic units — closed-form solvers, exhaustive
//!   enumeration — are never interrupted; an expired deadline is only
//!   noticed at the next boundary. Bracket leaves are **not** atomic: the
//!   deadline is threaded into the estimator walk as an
//!   [`OptCheckpoint`], which the long-running estimators poll between
//!   units of work (branch-and-bound node batches, bisection iterations,
//!   descent restarts). A deadline that fires mid-leaf yields a
//!   [`BracketEval::Partial`] carrying the certified best-so-far brackets.
//!
//! Every leaf shares the service's warm tier: a leaf computes the same
//! canonical cache key as a direct `SolverEngine`/`OptEngine` call with the
//! same composition and budgets, so service answers and direct engine calls
//! read and write the same entries and stay replay-exact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use netuncert_core::obs::{Recorder, SpanId};
use netuncert_core::opt::cache::canonical_key as opt_canonical_key;
use netuncert_core::prelude::{
    Applicability, EffectiveGame, EngineSolution, GameError, KernelRun, KernelScratch, LinkLoads,
    OptCache, OptCheckpoint, OptConfig, OptEngine, OptOutcome, PureNashMethod, SolveCache,
    SolveTelemetry, Solver, SolverAttempt, SolverConfig, SolverEngine, SolverKind,
};
use netuncert_core::prelude::{OptBackendKind, OptMethod, PureNashSolution};
use netuncert_core::solvers::cache::canonical_key;
use netuncert_core::solvers::engine::SolverDetail;
use netuncert_core::solvers::kernel::{SoAGame, SoAView};

use crate::protocol::{ErrorKind, WireError};

/// Deepest accepted policy nesting; anything deeper is rejected as
/// [`ErrorKind::InvalidRequest`] before evaluation.
pub const MAX_POLICY_DEPTH: usize = 8;

/// Longest accepted deadline, milliseconds (one hour). A deadline is an
/// overload-protection device, not a scheduler; anything longer is almost
/// certainly a unit mistake — and unbounded values would overflow the
/// `Instant` arithmetic that resolves them ([`ErrorKind::InvalidDeadline`]).
pub const MAX_DEADLINE_MS: i64 = 3_600_000;

/// A declarative description of how to answer a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Run an ordered solver composition (solve requests only).
    Solve(SolveLeaf),
    /// Run an ordered estimator composition (bracket/measure requests only).
    Bracket(BracketLeaf),
    /// Step the child solve leaves in lockstep; first equilibrium wins.
    Race(Vec<Policy>),
    /// Try children in order until one succeeds.
    Fallback(Vec<Policy>),
    /// Evaluate the inner policy under a deadline.
    Timeout(TimeoutPolicy),
}

impl Policy {
    /// Whether any node in the tree is a [`Policy::Timeout`]. Such policies
    /// give timing-dependent answers (a request may or may not beat its
    /// deadline), so they are excluded from the byte-for-byte replay
    /// contract ([`crate::replay`]).
    pub fn has_timeout(&self) -> bool {
        match self {
            Policy::Solve(_) | Policy::Bracket(_) => false,
            Policy::Race(children) | Policy::Fallback(children) => {
                children.iter().any(Policy::has_timeout)
            }
            Policy::Timeout(_) => true,
        }
    }
}

/// A solve leaf: solver registry ids (in engine order) plus optional budget
/// overrides on top of the service's base [`SolverConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveLeaf {
    /// Registry ids accepted by `SolverKind::parse` (e.g. `"local_search"`).
    pub solvers: Vec<String>,
    /// Restart-budget override for `LocalSearch`, or `null`.
    pub restarts: Option<u64>,
    /// Step-budget override for best-response dynamics, or `null`.
    pub max_steps: Option<u64>,
}

/// A bracket leaf: estimator registry ids plus an optional adaptive width
/// goal on top of the service's base [`OptConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BracketLeaf {
    /// Registry ids accepted by `OptBackendKind::parse` (e.g. `"lpt"`).
    pub backends: Vec<String>,
    /// Adaptive width goal (finite, `> 1.0`), or `null` for fixed budgets.
    pub width_goal: Option<f64>,
    /// Restart-budget override for `Descent`, or `null`.
    pub restarts: Option<u64>,
}

/// A deadline wrapper around an inner policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeoutPolicy {
    /// Deadline in milliseconds from request start; must be positive.
    pub ms: i64,
    /// The policy to evaluate under the deadline.
    pub lower: Box<Policy>,
}

/// Which leaf kind a request's policy tree must bottom out in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// `Solve` requests: only [`Policy::Solve`] leaves.
    Solve,
    /// `Bracket`/`Measure` requests: only [`Policy::Bracket`] leaves.
    Bracket,
}

impl SolveLeaf {
    /// Resolves registry ids and merges budget overrides onto `base`.
    fn resolve(&self, base: &SolverConfig) -> Result<(Vec<SolverKind>, SolverConfig), WireError> {
        if self.solvers.is_empty() {
            return Err(WireError::new(
                ErrorKind::InvalidRequest,
                "a Solve leaf needs at least one solver id",
            ));
        }
        let mut kinds = Vec::with_capacity(self.solvers.len());
        for id in &self.solvers {
            match SolverKind::parse(id) {
                Some(kind) => kinds.push(kind),
                None => {
                    return Err(WireError::new(
                        ErrorKind::UnknownPolicy,
                        format!("unknown solver id `{id}`"),
                    ))
                }
            }
        }
        let mut config = *base;
        if let Some(restarts) = self.restarts {
            config.restarts = restarts as usize;
        }
        if let Some(max_steps) = self.max_steps {
            config.max_steps = max_steps as usize;
        }
        Ok((kinds, config))
    }
}

impl BracketLeaf {
    /// Resolves registry ids and validates/merges the width goal onto
    /// `base`. The goal is checked here so a bad request becomes a typed
    /// error instead of tripping `OptEngine`'s constructor contract.
    fn resolve(&self, base: &OptConfig) -> Result<(Vec<OptBackendKind>, OptConfig), WireError> {
        if self.backends.is_empty() {
            return Err(WireError::new(
                ErrorKind::InvalidRequest,
                "a Bracket leaf needs at least one backend id",
            ));
        }
        let mut kinds = Vec::with_capacity(self.backends.len());
        for id in &self.backends {
            match OptBackendKind::parse(id) {
                Some(kind) => kinds.push(kind),
                None => {
                    return Err(WireError::new(
                        ErrorKind::UnknownPolicy,
                        format!("unknown opt backend id `{id}`"),
                    ))
                }
            }
        }
        let mut config = *base;
        if let Some(goal) = self.width_goal {
            if !(goal.is_finite() && goal > 1.0) {
                return Err(WireError::new(
                    ErrorKind::InvalidRequest,
                    format!("width_goal must be a finite ratio above 1.0, got {goal}"),
                ));
            }
            config.width_goal = Some(goal);
        }
        if let Some(restarts) = self.restarts {
            config.restarts = restarts as usize;
        }
        Ok((kinds, config))
    }
}

/// Validates a policy tree for `mode` without evaluating anything: leaf
/// kinds match the request verb, registry ids resolve, deadlines are
/// positive, `Race` only wraps solve leaves, and the nesting depth is
/// bounded.
pub fn validate(policy: &Policy, mode: PolicyMode) -> Result<(), WireError> {
    validate_at(policy, mode, 0)
}

fn validate_at(policy: &Policy, mode: PolicyMode, depth: usize) -> Result<(), WireError> {
    if depth > MAX_POLICY_DEPTH {
        return Err(WireError::new(
            ErrorKind::InvalidRequest,
            format!("policy tree deeper than {MAX_POLICY_DEPTH}"),
        ));
    }
    match policy {
        Policy::Solve(leaf) => {
            if mode != PolicyMode::Solve {
                return Err(WireError::new(
                    ErrorKind::InvalidRequest,
                    "a Solve leaf is not allowed in a bracket policy",
                ));
            }
            leaf.resolve(&SolverConfig::default()).map(|_| ())
        }
        Policy::Bracket(leaf) => {
            if mode != PolicyMode::Bracket {
                return Err(WireError::new(
                    ErrorKind::InvalidRequest,
                    "a Bracket leaf is not allowed in a solve policy",
                ));
            }
            leaf.resolve(&OptConfig::default()).map(|_| ())
        }
        Policy::Race(children) => {
            if mode != PolicyMode::Solve {
                return Err(WireError::new(
                    ErrorKind::InvalidRequest,
                    "Race is only defined for solve policies",
                ));
            }
            if children.is_empty() {
                return Err(WireError::new(
                    ErrorKind::InvalidRequest,
                    "Race needs at least one child",
                ));
            }
            for child in children {
                match child {
                    Policy::Solve(leaf) => leaf.resolve(&SolverConfig::default()).map(|_| ())?,
                    _ => {
                        return Err(WireError::new(
                            ErrorKind::InvalidRequest,
                            "Race children must be Solve leaves",
                        ))
                    }
                }
            }
            Ok(())
        }
        Policy::Fallback(children) => {
            if children.is_empty() {
                return Err(WireError::new(
                    ErrorKind::InvalidRequest,
                    "Fallback needs at least one child",
                ));
            }
            for child in children {
                validate_at(child, mode, depth + 1)?;
            }
            Ok(())
        }
        Policy::Timeout(timeout) => {
            check_deadline_ms(timeout.ms)?;
            validate_at(&timeout.lower, mode, depth + 1)
        }
    }
}

/// Rejects non-positive and over-long deadlines as
/// [`ErrorKind::InvalidDeadline`] (shared by validation and evaluation, so
/// a tree that skipped validation still cannot reach the `Instant` math
/// with a degenerate value).
fn check_deadline_ms(ms: i64) -> Result<(), WireError> {
    if ms <= 0 {
        return Err(WireError::new(
            ErrorKind::InvalidDeadline,
            format!("deadline must be positive, got {ms} ms"),
        ));
    }
    if ms > MAX_DEADLINE_MS {
        return Err(WireError::new(
            ErrorKind::InvalidDeadline,
            format!("deadline must be at most {MAX_DEADLINE_MS} ms (one hour), got {ms} ms"),
        ));
    }
    Ok(())
}

/// Resolves a validated `ms` against the clock and an optional outer
/// deadline. `checked_add` is a second line of defence behind
/// [`check_deadline_ms`]: even a value that slipped past validation can
/// only become a typed error, never an `Instant` overflow panic.
fn resolve_deadline(ms: i64, outer: Option<Instant>) -> Result<Instant, WireError> {
    check_deadline_ms(ms)?;
    let inner = Instant::now()
        .checked_add(Duration::from_millis(ms as u64))
        .ok_or_else(|| {
            WireError::new(
                ErrorKind::InvalidDeadline,
                format!("deadline of {ms} ms is beyond representable time"),
            )
        })?;
    Ok(outer.map_or(inner, |outer| outer.min(inner)))
}

/// Everything a policy evaluation needs from the service.
pub struct EvalCtx<'a> {
    /// The validated instance.
    pub game: &'a EffectiveGame,
    /// Its initial link loads.
    pub initial: &'a LinkLoads,
    /// The shared solve warm tier.
    pub solve_cache: &'a Arc<SolveCache>,
    /// The shared opt warm tier.
    pub opt_cache: &'a Arc<OptCache>,
    /// Base solver budgets that leaves override.
    pub base_solver: SolverConfig,
    /// Base opt budgets that leaves override.
    pub base_opt: OptConfig,
    /// Observability probes; threaded into every engine a leaf builds. The
    /// disabled default keeps policy evaluation probe-free.
    pub recorder: Recorder,
    /// Parent span for the per-leaf spans (the request-level span opened by
    /// the handler), if one is being recorded.
    pub parent_span: Option<SpanId>,
}

/// Records how much deadline was left when an evaluation completed — the
/// "slack" a timed-out policy tree finished with. No-op when disabled.
fn record_slack(ctx: &EvalCtx<'_>, deadline: Instant) {
    if !ctx.recorder.enabled() {
        return;
    }
    let slack = deadline
        .checked_duration_since(Instant::now())
        .map_or(0, |left| left.as_nanos().min(u128::from(u64::MAX)) as u64);
    ctx.recorder.record("policy.deadline_slack_ns", slack);
}

/// How a solve policy ended.
pub enum SolveEval {
    /// The policy completed; the engine solution may or may not hold an
    /// equilibrium.
    Done(EngineSolution),
    /// A deadline fired before the policy completed.
    Deadline,
}

/// A completed bracket leaf plus whether its own width goal was met (always
/// `true` for leaves without a goal) — what [`Policy::Fallback`] dispatches
/// on.
pub struct BracketDone {
    /// The certified outcome.
    pub outcome: OptOutcome,
    /// Whether both brackets meet the leaf's width goal.
    pub goal_met: bool,
}

/// How a bracket policy ended.
pub enum BracketEval {
    /// The policy completed with certified brackets.
    Done(BracketDone),
    /// A deadline fired inside a bracket leaf; the certified best-so-far
    /// outcome at the last checkpoint.
    Partial(OptOutcome),
    /// A deadline fired before any leaf produced anything certifiable.
    Deadline,
}

/// Evaluates a solve policy. `deadline`, when set, is enforced at pass
/// granularity (see the [module docs](self)).
pub fn eval_solve(
    policy: &Policy,
    ctx: &EvalCtx<'_>,
    deadline: Option<Instant>,
) -> Result<SolveEval, WireError> {
    match policy {
        Policy::Solve(leaf) => {
            let (kinds, config) = leaf.resolve(&ctx.base_solver)?;
            let span = ctx.recorder.span_under("solve_leaf", ctx.parent_span);
            let result = match deadline {
                // No deadline: this IS a direct engine call sharing the warm
                // tier — trivially bit-identical to in-process replay.
                None => SolverEngine::from_kinds(config, &kinds)
                    .with_cache(Arc::clone(ctx.solve_cache))
                    .with_recorder(ctx.recorder.clone())
                    .solve(ctx.game, ctx.initial)
                    .map(SolveEval::Done)
                    .map_err(|e| WireError::engine(&e)),
                Some(deadline) => solve_leaf_stepped(&kinds, &config, ctx, deadline),
            };
            span.finish();
            result
        }
        Policy::Race(children) => race_solve(children, ctx, deadline),
        Policy::Fallback(children) => {
            for (i, child) in children.iter().enumerate() {
                let last = i + 1 == children.len();
                match eval_solve(child, ctx, deadline) {
                    Ok(SolveEval::Done(solved)) if solved.solution.is_some() => {
                        return Ok(SolveEval::Done(solved))
                    }
                    other if last => return other,
                    // No solution, deadline, or a failing child: fall through
                    // to the next sibling.
                    _ => {}
                }
            }
            Err(WireError::new(
                ErrorKind::InvalidRequest,
                "Fallback needs at least one child",
            ))
        }
        Policy::Timeout(timeout) => {
            let effective = resolve_deadline(timeout.ms, deadline)?;
            eval_solve(&timeout.lower, ctx, Some(effective))
        }
        Policy::Bracket(_) => Err(WireError::new(
            ErrorKind::InvalidRequest,
            "a Bracket leaf is not allowed in a solve policy",
        )),
    }
}

/// Evaluates a bracket policy. Under a deadline, a bracket leaf is **not**
/// atomic: the estimator walk polls an [`OptCheckpoint`] between units of
/// work, so an expired deadline yields the certified best-so-far brackets
/// as [`BracketEval::Partial`] instead of an all-or-nothing answer.
pub fn eval_bracket(
    policy: &Policy,
    ctx: &EvalCtx<'_>,
    deadline: Option<Instant>,
) -> Result<BracketEval, WireError> {
    match policy {
        Policy::Bracket(leaf) => {
            let (kinds, config) = leaf.resolve(&ctx.base_opt)?;
            let span = ctx.recorder.span_under("bracket_leaf", ctx.parent_span);
            let result = match deadline {
                // No deadline: this IS a direct engine call sharing the warm
                // tier — trivially bit-identical to in-process replay.
                None => {
                    let engine = OptEngine::from_kinds(config, &kinds)
                        .with_cache(Arc::clone(ctx.opt_cache))
                        .with_recorder(ctx.recorder.clone());
                    match engine.estimate(ctx.game, ctx.initial) {
                        Ok(outcome) => Ok(BracketEval::Done(leaf_done(leaf, outcome))),
                        Err(e) => Err(WireError::engine(&e)),
                    }
                }
                Some(deadline) => bracket_leaf_under(leaf, &kinds, config, ctx, deadline),
            };
            span.finish();
            result
        }
        Policy::Fallback(children) => {
            for (i, child) in children.iter().enumerate() {
                let last = i + 1 == children.len();
                match eval_bracket(child, ctx, deadline) {
                    Ok(BracketEval::Done(done)) if done.goal_met => {
                        return Ok(BracketEval::Done(done))
                    }
                    // A partial bracket means the deadline has already
                    // fired: later children could at best add a plain
                    // Deadline, losing the certified bounds — return it.
                    Ok(BracketEval::Partial(outcome)) => return Ok(BracketEval::Partial(outcome)),
                    other if last => return other,
                    // Goal miss, deadline, or a failing child (e.g. a
                    // composition with no finite upper bound): fall through.
                    _ => {}
                }
            }
            Err(WireError::new(
                ErrorKind::InvalidRequest,
                "Fallback needs at least one child",
            ))
        }
        Policy::Timeout(timeout) => {
            let effective = resolve_deadline(timeout.ms, deadline)?;
            eval_bracket(&timeout.lower, ctx, Some(effective))
        }
        Policy::Solve(_) | Policy::Race(_) => Err(WireError::new(
            ErrorKind::InvalidRequest,
            "only Bracket leaves (and Fallback/Timeout) are allowed in a bracket policy",
        )),
    }
}

/// Wraps a completed outcome with the leaf's width-goal verdict.
fn leaf_done(leaf: &BracketLeaf, outcome: OptOutcome) -> BracketDone {
    let goal_met = leaf
        .width_goal
        .is_none_or(|goal| outcome.opt1.meets_goal(goal) && outcome.opt2.meets_goal(goal));
    BracketDone { outcome, goal_met }
}

/// The deadline path of a single bracket leaf: a counting warm-tier lookup
/// (a hit wins even against an already-expired deadline, keeping cached
/// requests flowing under load), then a cold `estimate_under` walk with the
/// deadline threaded in as an [`OptCheckpoint`]. Only **complete** walks
/// are inserted into the warm tier — a partial bracket must never poison
/// it.
fn bracket_leaf_under(
    leaf: &BracketLeaf,
    kinds: &[OptBackendKind],
    config: OptConfig,
    ctx: &EvalCtx<'_>,
    deadline: Instant,
) -> Result<BracketEval, WireError> {
    let methods: Vec<OptMethod> = kinds.iter().map(|k| k.method()).collect();
    let key = opt_canonical_key(&methods, &config, ctx.game, ctx.initial);
    if let Some(hit) = ctx.opt_cache.lookup(&key) {
        record_slack(ctx, deadline);
        return Ok(BracketEval::Done(leaf_done(leaf, hit)));
    }
    let expired = move || Instant::now() >= deadline;
    let engine = OptEngine::from_kinds(config, kinds).with_recorder(ctx.recorder.clone());
    match engine.estimate_under(ctx.game, ctx.initial, OptCheckpoint::new(&expired)) {
        Ok(run) if run.deadlined => Ok(BracketEval::Partial(run.outcome)),
        Ok(run) => {
            ctx.opt_cache.insert(key, run.outcome.clone());
            record_slack(ctx, deadline);
            Ok(BracketEval::Done(leaf_done(leaf, run.outcome)))
        }
        // A walk cut down before any upper-bound backend ran has nothing
        // certifiable to report — the plain deadline outcome, not an error.
        Err(GameError::EmptyBracket { .. }) if expired() => Ok(BracketEval::Deadline),
        Err(e) => Err(WireError::engine(&e)),
    }
}

/// A pass-resumable solve of one leaf: the stepped twin of the engine's
/// cold-solve walk. Stepping this run to completion produces — minus
/// wall-clock telemetry — exactly what `SolverEngine::solve` produces for
/// the same composition, budgets and instance; the integration suite pins
/// that equivalence.
struct LeafRun<'a> {
    solvers: &'a [Box<dyn Solver>],
    config: &'a SolverConfig,
    game: &'a EffectiveGame,
    initial: &'a LinkLoads,
    view: SoAView<'a>,
    attempts: Vec<SolverAttempt>,
    next_solver: usize,
    run: Option<Box<dyn KernelRun + 'a>>,
    run_applicability: Applicability,
    run_method: PureNashMethod,
    run_started: Instant,
    started: Instant,
    done: Option<Result<EngineSolution, GameError>>,
}

impl<'a> LeafRun<'a> {
    fn new(
        solvers: &'a [Box<dyn Solver>],
        config: &'a SolverConfig,
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        view: SoAView<'a>,
    ) -> Self {
        let now = Instant::now();
        LeafRun {
            solvers,
            config,
            game,
            initial,
            view,
            attempts: Vec::new(),
            next_solver: 0,
            run: None,
            run_applicability: Applicability::Heuristic,
            run_method: PureNashMethod::BestResponse,
            run_started: now,
            started: now,
            done: None,
        }
    }

    fn record(
        &mut self,
        method: PureNashMethod,
        applicability: Applicability,
        detail: &SolverDetail,
        started: Instant,
    ) {
        self.attempts.push(SolverAttempt {
            method,
            applicability,
            iterations: detail.iterations,
            restarts: detail.restarts,
            found: detail.solution.is_some(),
            wall_ns: started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        });
    }

    fn finish_with(&mut self, solution: Option<PureNashSolution>) {
        self.done = Some(Ok(EngineSolution {
            solution,
            telemetry: SolveTelemetry {
                attempts: std::mem::take(&mut self.attempts),
                total_wall_ns: self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            },
        }));
    }

    /// Advances one deadline-checkable unit: one kernel pass, or one inline
    /// solver, or the skip-scan to the next applicable solver. Returns
    /// `true` when the leaf has finished.
    fn step(&mut self, scratch: &mut KernelScratch) -> bool {
        if self.done.is_some() {
            return true;
        }
        // An in-flight kernel run: advance it by exactly one pass.
        if self.run.is_some() {
            let finished = self.run.as_mut().expect("just checked").step(scratch);
            if let Some(detail) = finished {
                self.run = None;
                let (method, applicability, started) =
                    (self.run_method, self.run_applicability, self.run_started);
                self.record(method, applicability, &detail, started);
                if detail.solution.is_some() || applicability == Applicability::Conclusive {
                    self.finish_with(detail.solution);
                }
            }
            return self.done.is_some();
        }
        // Walk to the next applicable solver: install its kernel run, or run
        // it inline as one atomic unit.
        loop {
            let Some(solver) = self.solvers.get(self.next_solver) else {
                self.finish_with(None);
                return true;
            };
            self.next_solver += 1;
            let applicability = solver.applicability(self.game, self.initial, self.config);
            if applicability == Applicability::NotApplicable {
                continue;
            }
            self.run_started = Instant::now();
            if let Some(run) = solver.kernel_run(self.game, self.initial, self.view, self.config) {
                self.run = Some(run);
                self.run_applicability = applicability;
                self.run_method = solver.method();
                return false;
            }
            match solver.solve_detailed(self.game, self.initial, self.config) {
                Err(e) => {
                    self.done = Some(Err(e));
                    return true;
                }
                Ok(detail) => {
                    let started = self.run_started;
                    self.record(solver.method(), applicability, &detail, started);
                    if detail.solution.is_some() || applicability == Applicability::Conclusive {
                        self.finish_with(detail.solution);
                        return true;
                    }
                    // Inconclusive inline attempt: yield so the caller can
                    // check the deadline before the next solver starts.
                    return false;
                }
            }
        }
    }

    fn finish(self) -> Result<EngineSolution, GameError> {
        self.done.expect("finish() called before the run completed")
    }
}

/// The owned per-leaf state a stepped run borrows from (solver objects, SoA
/// form, cache key) — kept separate from [`LeafRun`] so the run can borrow
/// it without self-reference.
struct LeafCtx {
    config: SolverConfig,
    solvers: Vec<Box<dyn Solver>>,
    soa: SoAGame,
    key: Vec<u8>,
}

impl LeafCtx {
    fn build(kinds: &[SolverKind], config: SolverConfig, ctx: &EvalCtx<'_>) -> Self {
        let methods: Vec<PureNashMethod> = kinds.iter().map(|k| k.method()).collect();
        let key = canonical_key(&methods, &config, ctx.game, ctx.initial);
        LeafCtx {
            config,
            solvers: kinds.iter().map(|k| k.build()).collect(),
            soa: SoAGame::from_game(ctx.game),
            key,
        }
    }
}

/// The deadline path of a single solve leaf: cache lookup, then the stepped
/// walk with the clock checked between units. Completed runs are inserted
/// into the warm tier exactly like an engine solve would.
fn solve_leaf_stepped(
    kinds: &[SolverKind],
    config: &SolverConfig,
    ctx: &EvalCtx<'_>,
    deadline: Instant,
) -> Result<SolveEval, WireError> {
    let leaf = LeafCtx::build(kinds, *config, ctx);
    if let Some(hit) = ctx.solve_cache.lookup(&leaf.key) {
        record_slack(ctx, deadline);
        return Ok(SolveEval::Done(hit));
    }
    let mut scratch = KernelScratch::new();
    let mut run = LeafRun::new(
        &leaf.solvers,
        &leaf.config,
        ctx.game,
        ctx.initial,
        leaf.soa.view(),
    );
    loop {
        if Instant::now() >= deadline {
            return Ok(SolveEval::Deadline);
        }
        if run.step(&mut scratch) {
            break;
        }
    }
    match run.finish() {
        Ok(solved) => {
            ctx.solve_cache.insert(leaf.key.clone(), solved.clone());
            record_slack(ctx, deadline);
            Ok(SolveEval::Done(solved))
        }
        Err(e) => Err(WireError::engine(&e)),
    }
}

/// Lockstep race over solve leaves. Warm-tier hits complete in round zero;
/// cold lanes advance one unit per round. The first completed lane holding
/// an equilibrium — earliest round, lowest index — wins; if every lane
/// completes without one, the first lane's outcome is returned. Completed
/// cold lanes are inserted into the warm tier whether or not they win.
fn race_solve(
    children: &[Policy],
    ctx: &EvalCtx<'_>,
    deadline: Option<Instant>,
) -> Result<SolveEval, WireError> {
    let mut leaves = Vec::with_capacity(children.len());
    for child in children {
        let Policy::Solve(leaf) = child else {
            return Err(WireError::new(
                ErrorKind::InvalidRequest,
                "Race children must be Solve leaves",
            ));
        };
        let (kinds, config) = leaf.resolve(&ctx.base_solver)?;
        leaves.push(LeafCtx::build(&kinds, config, ctx));
    }
    let mut finished: Vec<Option<Result<EngineSolution, GameError>>> = leaves
        .iter()
        .map(|leaf| ctx.solve_cache.lookup(&leaf.key).map(Ok))
        .collect();
    let mut runs: Vec<Option<LeafRun<'_>>> = leaves
        .iter()
        .zip(&finished)
        .map(|(leaf, hit)| {
            hit.is_none().then(|| {
                LeafRun::new(
                    &leaf.solvers,
                    &leaf.config,
                    ctx.game,
                    ctx.initial,
                    leaf.soa.view(),
                )
            })
        })
        .collect();
    let mut scratch = KernelScratch::new();
    loop {
        // Winner check at the round boundary: earliest round wins because
        // lanes only ever complete inside a round; ties break by index.
        for done in &finished {
            if let Some(Ok(solved)) = done {
                if solved.solution.is_some() {
                    if let Some(deadline) = deadline {
                        record_slack(ctx, deadline);
                    }
                    return Ok(SolveEval::Done(solved.clone()));
                }
            }
        }
        if finished.iter().all(|d| d.is_some()) {
            // Nobody found an equilibrium: the first lane's outcome stands.
            return match finished.swap_remove(0).expect("all finished") {
                Ok(solved) => {
                    if let Some(deadline) = deadline {
                        record_slack(ctx, deadline);
                    }
                    Ok(SolveEval::Done(solved))
                }
                Err(e) => Err(WireError::engine(&e)),
            };
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(SolveEval::Deadline);
        }
        for (k, slot) in runs.iter_mut().enumerate() {
            let Some(run) = slot.as_mut() else { continue };
            if run.step(&mut scratch) {
                let result = slot.take().expect("slot was just stepped").finish();
                if let Ok(solved) = &result {
                    ctx.solve_cache
                        .insert(leaves[k].key.clone(), solved.clone());
                }
                finished[k] = Some(result);
            }
        }
    }
}

/// Answers a solve policy **purely from the warm tier**, or punts with
/// `None` when any cold work (or any deadline bookkeeping) would be needed.
///
/// This is the connection reader's fast path under back-pressure: a
/// `Some` here is exactly what the full [`eval_solve`] walk would return,
/// because every combinator consults the warm tier before it does or
/// decides anything else (leaves look up before stepping, races check
/// round-zero winners before stepping or checking the clock, fallbacks
/// return the first cached solution outright). Lookups are **counting**
/// lookups, so a punted request's misses are later recounted by the worker
/// — the documented cache-counter tolerance.
pub fn eval_solve_cached(policy: &Policy, ctx: &EvalCtx<'_>) -> Option<EngineSolution> {
    match policy {
        Policy::Solve(leaf) => {
            let (kinds, config) = leaf.resolve(&ctx.base_solver).ok()?;
            let methods: Vec<PureNashMethod> = kinds.iter().map(|k| k.method()).collect();
            let key = canonical_key(&methods, &config, ctx.game, ctx.initial);
            ctx.solve_cache.lookup(&key)
        }
        Policy::Race(children) => {
            let mut hits = Vec::with_capacity(children.len());
            for child in children {
                let Policy::Solve(leaf) = child else {
                    return None;
                };
                let (kinds, config) = leaf.resolve(&ctx.base_solver).ok()?;
                let methods: Vec<PureNashMethod> = kinds.iter().map(|k| k.method()).collect();
                let key = canonical_key(&methods, &config, ctx.game, ctx.initial);
                hits.push(ctx.solve_cache.lookup(&key));
            }
            // Round zero of the lockstep race: the earliest lane (by index)
            // that completed from the cache *with* an equilibrium wins
            // before any cold lane gets to step.
            if let Some(winner) = hits
                .iter()
                .flatten()
                .find(|solved| solved.solution.is_some())
            {
                return Some(winner.clone());
            }
            // All lanes warm, none with a solution: lane 0's outcome stands.
            if hits.iter().all(Option::is_some) {
                return hits.swap_remove(0);
            }
            None
        }
        Policy::Fallback(children) => {
            for (i, child) in children.iter().enumerate() {
                let last = i + 1 == children.len();
                let solved = eval_solve_cached(child, ctx)?;
                if solved.solution.is_some() || last {
                    return Some(solved);
                }
                // Cached but unsolved: the full walk falls through too.
            }
            None
        }
        Policy::Timeout(_) | Policy::Bracket(_) => None,
    }
}

/// The bracket twin of [`eval_solve_cached`]: answers a bracket policy
/// purely from the warm tier, or punts with `None`.
pub fn eval_bracket_cached(policy: &Policy, ctx: &EvalCtx<'_>) -> Option<BracketDone> {
    match policy {
        Policy::Bracket(leaf) => {
            let (kinds, config) = leaf.resolve(&ctx.base_opt).ok()?;
            let methods: Vec<OptMethod> = kinds.iter().map(|k| k.method()).collect();
            let key = opt_canonical_key(&methods, &config, ctx.game, ctx.initial);
            let hit = ctx.opt_cache.lookup(&key)?;
            Some(leaf_done(leaf, hit))
        }
        Policy::Fallback(children) => {
            for (i, child) in children.iter().enumerate() {
                let last = i + 1 == children.len();
                let done = eval_bracket_cached(child, ctx)?;
                if done.goal_met || last {
                    return Some(done);
                }
            }
            None
        }
        Policy::Timeout(_) | Policy::Solve(_) | Policy::Race(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(ids: &[&str]) -> Policy {
        Policy::Solve(SolveLeaf {
            solvers: ids.iter().map(|s| s.to_string()).collect(),
            restarts: None,
            max_steps: None,
        })
    }

    fn bracket_leaf(ids: &[&str], goal: Option<f64>) -> Policy {
        Policy::Bracket(BracketLeaf {
            backends: ids.iter().map(|s| s.to_string()).collect(),
            width_goal: goal,
            restarts: None,
        })
    }

    #[test]
    fn validation_accepts_the_canonical_trees() {
        let race = Policy::Race(vec![leaf(&["local_search"]), leaf(&["best_response"])]);
        let wrapped = Policy::Timeout(TimeoutPolicy {
            ms: 50,
            lower: Box::new(Policy::Fallback(vec![race, leaf(&["exhaustive"])])),
        });
        validate(&wrapped, PolicyMode::Solve).unwrap();
        let brackets = Policy::Fallback(vec![
            bracket_leaf(&["lpt", "relaxation"], Some(1.5)),
            bracket_leaf(&["exhaustive", "branch_and_bound", "descent"], None),
        ]);
        validate(&brackets, PolicyMode::Bracket).unwrap();
    }

    #[test]
    fn validation_rejects_unknown_ids_and_kind_mismatches() {
        let err = validate(&leaf(&["alien"]), PolicyMode::Solve).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownPolicy);
        let err = validate(&leaf(&["local_search"]), PolicyMode::Bracket).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        let err = validate(&bracket_leaf(&["lpt"], None), PolicyMode::Solve).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        let err = validate(
            &Policy::Race(vec![bracket_leaf(&["lpt"], None)]),
            PolicyMode::Solve,
        )
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        let err = validate(&bracket_leaf(&["lpt"], Some(0.5)), PolicyMode::Bracket).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
    }

    #[test]
    fn validation_rejects_bad_deadlines_and_deep_nests() {
        for ms in [0, -5] {
            let err = validate(
                &Policy::Timeout(TimeoutPolicy {
                    ms,
                    lower: Box::new(leaf(&["two_links"])),
                }),
                PolicyMode::Solve,
            )
            .unwrap_err();
            assert_eq!(err.kind, ErrorKind::InvalidDeadline);
        }
        let mut deep = leaf(&["two_links"]);
        for _ in 0..=MAX_POLICY_DEPTH {
            deep = Policy::Fallback(vec![deep]);
        }
        let err = validate(&deep, PolicyMode::Solve).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
    }

    #[test]
    fn over_long_deadlines_are_rejected_not_overflowed() {
        // i64::MAX ms used to overflow `Instant + Duration` and panic the
        // worker; now every over-cap value is a typed InvalidDeadline from
        // validation AND from the evaluator's own resolution step.
        for ms in [MAX_DEADLINE_MS + 1, i64::MAX] {
            let wrapped = Policy::Timeout(TimeoutPolicy {
                ms,
                lower: Box::new(leaf(&["two_links"])),
            });
            let err = validate(&wrapped, PolicyMode::Solve).unwrap_err();
            assert_eq!(err.kind, ErrorKind::InvalidDeadline);
            let err = resolve_deadline(ms, None).unwrap_err();
            assert_eq!(err.kind, ErrorKind::InvalidDeadline);
        }
        // The cap itself is fine.
        resolve_deadline(MAX_DEADLINE_MS, None).unwrap();
    }

    #[test]
    fn nested_deadlines_resolve_to_the_tighter_instant() {
        let outer = Instant::now();
        let resolved = resolve_deadline(1_000, Some(outer)).unwrap();
        assert_eq!(resolved, outer);
        let resolved = resolve_deadline(1, None).unwrap();
        assert!(resolved > Instant::now() - Duration::from_secs(1));
    }

    #[test]
    fn empty_leaves_and_combinators_are_rejected() {
        let err = validate(&leaf(&[]), PolicyMode::Solve).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        let err = validate(&Policy::Fallback(Vec::new()), PolicyMode::Solve).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        let err = validate(&Policy::Race(Vec::new()), PolicyMode::Solve).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
    }
}
