//! Worker-count configuration.

/// Number of worker threads the current machine can usefully run.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Configuration shared by all parallel combinators: how many worker threads
/// to use and how finely to split the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: available_parallelism(),
        }
    }
}

impl ParallelConfig {
    /// A configuration with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
        }
    }

    /// A sequential configuration (one worker); useful in tests and when
    /// debugging experiment code.
    pub fn sequential() -> Self {
        ParallelConfig { threads: 1 }
    }

    /// Reads the worker count from the `NETUNCERT_THREADS` environment
    /// variable, falling back to the machine parallelism when unset or invalid.
    pub fn from_env() -> Self {
        match std::env::var("NETUNCERT_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => ParallelConfig::new(n),
            _ => ParallelConfig::default(),
        }
    }

    /// Resolves an explicit thread-count request: `0` means "machine
    /// default, read from the environment now" (see
    /// [`from_env`](ParallelConfig::from_env)); any other value is used
    /// as-is. Callers that want a stable pool size should resolve once at
    /// configuration time and keep the result, rather than re-resolving per
    /// batch — a mid-run environment change must not split one sweep across
    /// different pool sizes.
    pub fn resolve(threads: usize) -> Self {
        if threads == 0 {
            ParallelConfig::from_env()
        } else {
            ParallelConfig::new(threads)
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the configuration is effectively sequential.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(ParallelConfig::new(0).threads(), 1);
        assert!(ParallelConfig::new(0).is_sequential());
        assert_eq!(ParallelConfig::new(8).threads(), 8);
    }

    #[test]
    fn default_uses_machine_parallelism() {
        assert_eq!(ParallelConfig::default().threads(), available_parallelism());
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn sequential_constructor() {
        assert!(ParallelConfig::sequential().is_sequential());
    }

    #[test]
    fn resolve_maps_zero_to_the_environment_default() {
        assert_eq!(ParallelConfig::resolve(3), ParallelConfig::new(3));
        assert!(ParallelConfig::resolve(0).threads() >= 1);
    }
}
