//! Deterministic index-range chunking.

/// A contiguous half-open range of task indices assigned to one worker pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First index in the chunk (inclusive).
    pub start: usize,
    /// One past the last index in the chunk.
    pub end: usize,
}

impl Chunk {
    /// Number of indices covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk covers no indices.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterator over the indices of the chunk.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Splits `0..total` into at most `parts` contiguous chunks of near-equal
/// size (the first `total % parts` chunks get one extra element). Returns
/// fewer chunks when `total < parts`; never returns empty chunks.
pub fn chunk_ranges(total: usize, parts: usize) -> Vec<Chunk> {
    if total == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        chunks.push(Chunk {
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, total);
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_exactly_once() {
        for total in [0usize, 1, 2, 7, 16, 97, 1000] {
            for parts in [1usize, 2, 3, 8, 64] {
                let chunks = chunk_ranges(total, parts);
                let mut covered = vec![false; total];
                for c in &chunks {
                    assert!(!c.is_empty());
                    for i in c.indices() {
                        assert!(!covered[i], "index {i} covered twice");
                        covered[i] = true;
                    }
                }
                assert!(
                    covered.iter().all(|&b| b),
                    "total {total} parts {parts} left gaps"
                );
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let chunks = chunk_ranges(100, 7);
        let sizes: Vec<usize> = chunks.iter().map(Chunk::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert!(chunk_ranges(10, 0).is_empty());
        assert_eq!(chunk_ranges(3, 10).len(), 3);
    }

    #[test]
    fn chunk_helpers() {
        let c = Chunk { start: 3, end: 7 };
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.indices().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }
}
