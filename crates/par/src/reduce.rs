//! Parallel map / reduce combinators over index ranges.
//!
//! Work distribution is dynamic: workers repeatedly claim small batches of
//! indices from a shared atomic counter, so unevenly sized tasks (e.g. game
//! instances whose exhaustive solvers differ wildly in cost) balance well.
//! Outputs are keyed by task id and reassembled in index order, so the result
//! never depends on scheduling: every combinator here returns bit-identical
//! output for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool::ParallelConfig;

/// Size of the index batch a worker claims at a time. Small enough to balance
/// skewed workloads, large enough to keep counter contention negligible.
const CLAIM_BATCH: usize = 8;

/// Applies `f` to every index in `0..total` in parallel and collects the
/// results in index order.
pub fn parallel_map<T, F>(config: &ParallelConfig, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_claim(config, total, CLAIM_BATCH, f)
}

/// [`parallel_map`] with an explicit claim granularity. Callers whose tasks
/// are already coarse (e.g. the per-batch partials of
/// [`parallel_map_reduce`]) claim one task at a time so a handful of tasks
/// still spreads across all workers.
fn parallel_map_claim<T, F>(config: &ParallelConfig, total: usize, claim: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    if config.is_sequential() || total == 1 {
        return (0..total).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let workers = config.threads().min(total);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(total));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let start = next.fetch_add(claim, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + claim).min(total);
                    for i in start..end {
                        local.push((i, f(i)));
                    }
                }
                collected.lock().expect("no worker panicked").extend(local);
            });
        }
    });

    let pairs = collected.into_inner().expect("no worker panicked");
    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    for (i, value) in pairs {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was claimed exactly once"))
        .collect()
}

/// Applies `f` to every index in `0..total` in parallel, discarding results.
pub fn parallel_for_each<F>(config: &ParallelConfig, total: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_map(config, total, f);
}

/// Maps every index through `map` and folds the results with the associative
/// operator `reduce`, starting from `identity`.
///
/// `identity` must be a true identity of `reduce` and `reduce` must be
/// associative: partial results are accumulated per fixed-size index batch
/// and then folded **in batch order**, so — unlike a per-worker fold — the
/// result is bit-identical for every worker count, including one.
pub fn parallel_map_reduce<T, M, R>(
    config: &ParallelConfig,
    total: usize,
    map: M,
    identity: T,
    reduce: R,
) -> T
where
    T: Send + Clone,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    if total == 0 {
        return identity;
    }

    // One partial per fixed CLAIM_BATCH-sized index batch — computed with the
    // same batch boundaries whether the work runs on one thread or many — so
    // the final in-order fold is independent of the worker count. Each batch
    // folds from its own first element, keeping `identity` on this thread.
    let batches = total.div_ceil(CLAIM_BATCH);
    let batch_fold = |batch: usize| {
        let start = batch * CLAIM_BATCH;
        let end = (start + CLAIM_BATCH).min(total);
        (start + 1..end).map(&map).fold(map(start), &reduce)
    };
    let partials = if config.is_sequential() || batches == 1 {
        (0..batches).map(batch_fold).collect()
    } else {
        // Each batch already covers CLAIM_BATCH indices, so workers claim one
        // batch at a time — nesting the default granularity would serialise
        // any reduction of ≤ CLAIM_BATCH² tasks onto one worker.
        parallel_map_claim(config, batches, 1, batch_fold)
    };
    partials.into_iter().fold(identity, reduce)
}

/// Sums `f(i)` over `0..total` in parallel. Like every combinator here, the
/// result is bit-identical for any worker count (though the batched
/// summation order differs from a plain sequential sum).
pub fn parallel_sum<F>(config: &ParallelConfig, total: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    parallel_map_reduce(config, total, f, 0.0, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let expected: Vec<usize> = (0..503).map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 3, 8, 32] {
            let cfg = ParallelConfig::new(threads);
            let got = parallel_map(&cfg, 503, |i| i * 7 + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton_inputs() {
        let cfg = ParallelConfig::new(4);
        assert!(parallel_map(&cfg, 0, |i| i).is_empty());
        assert_eq!(parallel_map(&cfg, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn map_reduce_matches_sequential_sum() {
        for threads in [1, 2, 4, 16] {
            let cfg = ParallelConfig::new(threads);
            let total: u64 = parallel_map_reduce(&cfg, 10_000, |i| i as u64, 0, |a, b| a + b);
            assert_eq!(total, 49_995_000);
        }
    }

    #[test]
    fn for_each_visits_every_index_exactly_once() {
        let counters: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let cfg = ParallelConfig::new(6);
        parallel_for_each(&cfg, 200, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_sum_is_deterministic_for_integral_values() {
        let cfg = ParallelConfig::new(8);
        let s = parallel_sum(&cfg, 1000, |i| i as f64);
        assert_eq!(s, 499_500.0);
    }

    #[test]
    fn float_sums_are_identical_across_worker_counts() {
        // Non-associative float addition: the batched fold must still give the
        // same bits for every worker count.
        let baseline = parallel_sum(&ParallelConfig::new(2), 997, |i| 1.0 / (i as f64 + 1.0));
        for threads in [1, 3, 4, 8, 16] {
            let s = parallel_sum(&ParallelConfig::new(threads), 997, |i| {
                1.0 / (i as f64 + 1.0)
            });
            assert_eq!(s.to_bits(), baseline.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn uneven_workloads_still_produce_index_ordered_output() {
        // Tasks with wildly different costs: result must still be in order.
        let cfg = ParallelConfig::new(4);
        let out = parallel_map(&cfg, 64, |i| {
            if i % 7 == 0 {
                // Simulate a heavy task.
                let mut acc = 0u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                (i, acc % 2)
            } else {
                (i, 0)
            }
        });
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }
}
