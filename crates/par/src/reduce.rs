//! Parallel map / reduce combinators over index ranges.
//!
//! Work distribution is dynamic: workers repeatedly claim small batches of
//! indices from a shared atomic counter, so unevenly sized tasks (e.g. game
//! instances whose exhaustive solvers differ wildly in cost) balance well.
//! Outputs are written into slots indexed by task id, so the result never
//! depends on scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::pool::ParallelConfig;

/// Size of the index batch a worker claims at a time. Small enough to balance
/// skewed workloads, large enough to keep counter contention negligible.
const CLAIM_BATCH: usize = 8;

/// Applies `f` to every index in `0..total` in parallel and collects the
/// results in index order.
pub fn parallel_map<T, F>(config: &ParallelConfig, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    if config.is_sequential() || total == 1 {
        return (0..total).map(f).collect();
    }

    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    let slot_cells: Vec<Mutex<&mut Option<T>>> = slots.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    let workers = config.threads().min(total);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let start = next.fetch_add(CLAIM_BATCH, Ordering::Relaxed);
                if start >= total {
                    break;
                }
                let end = (start + CLAIM_BATCH).min(total);
                for i in start..end {
                    let value = f(i);
                    **slot_cells[i].lock() = Some(value);
                }
            });
        }
    })
    .expect("parallel_map worker panicked");

    drop(slot_cells);
    slots.into_iter().map(|s| s.expect("every index was claimed exactly once")).collect()
}

/// Applies `f` to every index in `0..total` in parallel, discarding results.
pub fn parallel_for_each<F>(config: &ParallelConfig, total: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_map(config, total, |i| f(i));
}

/// Maps every index through `map` and folds the results with the associative,
/// commutative operator `reduce`, starting from `identity`.
///
/// `reduce` must be associative and commutative (up to the accuracy the caller
/// cares about): partial results are combined per worker and then across
/// workers in an unspecified order.
pub fn parallel_map_reduce<T, M, R>(
    config: &ParallelConfig,
    total: usize,
    map: M,
    identity: T,
    reduce: R,
) -> T
where
    T: Send + Clone,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    if total == 0 {
        return identity;
    }
    if config.is_sequential() || total == 1 {
        return (0..total).map(map).fold(identity, reduce);
    }

    let next = AtomicUsize::new(0);
    let workers = config.threads().min(total);
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(workers));

    crossbeam::thread::scope(|scope| {
        let next = &next;
        let partials = &partials;
        let map = &map;
        let reduce = &reduce;
        for _ in 0..workers {
            let worker_identity = identity.clone();
            scope.spawn(move |_| {
                let mut acc = worker_identity;
                loop {
                    let start = next.fetch_add(CLAIM_BATCH, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + CLAIM_BATCH).min(total);
                    for i in start..end {
                        acc = reduce(acc, map(i));
                    }
                }
                partials.lock().push(acc);
            });
        }
    })
    .expect("parallel_map_reduce worker panicked");

    partials.into_inner().into_iter().fold(identity, reduce)
}

/// Sums `f(i)` over `0..total` in parallel.
pub fn parallel_sum<F>(config: &ParallelConfig, total: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    parallel_map_reduce(config, total, f, 0.0, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let expected: Vec<usize> = (0..503).map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 3, 8, 32] {
            let cfg = ParallelConfig::new(threads);
            let got = parallel_map(&cfg, 503, |i| i * 7 + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton_inputs() {
        let cfg = ParallelConfig::new(4);
        assert!(parallel_map(&cfg, 0, |i| i).is_empty());
        assert_eq!(parallel_map(&cfg, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn map_reduce_matches_sequential_sum() {
        for threads in [1, 2, 4, 16] {
            let cfg = ParallelConfig::new(threads);
            let total: u64 =
                parallel_map_reduce(&cfg, 10_000, |i| i as u64, 0, |a, b| a + b);
            assert_eq!(total, 49_995_000);
        }
    }

    #[test]
    fn for_each_visits_every_index_exactly_once() {
        let counters: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let cfg = ParallelConfig::new(6);
        parallel_for_each(&cfg, 200, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_sum_is_deterministic_for_integral_values() {
        let cfg = ParallelConfig::new(8);
        let s = parallel_sum(&cfg, 1000, |i| i as f64);
        assert_eq!(s, 499_500.0);
    }

    #[test]
    fn uneven_workloads_still_produce_index_ordered_output() {
        // Tasks with wildly different costs: result must still be in order.
        let cfg = ParallelConfig::new(4);
        let out = parallel_map(&cfg, 64, |i| {
            if i % 7 == 0 {
                // Simulate a heavy task.
                let mut acc = 0u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                (i, acc % 2)
            } else {
                (i, 0)
            }
        });
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }
}
