//! # par-exec
//!
//! A small, dependency-free parallel execution substrate built on
//! [`std::thread::scope`], used by the solver engine, the simulation harness
//! and the benchmark suite to fan batch solves and Monte-Carlo experiments
//! out over CPU cores.
//!
//! The design goals, in order:
//!
//! 1. **Determinism** — results must not depend on the number of worker
//!    threads. All combinators here produce outputs indexed by task id
//!    (reductions fold fixed index batches in order), and the experiment
//!    layer derives per-task RNG seeds from the task id, never from the
//!    worker.
//! 2. **Simplicity** — a scoped fork/join pool with dynamic (atomic-counter)
//!    work stealing covers every workload in this repository; there is no
//!    global state and no unsafe code.
//! 3. **Graceful degradation** — with one thread every combinator reduces to
//!    the obvious sequential loop, which keeps tests and CI debuggable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod pool;
mod reduce;

pub use chunk::{chunk_ranges, Chunk};
pub use pool::{available_parallelism, ParallelConfig};
pub use reduce::{parallel_for_each, parallel_map, parallel_map_reduce, parallel_sum};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke_test() {
        let cfg = ParallelConfig::new(4);
        let squares = parallel_map(&cfg, 100, |i| i * i);
        assert_eq!(squares[10], 100);
        let total: u64 = parallel_map_reduce(&cfg, 100, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 4950);
    }
}
