//! Property-based tests for the parallel execution substrate: results must be
//! identical to the sequential reference for every thread count, workload size
//! and chunking.

use proptest::prelude::*;

use par_exec::{chunk_ranges, parallel_map, parallel_map_reduce, parallel_sum, ParallelConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parallel_map` produces exactly the sequential result, in order, for
    /// any thread count.
    #[test]
    fn parallel_map_equals_sequential(total in 0usize..500, threads in 1usize..16, salt in any::<u64>()) {
        let config = ParallelConfig::new(threads);
        let f = |i: usize| (i as u64).wrapping_mul(salt).wrapping_add(i as u64);
        let expected: Vec<u64> = (0..total).map(f).collect();
        prop_assert_eq!(parallel_map(&config, total, f), expected);
    }

    /// `parallel_map_reduce` with an exact (integer) associative operation is
    /// independent of the thread count.
    #[test]
    fn map_reduce_is_thread_count_independent(total in 0usize..2000, threads in 1usize..16) {
        let sequential: u64 = (0..total as u64).map(|i| i * 3 + 1).sum();
        let config = ParallelConfig::new(threads);
        let parallel: u64 =
            parallel_map_reduce(&config, total, |i| (i as u64) * 3 + 1, 0, |a, b| a + b);
        prop_assert_eq!(parallel, sequential);
    }

    /// `parallel_sum` of integer-valued floats is exact and matches the
    /// sequential sum.
    #[test]
    fn parallel_sum_matches_sequential(total in 0usize..1000, threads in 1usize..8) {
        let config = ParallelConfig::new(threads);
        let expected: f64 = (0..total).map(|i| i as f64).sum();
        prop_assert_eq!(parallel_sum(&config, total, |i| i as f64), expected);
    }

    /// Chunking covers `0..total` exactly once with sizes differing by at most
    /// one, never yielding empty chunks.
    #[test]
    fn chunking_partitions_the_range(total in 0usize..10_000, parts in 0usize..64) {
        let chunks = chunk_ranges(total, parts);
        if total == 0 || parts == 0 {
            prop_assert!(chunks.is_empty());
        } else {
            prop_assert_eq!(chunks.len(), parts.min(total));
            let mut next = 0usize;
            let mut sizes = Vec::new();
            for c in &chunks {
                prop_assert_eq!(c.start, next);
                prop_assert!(!c.is_empty());
                sizes.push(c.len());
                next = c.end;
            }
            prop_assert_eq!(next, total);
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }

    /// Worker count configuration is clamped but otherwise preserved.
    #[test]
    fn config_clamps_thread_count(threads in 0usize..256) {
        let config = ParallelConfig::new(threads);
        prop_assert_eq!(config.threads(), threads.max(1));
        prop_assert_eq!(config.is_sequential(), threads <= 1);
    }
}
