//! E1 — Figure 1 / Theorem 3.3: `Atwolinks` computes a pure Nash equilibrium
//! for `m = 2` links in `O(n²)`. The size sweep exposes the quadratic scaling
//! and the per-size groups regenerate the "algorithm works at every n" series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::algorithms::two_links;
use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::numeric::Tolerance;
use netuncert_core::strategy::LinkLoads;

fn bench_two_links(c: &mut Criterion) {
    let mut group = c.benchmark_group("atwolinks");
    group.sample_size(20);
    for &n in &[8usize, 16, 32, 64, 128, 256, 512] {
        let game = general_instance(n, 2, 42);
        let initial = LinkLoads::zero(2);
        // Sanity: the solver output is an equilibrium before we time it.
        let profile = two_links::solve(&game, &initial).unwrap();
        assert!(is_pure_nash(
            &game,
            &profile,
            &initial,
            Tolerance::default()
        ));

        group.bench_with_input(BenchmarkId::new("solve", n), &n, |b, _| {
            b.iter(|| two_links::solve(black_box(&game), black_box(&initial)).unwrap())
        });
    }
    group.finish();

    let mut with_traffic = c.benchmark_group("atwolinks_initial_traffic");
    with_traffic.sample_size(20);
    for &n in &[32usize, 128] {
        let game = general_instance(n, 2, 43);
        let initial = LinkLoads::new(vec![3.5, 1.25]).unwrap();
        with_traffic.bench_with_input(BenchmarkId::new("solve", n), &n, |b, _| {
            b.iter(|| two_links::solve(black_box(&game), black_box(&initial)).unwrap())
        });
    }
    with_traffic.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_two_links
}
criterion_main!(benches);
