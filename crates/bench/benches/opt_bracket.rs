//! The `opt` bracketing engine vs its exact alternatives at growing `n`:
//! exhaustive enumeration, pruned branch-and-bound, and the bounds-only
//! composition (greedy + descent upper, relaxation lower) that carries the
//! PoA-at-scale experiment past the exhaustive wall. These are the numbers
//! behind the `BENCHMARKS.md` "opt_bracket" table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::opt::{OptBackendKind, OptConfig, OptEngine};
use netuncert_core::solvers::exhaustive::profile_count;
use netuncert_core::strategy::LinkLoads;

fn engine(kinds: &[OptBackendKind]) -> OptEngine {
    OptEngine::from_kinds(OptConfig::default(), kinds)
}

fn bench_opt_bracket(c: &mut Criterion) {
    let config = OptConfig::default();
    let bounds_only = [
        OptBackendKind::LptGreedy,
        OptBackendKind::Descent,
        OptBackendKind::Relaxation,
    ];

    // Exact regime: every backend applies; exhaustive is the ground truth
    // the branch-and-bound search must reproduce bit-for-bit.
    let mut exact = c.benchmark_group("opt_bracket_exact");
    exact.sample_size(10);
    for &(n, m) in &[(8usize, 4usize), (10, 4)] {
        let game = general_instance(n, m, 45);
        let initial = LinkLoads::zero(m);
        for (label, kinds) in [
            ("exhaustive", &[OptBackendKind::Exhaustive][..]),
            ("branch_and_bound", &[OptBackendKind::BranchAndBound][..]),
            ("bracket", &bounds_only[..]),
        ] {
            let e = engine(kinds);
            let outcome = e.estimate(&game, &initial).unwrap();
            assert!(outcome.opt1.upper.is_finite());
            exact.bench_with_input(
                BenchmarkId::new(label, format!("n{n}_m{m}")),
                &label,
                |b, _| b.iter(|| e.estimate(black_box(&game), black_box(&initial))),
            );
        }
    }
    exact.finish();

    // Beyond the wall: only the bounds composition applies; the bracket it
    // returns is the one the `poa_scaling` experiment consumes.
    let mut huge = c.benchmark_group("opt_bracket_huge");
    huge.sample_size(10);
    for &(n, m) in &[(32usize, 8usize), (128, 8), (512, 16)] {
        assert!(profile_count(n, m) > config.profile_limit);
        let game = general_instance(n, m, 46);
        let initial = LinkLoads::zero(m);
        let e = engine(&bounds_only);
        let outcome = e.estimate(&game, &initial).unwrap();
        assert!(
            outcome.opt1.width() <= 1.5 && outcome.opt2.width() <= 1.5,
            "bracket widths {:.3}/{:.3} out of spec at n={n}",
            outcome.opt1.width(),
            outcome.opt2.width()
        );
        huge.bench_with_input(
            BenchmarkId::new("bracket", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| e.estimate(black_box(&game), black_box(&initial))),
        );
    }
    huge.finish();

    // The adaptive width-goal mode vs the same composition on fixed
    // budgets, on a moderate at-scale capacity band (uniform 2–4, the
    // E14/E15 regime): past the wall the cheap LptGreedy + Relaxation pair
    // meets the 1.5 goal, so the 24-restart descent run is skipped
    // entirely — the per-bracket saving the `belief_noise` sweep banks on.
    // (On harsher capacity spreads like `general_instance`'s 16× band the
    // goal is not met early and the adaptive mode honestly degrades to
    // fixed cost.)
    let mut adaptive = c.benchmark_group("opt_bracket_adaptive");
    adaptive.sample_size(10);
    for &(n, m) in &[(128usize, 8usize), (512, 16)] {
        let game = instance_gen::EffectiveSpec::General {
            users: n,
            links: m,
            capacity: instance_gen::CapacityDist::Uniform { lo: 2.0, hi: 4.0 },
            weights: instance_gen::WeightDist::Uniform { lo: 0.5, hi: 4.0 },
        }
        .generate(&mut instance_gen::rng(46, 0xADA));
        let initial = LinkLoads::zero(m);
        for (label, width_goal) in [("fixed", None), ("adaptive", Some(1.5))] {
            let e = OptEngine::from_kinds(
                OptConfig {
                    width_goal,
                    ..OptConfig::default()
                },
                &bounds_only,
            );
            let outcome = e.estimate(&game, &initial).unwrap();
            assert!(outcome.opt1.width() <= 1.5 && outcome.opt2.width() <= 1.5);
            if width_goal.is_some() {
                assert!(
                    !outcome.telemetry.skipped.is_empty(),
                    "the adaptive mode must skip the descent run at n={n}"
                );
            }
            adaptive.bench_with_input(
                BenchmarkId::new(label, format!("n{n}_m{m}")),
                &label,
                |b, _| b.iter(|| e.estimate(black_box(&game), black_box(&initial))),
            );
        }
    }
    adaptive.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_opt_bracket
}
criterion_main!(benches);
