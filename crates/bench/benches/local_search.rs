//! The `LocalSearch` backend vs its alternatives: best-response dynamics at
//! every size, and exhaustive enumeration where it still applies. These are
//! the numbers behind the `BENCHMARKS.md` "local_search" table — the
//! evidence that the incremental multi-restart descent is what opens the
//! `n = 512` regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::solvers::engine::{SolverConfig, SolverEngine, SolverKind};
use netuncert_core::strategy::LinkLoads;

fn solver_engine(kind: SolverKind) -> SolverEngine {
    SolverEngine::from_kinds(SolverConfig::default(), &[kind])
}

fn bench_local_search(c: &mut Criterion) {
    let config = SolverConfig::default();

    // Small regime: all three backends apply; exhaustive is the oracle.
    let mut small = c.benchmark_group("local_search_small");
    small.sample_size(20);
    let game = general_instance(8, 4, 45);
    let initial = LinkLoads::zero(4);
    for kind in [
        SolverKind::LocalSearch,
        SolverKind::BestResponse,
        SolverKind::Exhaustive,
    ] {
        let engine = solver_engine(kind);
        let solved = engine.solve(&game, &initial).unwrap();
        let solution = solved.solution.expect("the small instance has a pure NE");
        assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
        small.bench_with_input(BenchmarkId::new(kind.id(), "n8_m4"), &kind, |b, _| {
            b.iter(|| engine.solve(black_box(&game), black_box(&initial)))
        });
    }
    small.finish();

    // Huge regime: exhaustive is inapplicable; local search vs best response.
    let mut huge = c.benchmark_group("local_search_huge");
    huge.sample_size(10);
    for &(n, m) in &[(128usize, 8usize), (256, 16), (512, 16)] {
        let game = general_instance(n, m, 46);
        let initial = LinkLoads::zero(m);
        for kind in [SolverKind::LocalSearch, SolverKind::BestResponse] {
            let engine = solver_engine(kind);
            let solved = engine.solve(&game, &initial).unwrap();
            let solution = solved.solution.expect("the heuristic converges");
            assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
            huge.bench_with_input(
                BenchmarkId::new(kind.id(), format!("n{n}_m{m}")),
                &kind,
                |b, _| b.iter(|| engine.solve(black_box(&game), black_box(&initial))),
            );
        }
    }
    huge.finish();
}

criterion_group!(benches, bench_local_search);
criterion_main!(benches);
