//! The observability tax, measured three ways.
//!
//! The `obs` layer promises that a disabled [`Recorder`] costs nothing on
//! the engine hot path: every probe collapses to one predicted branch on a
//! pre-resolved `Option`. This suite is the evidence behind that claim (and
//! the CI guard against regressing it):
//!
//! - `obs_overhead/local_search`: the paper's `n = 512, m = 16` local-search
//!   solve with no recorder attached, with a disabled recorder, and with a
//!   live registry recording every probe. The first two must be within
//!   noise of each other (the ≤2 % acceptance bound); the third prices what
//!   full tracing costs when it is actually wanted.
//! - `obs_instruments`: raw instrument costs — one histogram record and one
//!   counter increment — so a regression in the lock-free paths is visible
//!   before it shows up in a macro number.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::obs::{Recorder, Registry};
use netuncert_core::solvers::engine::{SolverConfig, SolverEngine, SolverKind};
use netuncert_core::strategy::LinkLoads;

fn bench_obs_overhead(c: &mut Criterion) {
    let config = SolverConfig::default();
    let game = general_instance(512, 16, 46);
    let initial = LinkLoads::zero(16);

    // Three engines over the same instance, differing only in probes:
    // none (the baseline every other benchmark measures), disabled (the
    // default `Recorder` a caller gets without opting in), and enabled
    // (a live registry absorbing every record).
    let registry = Arc::new(Registry::new());
    let variants: [(&str, SolverEngine); 3] = [
        (
            "no_recorder",
            SolverEngine::from_kinds(config, &[SolverKind::LocalSearch]),
        ),
        (
            "recorder_disabled",
            SolverEngine::from_kinds(config, &[SolverKind::LocalSearch])
                .with_recorder(Recorder::disabled()),
        ),
        (
            "recorder_enabled",
            SolverEngine::from_kinds(config, &[SolverKind::LocalSearch])
                .with_recorder(Recorder::new(Arc::clone(&registry))),
        ),
    ];

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    for (label, engine) in &variants {
        // Certify the probes change nothing about the answer before timing.
        let solved = engine.solve(&game, &initial).unwrap();
        let solution = solved.solution.expect("local search converges");
        assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
        group.bench_with_input(BenchmarkId::new(*label, "n512_m16"), label, |b, _| {
            b.iter(|| engine.solve(black_box(&game), black_box(&initial)))
        });
    }
    group.finish();
    // The enabled variant must actually have recorded something, or the
    // comparison above measured nothing.
    let snapshot = registry.snapshot();
    assert!(
        snapshot
            .histograms
            .iter()
            .any(|(name, h)| name == "engine.attempt_ns" && h.count > 0),
        "the enabled recorder saw no engine probes"
    );

    // Raw instrument costs: what one observation point charges the caller.
    let mut instruments = c.benchmark_group("obs_instruments");
    let registry = Registry::new();
    let histogram = registry.histogram("bench.record_ns");
    let counter = registry.counter("bench.incr");
    let mut tick = 0u64;
    instruments.bench_function("histogram_record", |b| {
        b.iter(|| {
            tick = tick.wrapping_add(0x9E37_79B9_7F4A_7C15);
            histogram.record(black_box(tick));
        })
    });
    instruments.bench_function("counter_incr", |b| b.iter(|| counter.incr(black_box(1))));
    instruments.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_obs_overhead
}
criterion_main!(benches);
