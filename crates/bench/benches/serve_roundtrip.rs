//! Service round-trip cost — what a resident `netuncert_serve` instance
//! adds on top of (and saves over) direct engine calls.
//!
//! Three axes: instance size (n ∈ {32, 512}), warm-tier state, and wire
//! framing. A *warm* round trip hits the shared LRU cache, so its time is
//! pure service overhead (framing + JSON + socket + pool hop). A *cold*
//! round trip is measured against a zero-capacity cache (an LRU with
//! capacity 0 admits nothing), so every request pays the full engine walk
//! through the same wire path — the honest per-request cost of a
//! cache-defeating workload. The `*_binary` rows repeat warm and cold
//! over the length-prefixed binary framing ([`netuncert_serve::frame`]),
//! with the request pre-encoded — the same transport-level measurement as
//! the JSON rows' pre-serialised line.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Write;
use std::net::TcpStream;

use serde::Serialize;

use netuncert_serve::frame;
use netuncert_serve::protocol::{Request, RequestBody, SolveRequest};
use netuncert_serve::state::ServeConfig;
use netuncert_serve::workload::{default_solve_policy, from_game};
use netuncert_serve::{Client, Server};

use netuncert_bench::general_instance;

/// Starts an in-process service and returns its address plus the handle
/// that joins after a `Shutdown`.
fn start(config: &ServeConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        server.run().expect("serve");
    });
    (addr, handle)
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect");
    client.call(RequestBody::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

fn solve_request(users: usize, links: usize, seed: u64) -> Request {
    Request {
        id: 1,
        body: RequestBody::Solve(SolveRequest {
            instance: from_game(&general_instance(users, links, seed)),
            policy: default_solve_policy(),
        }),
    }
}

fn solve_line(users: usize, links: usize, seed: u64) -> String {
    serde_json::to_string(&solve_request(users, links, seed)).expect("serialise")
}

/// Opens a binary-framed connection: magic byte first, frames after.
fn binary_pipe(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .write_all(&[frame::BINARY_MAGIC])
        .expect("negotiate binary framing");
    stream
}

/// One pre-encoded request frame out, one response frame back.
fn binary_roundtrip(stream: &mut TcpStream, payload: &[u8]) -> Vec<u8> {
    frame::write_frame(stream, payload).expect("send frame");
    frame::read_frame(stream, 1 << 20).expect("receive frame")
}

fn bench_serve_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_roundtrip");
    group.sample_size(20);

    for &(users, links) in &[(32usize, 8usize), (512, 16)] {
        // Warm: one request pre-seeded into the tier, then repeated — the
        // engine never runs again, so this is the service-overhead floor.
        {
            let (addr, handle) = start(&ServeConfig::default());
            let mut client = Client::connect(addr).expect("connect");
            let line = solve_line(users, links, 7);
            client.call_line(&line).expect("seed the warm tier");
            group.bench_with_input(BenchmarkId::new("warm", users), &users, |b, _| {
                b.iter(|| black_box(client.call_line(black_box(&line)).expect("warm hit")))
            });
            drop(client);
            shutdown(addr, handle);
        }

        // Cold: a capacity-0 tier admits nothing, so the identical request
        // re-runs the full engine walk every round trip.
        {
            let cold = ServeConfig {
                solve_cache_capacity: 0,
                opt_cache_capacity: 0,
                ..ServeConfig::default()
            };
            let (addr, handle) = start(&cold);
            let mut client = Client::connect(addr).expect("connect");
            let line = solve_line(users, links, 7);
            group.bench_with_input(BenchmarkId::new("cold", users), &users, |b, _| {
                b.iter(|| black_box(client.call_line(black_box(&line)).expect("cold solve")))
            });
            drop(client);
            shutdown(addr, handle);
        }

        // The binary framing over the same warm/cold splits: identical
        // requests, identical decoded answers, compact frames.
        {
            let (addr, handle) = start(&ServeConfig::default());
            let mut pipe = binary_pipe(addr);
            let payload = frame::encode_value(&solve_request(users, links, 7).to_value());
            binary_roundtrip(&mut pipe, &payload); // seed the warm tier
            group.bench_with_input(BenchmarkId::new("warm_binary", users), &users, |b, _| {
                b.iter(|| black_box(binary_roundtrip(&mut pipe, black_box(&payload))))
            });
            drop(pipe);
            shutdown(addr, handle);
        }
        {
            let cold = ServeConfig {
                solve_cache_capacity: 0,
                opt_cache_capacity: 0,
                ..ServeConfig::default()
            };
            let (addr, handle) = start(&cold);
            let mut pipe = binary_pipe(addr);
            let payload = frame::encode_value(&solve_request(users, links, 7).to_value());
            group.bench_with_input(BenchmarkId::new("cold_binary", users), &users, |b, _| {
                b.iter(|| black_box(binary_roundtrip(&mut pipe, black_box(&payload))))
            });
            drop(pipe);
            shutdown(addr, handle);
        }

        // The direct-call baseline the replay contract diffs against:
        // same cold configuration, no socket, no pool.
        {
            let state = netuncert_serve::ServeState::new(&ServeConfig {
                solve_cache_capacity: 0,
                opt_cache_capacity: 0,
                ..ServeConfig::default()
            });
            let line = solve_line(users, links, 7);
            group.bench_with_input(BenchmarkId::new("direct", users), &users, |b, _| {
                b.iter(|| black_box(state.handle_line(black_box(&line))))
            });
        }
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_serve_roundtrip
}
criterion_main!(benches);
