//! E3 — Figure 3 / Theorem 3.6: `Auniform` (LPT-style) computes a pure Nash
//! equilibrium under uniform user beliefs in `O(n (log n + m))`. The sweep
//! goes to large `n` to expose the near-linear scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::uniform_beliefs_instance;
use netuncert_core::algorithms::uniform;
use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::numeric::Tolerance;
use netuncert_core::strategy::LinkLoads;

fn bench_uniform(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut by_users = c.benchmark_group("auniform_by_users");
    by_users.sample_size(20);
    for &n in &[64usize, 256, 1024, 4096] {
        let game = uniform_beliefs_instance(n, 8, 42);
        let initial = LinkLoads::zero(8);
        let profile = uniform::solve(&game, &initial, tol).unwrap();
        assert!(is_pure_nash(&game, &profile, &initial, tol));
        by_users.bench_with_input(BenchmarkId::new("m=8", n), &n, |b, _| {
            b.iter(|| uniform::solve(black_box(&game), black_box(&initial), tol).unwrap())
        });
    }
    by_users.finish();

    let mut by_links = c.benchmark_group("auniform_by_links");
    by_links.sample_size(20);
    for &m in &[2usize, 8, 32, 64] {
        let game = uniform_beliefs_instance(512, m, 43);
        let initial = LinkLoads::zero(m);
        by_links.bench_with_input(BenchmarkId::new("n=512", m), &m, |b, _| {
            b.iter(|| uniform::solve(black_box(&game), black_box(&initial), tol).unwrap())
        });
    }
    by_links.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_uniform
}
criterion_main!(benches);
