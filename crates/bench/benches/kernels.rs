//! The raw-speed floor: SoA kernel benchmarks behind the `BENCHMARKS.md`
//! "kernels" table.
//!
//! Two of these points are the acceptance gates of the kernel layer — the
//! `local_search/n512_m16` single solve and the `solve_batch_64_n16_m4`
//! single-worker batch — benchmarked against their pre-kernel baselines.
//! Every timed solve is certified first: the solver must return a profile
//! passing the canonical `is_pure_nash` predicate before its timing is
//! recorded, so a kernel that silently stopped solving could never report a
//! flattering number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::model::EffectiveGame;
use netuncert_core::solvers::engine::{SolverConfig, SolverEngine, SolverKind};
use netuncert_core::solvers::kernel::SoAGame;
use netuncert_core::strategy::LinkLoads;
use par_exec::ParallelConfig;

fn solver_engine(kind: SolverKind) -> SolverEngine {
    SolverEngine::from_kinds(SolverConfig::default(), &[kind])
}

fn bench_kernels(c: &mut Criterion) {
    let config = SolverConfig::default();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    // SoA flattening itself: the once-per-solve cost the kernels amortise.
    let game = general_instance(512, 16, 46);
    group.bench_function(BenchmarkId::new("soa_pack", "n512_m16"), |b| {
        b.iter(|| SoAGame::from_game(black_box(&game)))
    });

    // Single solves in the huge regime, on the same instances as the
    // pre-kernel `local_search_huge` group so the columns line up.
    for &(n, m) in &[(128usize, 8usize), (512, 16)] {
        let game = general_instance(n, m, 46);
        let initial = LinkLoads::zero(m);
        for kind in [SolverKind::LocalSearch, SolverKind::BestResponse] {
            let engine = solver_engine(kind);
            let solved = engine.solve(&game, &initial).unwrap();
            let solution = solved.solution.expect("the heuristic converges");
            assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
            group.bench_with_input(
                BenchmarkId::new(kind.id(), format!("n{n}_m{m}")),
                &kind,
                |b, _| b.iter(|| engine.solve(black_box(&game), black_box(&initial))),
            );
        }
    }

    // The batched kernel path, on the same workload as the pre-kernel
    // `solver_engine_batch` group: 64 general n=16, m=4 instances through
    // the paper-order engine (hot path: the best-response kernel).
    let games: Vec<EffectiveGame> = (0..64).map(|i| general_instance(16, 4, 1000 + i)).collect();
    for threads in [1usize, 8] {
        let engine =
            SolverEngine::paper_order(config).with_parallelism(ParallelConfig::new(threads));
        for (game, result) in games.iter().zip(engine.solve_batch(&games)) {
            let solved = result.unwrap();
            let solution = solved.solution.expect("batch instances converge");
            assert!(is_pure_nash(
                game,
                &solution.profile,
                &LinkLoads::zero(game.links()),
                config.tol
            ));
        }
        group.bench_with_input(
            BenchmarkId::new("solve_batch_64_n16_m4", threads),
            &threads,
            |b, _| b.iter(|| engine.solve_batch(black_box(&games))),
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_kernels
}
criterion_main!(benches);
