//! E9 — social-cost machinery (Section 2, Theorems 4.11/4.12): cost of
//! evaluating SC1/SC2, of computing the exact social optimum, and of the
//! FMNE-vs-pure-NE worst-case comparison performed by the experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::{general_instance, mild_instance};
use netuncert_core::fully_mixed::fully_mixed_nash;
use netuncert_core::numeric::Tolerance;
use netuncert_core::social_cost::{sc1, sc2};
use netuncert_core::solvers::exhaustive::{all_pure_nash, social_optimum};
use netuncert_core::strategy::{LinkLoads, MixedProfile};

fn bench_social_cost(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut costs = c.benchmark_group("sc1_sc2_evaluation");
    costs.sample_size(30);
    for &(n, m) in &[(16usize, 4usize), (64, 8), (256, 16)] {
        let game = general_instance(n, m, 42);
        let profile = MixedProfile::uniform(n, m);
        costs.bench_with_input(BenchmarkId::new("sc1", format!("n{n}_m{m}")), &n, |b, _| {
            b.iter(|| sc1(black_box(&game), black_box(&profile)))
        });
        costs.bench_with_input(BenchmarkId::new("sc2", format!("n{n}_m{m}")), &n, |b, _| {
            b.iter(|| sc2(black_box(&game), black_box(&profile)))
        });
    }
    costs.finish();

    let mut optimum = c.benchmark_group("exhaustive_social_optimum");
    optimum.sample_size(10);
    for &(n, m) in &[(6usize, 3usize), (8, 3), (10, 2), (7, 4)] {
        let game = general_instance(n, m, 43);
        let initial = LinkLoads::zero(m);
        optimum.bench_with_input(
            BenchmarkId::new("opt1_opt2", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    social_optimum(black_box(&game), black_box(&initial), 100_000_000).unwrap()
                })
            },
        );
    }
    optimum.finish();

    let mut worst = c.benchmark_group("fmne_worst_case_comparison");
    worst.sample_size(10);
    for &(n, m) in &[(4usize, 2usize), (5, 3), (6, 3)] {
        let game = mild_instance(n, m, 44);
        let initial = LinkLoads::zero(m);
        worst.bench_with_input(
            BenchmarkId::new("enumerate_and_compare", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let fmne = fully_mixed_nash(black_box(&game), tol);
                    let pure = all_pure_nash(&game, &initial, tol, 100_000_000).unwrap();
                    let worst_pure = pure
                        .iter()
                        .map(|p| sc1(&game, &MixedProfile::from_pure(p, m)))
                        .fold(0.0f64, f64::max);
                    (fmne.map(|f| sc1(&game, &f)), worst_pure)
                })
            },
        );
    }
    worst.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_social_cost
}
criterion_main!(benches);
