//! E2 — Figure 2 / Theorem 3.5: `Asymmetric` computes a pure Nash equilibrium
//! for symmetric (identically weighted) users in `O(n² m)`. The sweep varies
//! both `n` and `m` to expose the joint scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::symmetric_instance;
use netuncert_core::algorithms::symmetric;
use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::numeric::Tolerance;
use netuncert_core::strategy::LinkLoads;

fn bench_symmetric(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut by_users = c.benchmark_group("asymmetric_by_users");
    by_users.sample_size(20);
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        let game = symmetric_instance(n, 4, 42);
        let profile = symmetric::solve(&game, tol).unwrap();
        assert!(is_pure_nash(&game, &profile, &LinkLoads::zero(4), tol));
        by_users.bench_with_input(BenchmarkId::new("m=4", n), &n, |b, _| {
            b.iter(|| symmetric::solve(black_box(&game), tol).unwrap())
        });
    }
    by_users.finish();

    let mut by_links = c.benchmark_group("asymmetric_by_links");
    by_links.sample_size(20);
    for &m in &[2usize, 4, 8, 16, 32] {
        let game = symmetric_instance(64, m, 43);
        by_links.bench_with_input(BenchmarkId::new("n=64", m), &m, |b, _| {
            b.iter(|| symmetric::solve(black_box(&game), tol).unwrap())
        });
    }
    by_links.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_symmetric
}
criterion_main!(benches);
