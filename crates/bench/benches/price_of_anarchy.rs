//! E10 — price-of-anarchy measurement (Theorems 4.13/4.14): cost of measuring
//! an equilibrium against the exact social optimum and of evaluating the
//! closed-form coordination-ratio bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::{general_instance, uniform_beliefs_instance};
use netuncert_core::fully_mixed::fully_mixed_nash;
use netuncert_core::numeric::Tolerance;
use netuncert_core::social_cost::{cr_bound_general, cr_bound_uniform_beliefs, measure};
use netuncert_core::strategy::{LinkLoads, MixedProfile};

fn bench_poa(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut measurement = c.benchmark_group("poa_measure_against_exact_opt");
    measurement.sample_size(10);
    for &(n, m) in &[(5usize, 2usize), (6, 3), (8, 3)] {
        let game = general_instance(n, m, 42);
        let initial = LinkLoads::zero(m);
        let profile = fully_mixed_nash(&game, tol).unwrap_or_else(|| MixedProfile::uniform(n, m));
        measurement.bench_with_input(
            BenchmarkId::new("measure", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    measure(
                        black_box(&game),
                        black_box(&profile),
                        black_box(&initial),
                        100_000_000,
                    )
                    .unwrap()
                })
            },
        );
    }
    measurement.finish();

    let mut bounds = c.benchmark_group("poa_bound_formulas");
    bounds.sample_size(50);
    for &(n, m) in &[(64usize, 8usize), (512, 16)] {
        let uniform_game = uniform_beliefs_instance(n, m, 43);
        let general_game = general_instance(n, m, 43);
        bounds.bench_with_input(
            BenchmarkId::new("theorem_4_13", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| cr_bound_uniform_beliefs(black_box(&uniform_game))),
        );
        bounds.bench_with_input(
            BenchmarkId::new("theorem_4_14", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| cr_bound_general(black_box(&general_game))),
        );
    }
    bounds.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_poa
}
criterion_main!(benches);
