//! E7 — Theorem 4.6 / Corollary 4.7: the fully mixed Nash equilibrium is
//! computed from its closed form in `O(nm)` time. The sweep varies `n` and `m`
//! independently to expose the bilinear scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::mild_instance;
use netuncert_core::fully_mixed::{fully_mixed_candidate, fully_mixed_nash};
use netuncert_core::numeric::Tolerance;

fn bench_fully_mixed(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut by_users = c.benchmark_group("fmne_by_users");
    by_users.sample_size(30);
    for &n in &[8usize, 32, 128, 512, 2048] {
        let game = mild_instance(n, 8, 42);
        by_users.bench_with_input(BenchmarkId::new("m=8", n), &n, |b, _| {
            b.iter(|| fully_mixed_nash(black_box(&game), tol))
        });
    }
    by_users.finish();

    let mut by_links = c.benchmark_group("fmne_by_links");
    by_links.sample_size(30);
    for &m in &[2usize, 8, 32, 128] {
        let game = mild_instance(256, m, 43);
        by_links.bench_with_input(BenchmarkId::new("n=256", m), &m, |b, _| {
            b.iter(|| fully_mixed_nash(black_box(&game), tol))
        });
    }
    by_links.finish();

    // The candidate evaluation alone (no feasibility filtering) — the raw
    // closed form of Lemmas 4.1–4.3.
    let mut candidate = c.benchmark_group("fmne_candidate");
    candidate.sample_size(30);
    for &n in &[64usize, 512] {
        let game = mild_instance(n, 16, 44);
        candidate.bench_with_input(BenchmarkId::new("m=16", n), &n, |b, _| {
            b.iter(|| fully_mixed_candidate(black_box(&game)))
        });
    }
    candidate.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_fully_mixed
}
criterion_main!(benches);
