//! E12 — the KP-model baseline: LPT/greedy Nashification, Nashification of
//! arbitrary profiles, and the KP social-cost machinery, timed on the same
//! instances the uncertainty-model solvers handle (point-mass beliefs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use instance_gen::kp::KpSpec;
use instance_gen::rng;
use kp_model::lpt::{lpt_assignment, nashify};
use kp_model::social::expected_max_congestion;
use netuncert_core::algorithms::solve_pure_nash;
use netuncert_core::numeric::Tolerance;
use netuncert_core::strategy::{LinkLoads, MixedProfile, PureProfile};

fn bench_kp(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut lpt = c.benchmark_group("kp_lpt_nash");
    lpt.sample_size(30);
    for &(n, m) in &[(16usize, 4usize), (64, 8), (256, 16), (1024, 32)] {
        let game = KpSpec::related(n, m).generate(&mut rng(42, 0));
        lpt.bench_with_input(BenchmarkId::new("lpt", format!("n{n}_m{m}")), &n, |b, _| {
            b.iter(|| lpt_assignment(black_box(&game)))
        });
    }
    lpt.finish();

    let mut model_vs_kp = c.benchmark_group("kp_model_solver_on_kp_instances");
    model_vs_kp.sample_size(20);
    for &(n, m) in &[(16usize, 4usize), (64, 8)] {
        let game = KpSpec::related(n, m).generate(&mut rng(43, 0));
        let eg = game.to_effective_game();
        let initial = LinkLoads::zero(m);
        model_vs_kp.bench_with_input(
            BenchmarkId::new("dispatcher", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| solve_pure_nash(black_box(&eg), black_box(&initial), tol).unwrap()),
        );
    }
    model_vs_kp.finish();

    let mut nashification = c.benchmark_group("kp_nashify_worst_start");
    nashification.sample_size(20);
    for &(n, m) in &[(16usize, 4usize), (64, 8)] {
        let game = KpSpec::related(n, m).generate(&mut rng(44, 0));
        nashification.bench_with_input(
            BenchmarkId::new("all_on_link_0", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| nashify(black_box(&game), PureProfile::all_on(n, 0), 1_000_000)),
        );
    }
    nashification.finish();

    let mut social = c.benchmark_group("kp_expected_max_congestion");
    social.sample_size(10);
    for &(n, m) in &[(8usize, 2usize), (10, 2), (8, 3)] {
        let game = KpSpec::related(n, m).generate(&mut rng(45, 0));
        let profile = MixedProfile::uniform(n, m);
        social.bench_with_input(
            BenchmarkId::new("exact_enumeration", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    expected_max_congestion(black_box(&game), black_box(&profile), 100_000_000)
                        .unwrap()
                })
            },
        );
    }
    social.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_kp
}
criterion_main!(benches);
