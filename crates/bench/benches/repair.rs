//! Warm-start repair vs cold solving: the numbers behind the `repair`
//! table in `BENCHMARKS.md` — the evidence that carrying a certified
//! equilibrium across one churn edit costs a fraction of re-solving the
//! edited game with `LocalSearch` from scratch.
//!
//! Every benchmarked path is certification-checked before timing: the
//! repaired profile must pass `is_pure_nash` on the edited game, exactly
//! as the repair contract demands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::model::GameEdit;
use netuncert_core::solvers::engine::{SolverConfig, SolverEngine, SolverKind};
use netuncert_core::strategy::LinkLoads;

/// The churn edits benchmarked per size: one of each kind, grounded
/// against an `n`-user, `m`-link game.
fn edits(n: usize, m: usize) -> Vec<(&'static str, GameEdit)> {
    vec![
        (
            "capacity",
            GameEdit::CapacityChange {
                user: n / 2,
                link: m / 2,
                capacity: 2.5,
            },
        ),
        (
            "join",
            GameEdit::UserJoins {
                weight: 1.5,
                capacities: (0..m).map(|l| 1.0 + l as f64 * 0.25).collect(),
            },
        ),
        ("leave", GameEdit::UserLeaves { user: n / 3 }),
    ]
}

fn bench_repair(c: &mut Criterion) {
    let config = SolverConfig::default();
    let engine = SolverEngine::from_kinds(config, &[SolverKind::LocalSearch]);

    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    for &(n, m) in &[(128usize, 8usize), (512, 16)] {
        let game = general_instance(n, m, 47);
        let initial = LinkLoads::zero(m);
        let solved = engine.solve(&game, &initial).unwrap();
        let certified = solved.solution.expect("the heuristic converges").profile;
        assert!(is_pure_nash(&game, &certified, &initial, config.tol));

        for (kind, edit) in edits(n, m) {
            // Certify the repaired answer once before timing it.
            let outcome = engine.repair(&game, &initial, &certified, &edit).unwrap();
            let repaired = outcome.solution.solution.expect("repair certifies");
            assert!(is_pure_nash(
                &outcome.game,
                &repaired.profile,
                &initial,
                config.tol
            ));

            group.bench_with_input(
                BenchmarkId::new(format!("warm_{kind}"), format!("n{n}_m{m}")),
                &edit,
                |b, edit| {
                    b.iter(|| {
                        engine.repair(
                            black_box(&game),
                            black_box(&initial),
                            black_box(&certified),
                            black_box(edit),
                        )
                    })
                },
            );

            // The from-scratch comparison point: a cold LocalSearch solve
            // of the *same* edited game.
            let edited = game.apply_edit(&edit).unwrap();
            let cold = engine.solve(&edited, &initial).unwrap();
            let cold_profile = cold.solution.expect("the heuristic converges").profile;
            assert!(is_pure_nash(&edited, &cold_profile, &initial, config.tol));
            group.bench_with_input(
                BenchmarkId::new(format!("cold_{kind}"), format!("n{n}_m{m}")),
                &edited,
                |b, edited| b.iter(|| engine.solve(black_box(edited), black_box(&initial))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_repair
}
criterion_main!(benches);
