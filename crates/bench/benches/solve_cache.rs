//! Engine-level memoisation — cached vs. uncached solving on the repeat
//! structure of a perturbation sweep: a batch where every `k`-th instance is
//! the same fixed "true" network and the rest are fresh perturbations.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::model::EffectiveGame;
use netuncert_core::solvers::cache::SolveCache;
use netuncert_core::solvers::engine::SolverEngine;
use netuncert_core::strategy::LinkLoads;

/// A perturbation-shaped workload: `total` instances where every group of
/// `group` consecutive tasks shares one base instance (solved repeatedly)
/// followed by fresh perturbations (solved once each).
fn perturbation_batch(total: usize, group: usize) -> Vec<EffectiveGame> {
    (0..total)
        .map(|task| {
            if task % group == 0 {
                // The shared base network: identical bits every time.
                general_instance(32, 8, 7)
            } else {
                general_instance(32, 8, 1000 + task as u64)
            }
        })
        .collect()
}

fn bench_solve_cache(c: &mut Criterion) {
    let games = perturbation_batch(64, 4);
    let initial = LinkLoads::zero(8);

    let mut group = c.benchmark_group("solve_cache");
    group.sample_size(20);

    group.bench_function("uncached_64_solves_16_repeats", |b| {
        let engine = SolverEngine::default();
        b.iter(|| {
            for game in &games {
                black_box(engine.solve(black_box(game), &initial).unwrap());
            }
        })
    });

    group.bench_function("cached_64_solves_16_repeats", |b| {
        b.iter(|| {
            // A fresh cache per iteration: the measurement includes the cold
            // misses, so the speedup shown is what one sweep pass actually gains.
            let engine = SolverEngine::default().with_cache(Arc::new(SolveCache::new()));
            for game in &games {
                black_box(engine.solve(black_box(game), &initial).unwrap());
            }
        })
    });

    // The pure-hit upper bound: every solve after the first is a hit.
    group.bench_function("cached_repeat_only", |b| {
        let engine = SolverEngine::default().with_cache(Arc::new(SolveCache::new()));
        let game = &games[0];
        engine.solve(game, &initial).unwrap();
        b.iter(|| black_box(engine.solve(black_box(game), &initial).unwrap()))
    });

    for threads in [1usize, 4] {
        let engine = SolverEngine::default()
            .with_parallelism(par_exec::ParallelConfig::new(threads))
            .with_cache(Arc::new(SolveCache::new()));
        group.bench_with_input(
            BenchmarkId::new("cached_solve_batch", threads),
            &threads,
            |b, _| b.iter(|| engine.solve_batch(black_box(&games))),
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_solve_cache
}
criterion_main!(benches);
