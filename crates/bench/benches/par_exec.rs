//! Substrate bench — the `par-exec` parallel layer used by the Monte-Carlo
//! experiments: sequential vs. multi-threaded `parallel_map` on the
//! per-instance workload the experiments actually run (solve a random game).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::solvers::engine::SolverEngine;
use par_exec::{available_parallelism, parallel_map, ParallelConfig};

fn bench_par_exec(c: &mut Criterion) {
    let tasks = 64usize;

    let mut group = c.benchmark_group("parallel_monte_carlo_sweep");
    group.sample_size(10);
    let thread_counts = {
        let max = available_parallelism();
        let mut counts = vec![1usize];
        if max >= 2 {
            counts.push(2);
        }
        if max > 2 {
            counts.push(max);
        }
        counts
    };
    for &threads in &thread_counts {
        let engine = SolverEngine::default().with_parallelism(ParallelConfig::new(threads));
        group.bench_with_input(
            BenchmarkId::new("solve_64_random_games", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    engine.solve_sampled(black_box(tasks), |task| general_instance(12, 4, task))
                })
            },
        );
    }
    group.finish();

    let mut overhead = c.benchmark_group("parallel_map_overhead");
    overhead.sample_size(30);
    for &threads in &thread_counts {
        let config = ParallelConfig::new(threads);
        overhead.bench_with_input(
            BenchmarkId::new("trivial_tasks", threads),
            &threads,
            |b, _| b.iter(|| parallel_map(black_box(&config), 10_000, |i| i * 2)),
        );
    }
    overhead.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_par_exec
}
criterion_main!(benches);
