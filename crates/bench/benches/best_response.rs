//! E5 — Conjecture 3.7 machinery: convergence speed of best-response dynamics
//! on random general instances (the workhorse behind the paper's simulation
//! campaign and the dispatcher's general-case path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::algorithms::best_response::{BestResponseDynamics, SelectionRule};
use netuncert_core::algorithms::solve_pure_nash;
use netuncert_core::model::EffectiveGame;
use netuncert_core::numeric::Tolerance;
use netuncert_core::solvers::engine::SolverEngine;
use netuncert_core::strategy::LinkLoads;
use par_exec::ParallelConfig;

fn bench_best_response(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut group = c.benchmark_group("best_response_dynamics");
    group.sample_size(20);
    for &(n, m) in &[(8usize, 4usize), (16, 4), (32, 8), (64, 8), (128, 16)] {
        let game = general_instance(n, m, 42);
        let initial = LinkLoads::zero(m);
        let dynamics = BestResponseDynamics::default();
        // Confirm convergence once before timing.
        assert!(dynamics.run_from_greedy(&game, &initial, tol).converged());
        group.bench_with_input(
            BenchmarkId::new("greedy_start", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| dynamics.run_from_greedy(black_box(&game), black_box(&initial), tol)),
        );
    }
    group.finish();

    let mut rules = c.benchmark_group("best_response_selection_rules");
    rules.sample_size(20);
    let game = general_instance(32, 8, 43);
    let initial = LinkLoads::zero(8);
    for (name, rule) in [
        ("round_robin", SelectionRule::RoundRobin),
        ("largest_gain", SelectionRule::LargestGain),
    ] {
        let dynamics = BestResponseDynamics {
            max_steps: 1_000_000,
            rule,
        };
        rules.bench_function(name, |b| {
            b.iter(|| dynamics.run_from_greedy(black_box(&game), black_box(&initial), tol))
        });
    }
    rules.finish();

    let mut dispatcher = c.benchmark_group("solve_pure_nash_dispatcher");
    dispatcher.sample_size(20);
    let engine = SolverEngine::default();
    for &(n, m) in &[(16usize, 4usize), (64, 8)] {
        let game = general_instance(n, m, 44);
        let initial = LinkLoads::zero(m);
        dispatcher.bench_with_input(
            BenchmarkId::new("general", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| solve_pure_nash(black_box(&game), black_box(&initial), tol).unwrap()),
        );
        dispatcher.bench_with_input(
            BenchmarkId::new("engine_with_telemetry", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| engine.solve(black_box(&game), black_box(&initial)).unwrap()),
        );
    }
    dispatcher.finish();

    // The batch path: 64 general instances fanned out over the engine's
    // worker pool. Solutions are bit-identical for every thread count; only
    // the wall clock should move.
    let mut batch = c.benchmark_group("solver_engine_batch");
    batch.sample_size(10);
    let games: Vec<EffectiveGame> = (0..64)
        .map(|i| general_instance(16, 4, 1000 + i as u64))
        .collect();
    for threads in [1usize, 2, 4, 8] {
        let engine = SolverEngine::default().with_parallelism(ParallelConfig::new(threads));
        batch.bench_with_input(
            BenchmarkId::new("solve_batch_64_n16_m4", threads),
            &threads,
            |b, _| b.iter(|| engine.solve_batch(black_box(&games))),
        );
    }
    batch.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_best_response
}
criterion_main!(benches);
