//! E4 — the three-user analysis (Section 3.1): cost of building the full
//! best-response game graph and searching it for cycles, the computation
//! behind the paper's exhaustive `n = 3` existence argument and the
//! potential-game observations of Section 3.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use netuncert_bench::general_instance;
use netuncert_core::game_graph::{EdgeKind, GameGraph};
use netuncert_core::model::EffectiveGame;
use netuncert_core::numeric::Tolerance;
use netuncert_core::potential::exact_potential_violation;
use netuncert_core::solvers::engine::SolverEngine;
use netuncert_core::strategy::LinkLoads;
use par_exec::ParallelConfig;

fn bench_game_graph(c: &mut Criterion) {
    let tol = Tolerance::default();

    let mut build = c.benchmark_group("game_graph_build_n3");
    build.sample_size(20);
    for &m in &[2usize, 3, 4, 5, 6] {
        let game = general_instance(3, m, 42);
        let initial = LinkLoads::zero(m);
        build.bench_with_input(BenchmarkId::new("best_response_edges", m), &m, |b, _| {
            b.iter(|| {
                GameGraph::build(
                    black_box(&game),
                    black_box(&initial),
                    EdgeKind::BestResponse,
                    tol,
                    10_000_000,
                )
                .unwrap()
            })
        });
    }
    build.finish();

    let mut cycle = c.benchmark_group("game_graph_cycle_search");
    cycle.sample_size(20);
    for &(n, m) in &[(3usize, 3usize), (3, 5), (4, 3), (5, 3)] {
        let game = general_instance(n, m, 43);
        let initial = LinkLoads::zero(m);
        let graph =
            GameGraph::build(&game, &initial, EdgeKind::BetterResponse, tol, 10_000_000).unwrap();
        cycle.bench_with_input(
            BenchmarkId::new("better_response", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| black_box(&graph).find_cycle()),
        );
    }
    cycle.finish();

    // The engine view of the same `n = 3` analysis: finding one equilibrium
    // per instance through the unified solver stack instead of materialising
    // the full defection graph, both one-at-a-time and as a parallel batch.
    let mut engine_group = c.benchmark_group("solver_engine_n3");
    engine_group.sample_size(20);
    let engine = SolverEngine::default();
    for &m in &[2usize, 3, 4, 5, 6] {
        let game = general_instance(3, m, 42);
        let initial = LinkLoads::zero(m);
        engine_group.bench_with_input(BenchmarkId::new("solve_one", m), &m, |b, _| {
            b.iter(|| engine.solve(black_box(&game), black_box(&initial)).unwrap())
        });
    }
    let batch: Vec<EffectiveGame> = (0..128)
        .map(|i| general_instance(3, 4, 500 + i as u64))
        .collect();
    for threads in [1usize, 4] {
        let batch_engine = SolverEngine::default().with_parallelism(ParallelConfig::new(threads));
        engine_group.bench_with_input(
            BenchmarkId::new("solve_batch_128_m4", threads),
            &threads,
            |b, _| b.iter(|| batch_engine.solve_batch(black_box(&batch))),
        );
    }
    engine_group.finish();

    let mut potential = c.benchmark_group("exact_potential_check");
    potential.sample_size(20);
    for &(n, m) in &[(2usize, 2usize), (3, 2), (3, 3), (4, 3)] {
        let game = general_instance(n, m, 44);
        let initial = LinkLoads::zero(m);
        potential.bench_with_input(
            BenchmarkId::new("four_cycle_condition", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    exact_potential_violation(
                        black_box(&game),
                        black_box(&initial),
                        tol,
                        10_000_000,
                    )
                    .unwrap()
                })
            },
        );
    }
    potential.finish();
}

criterion_group! {
    name = benches;
    config = netuncert_bench::bench_config();
    targets = bench_game_graph
}
criterion_main!(benches);
