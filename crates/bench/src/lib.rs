//! Shared helpers for the Criterion benchmark suite.
//!
//! Every benchmark regenerates one of the paper's evaluation artefacts (the
//! algorithm figures and the theorem-driven experiments); see `DESIGN.md` for
//! the experiment index and `EXPERIMENTS.md` for recorded results. The helpers
//! here build deterministic instances so that benchmark numbers are comparable
//! across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use criterion::Criterion;
use instance_gen::{rng, CapacityDist, EffectiveSpec, WeightDist};
use netuncert_core::model::EffectiveGame;

/// The Criterion configuration shared by every benchmark in the suite:
/// shorter warm-up and measurement windows than the defaults so that the full
/// suite (≈75 benchmark points) completes in a few minutes on one core while
/// still giving stable medians for these microsecond-to-millisecond kernels.
///
/// Setting `NETUNCERT_BENCH_QUICK=1` shrinks the windows further to a smoke
/// size: CI's bench step uses it to execute every benchmark body (including
/// the certification asserts ahead of each timed solve) in seconds. Numbers
/// from quick mode are for liveness only — never record them.
pub fn bench_config() -> Criterion {
    let quick = std::env::var("NETUNCERT_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let (warm_ms, measure_ms) = if quick { (50, 120) } else { (400, 1200) };
    Criterion::default()
        .warm_up_time(Duration::from_millis(warm_ms))
        .measurement_time(Duration::from_millis(measure_ms))
        .configure_from_args()
}

/// A deterministic general instance (fully user-specific capacities).
pub fn general_instance(users: usize, links: usize, seed: u64) -> EffectiveGame {
    EffectiveSpec::General {
        users,
        links,
        capacity: CapacityDist::Uniform { lo: 0.25, hi: 4.0 },
        weights: WeightDist::Uniform { lo: 0.5, hi: 4.0 },
    }
    .generate(&mut rng(seed, 0xBE))
}

/// A deterministic symmetric-users instance (identical weights).
pub fn symmetric_instance(users: usize, links: usize, seed: u64) -> EffectiveGame {
    EffectiveSpec::General {
        users,
        links,
        capacity: CapacityDist::Uniform { lo: 0.25, hi: 4.0 },
        weights: WeightDist::Identical(1.0),
    }
    .generate(&mut rng(seed, 0xBE))
}

/// A deterministic uniform-beliefs instance (per-user scalar capacities).
pub fn uniform_beliefs_instance(users: usize, links: usize, seed: u64) -> EffectiveGame {
    EffectiveSpec::UniformPerUser {
        users,
        links,
        capacity: CapacityDist::Uniform { lo: 0.25, hi: 4.0 },
        weights: WeightDist::Uniform { lo: 0.5, hi: 4.0 },
    }
    .generate(&mut rng(seed, 0xBE))
}

/// A deterministic "mild" instance whose fully mixed equilibrium exists.
pub fn mild_instance(users: usize, links: usize, seed: u64) -> EffectiveGame {
    EffectiveSpec::General {
        users,
        links,
        capacity: CapacityDist::Uniform { lo: 0.75, hi: 1.5 },
        weights: WeightDist::Uniform { lo: 0.75, hi: 1.5 },
    }
    .generate(&mut rng(seed, 0xBE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netuncert_core::numeric::Tolerance;

    #[test]
    fn instances_have_the_requested_shapes() {
        let tol = Tolerance::default();
        let g = general_instance(6, 4, 1);
        assert_eq!((g.users(), g.links()), (6, 4));
        assert!(symmetric_instance(5, 3, 1).has_identical_weights(tol));
        assert!(uniform_beliefs_instance(5, 3, 1).has_uniform_beliefs(tol));
        assert_eq!(mild_instance(4, 2, 1).users(), 4);
    }

    #[test]
    fn instances_are_deterministic_in_the_seed() {
        assert_eq!(general_instance(6, 4, 7), general_instance(6, 4, 7));
        assert_ne!(general_instance(6, 4, 7), general_instance(6, 4, 8));
    }
}
