//! Property-based tests for the congestion-game substrates: Rosenthal
//! potentials, user-specific games and the embedding of belief-induced games.

use proptest::prelude::*;

use congestion_games::milchtaich::from_effective_game;
use congestion_games::{CongestionGame, CostFunction, UserSpecificGame};
use netuncert_core::model::EffectiveGame;
use netuncert_core::numeric::Tolerance;
use netuncert_core::solvers::exhaustive::all_pure_nash;
use netuncert_core::strategy::{LinkLoads, PureProfile};

/// Strategy: a non-decreasing cost table of length `players`.
fn cost_table(players: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..2.0, players).prop_map(|increments| {
        let mut value = 0.0;
        increments
            .into_iter()
            .map(|inc| {
                value += inc;
                value
            })
            .collect()
    })
}

/// Strategy: an unweighted Rosenthal congestion game.
fn rosenthal_game() -> impl Strategy<Value = CongestionGame> {
    (2usize..=5, 2usize..=4).prop_flat_map(|(players, resources)| {
        proptest::collection::vec(cost_table(players), resources)
            .prop_map(move |tables| CongestionGame::new(players, tables))
    })
}

/// Strategy: a weighted user-specific game with linear (load/capacity) costs —
/// exactly the belief-induced shape.
fn linear_user_specific() -> impl Strategy<Value = (UserSpecificGame, EffectiveGame)> {
    (2usize..=4, 2usize..=3).prop_flat_map(|(players, resources)| {
        let weights = proptest::collection::vec(0.25f64..3.0, players);
        let caps =
            proptest::collection::vec(proptest::collection::vec(0.25f64..3.0, resources), players);
        (weights, caps).prop_map(|(w, caps)| {
            let eg = EffectiveGame::from_rows(w.clone(), caps.clone()).expect("valid");
            let costs = caps
                .iter()
                .map(|row| row.iter().map(|&c| CostFunction::linear(c)).collect())
                .collect();
            (UserSpecificGame::new(w, costs), eg)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rosenthal's potential is an exact potential: along any single improving
    /// move the potential change equals the mover's cost change, and
    /// best-response dynamics always converge to a verified equilibrium.
    #[test]
    fn rosenthal_potential_is_exact_and_dynamics_converge(
        game in rosenthal_game(),
        start_seed in 0usize..1000,
    ) {
        let n = game.players();
        let r = game.resources();
        let mut profile: Vec<usize> = (0..n).map(|i| (start_seed + i * 3) % r).collect();
        let mut phi = game.rosenthal_potential(&profile);
        let mut steps = 0;
        loop {
            let mut moved = false;
            for p in 0..n {
                if let Some((to, _)) = game.best_improvement(&profile, p) {
                    let before = game.player_cost(&profile, p);
                    profile[p] = to;
                    let after = game.player_cost(&profile, p);
                    let new_phi = game.rosenthal_potential(&profile);
                    prop_assert!(((new_phi - phi) - (after - before)).abs() < 1e-9);
                    prop_assert!(new_phi < phi + 1e-12);
                    phi = new_phi;
                    moved = true;
                    steps += 1;
                    break;
                }
            }
            if !moved {
                break;
            }
            prop_assert!(steps <= n * r * n + 100, "dynamics did not converge");
        }
        prop_assert!(game.is_pure_nash(&profile));
    }

    /// The embedding of a belief-induced effective game into the user-specific
    /// class preserves player costs on every profile and the pure-equilibrium
    /// set.
    #[test]
    fn embedding_preserves_costs_and_equilibria((usg, eg) in linear_user_specific()) {
        let tol = Tolerance::default();
        let t = LinkLoads::zero(eg.links());
        // Costs agree on every profile.
        let n = eg.users();
        let m = eg.links();
        let mut profile = vec![0usize; n];
        loop {
            let pure = PureProfile::new(profile.clone());
            for user in 0..n {
                let a = usg.player_cost(&profile, user);
                let b = netuncert_core::latency::pure_user_latency(&eg, &pure, &t, user);
                prop_assert!((a - b).abs() < 1e-9);
            }
            prop_assert_eq!(usg.is_pure_nash(&profile),
                netuncert_core::equilibrium::is_pure_nash(&eg, &pure, &t, tol));
            // Odometer.
            let mut pos = 0;
            loop {
                if pos == n { break; }
                profile[pos] += 1;
                if profile[pos] < m { break; }
                profile[pos] = 0;
                pos += 1;
            }
            if pos == n { break; }
        }
        // Equilibrium sets coincide (same enumeration order).
        let embedded: Vec<Vec<usize>> = usg.all_pure_nash();
        let core: Vec<Vec<usize>> = all_pure_nash(&eg, &t, tol, 1_000_000)
            .unwrap()
            .iter()
            .map(|p| p.choices().to_vec())
            .collect();
        prop_assert_eq!(embedded, core);
    }

    /// The `from_effective_game` helper builds the same game as constructing
    /// linear costs by hand.
    #[test]
    fn from_effective_game_matches_manual_embedding((manual, eg) in linear_user_specific()) {
        let auto = from_effective_game(&eg);
        prop_assert_eq!(auto, manual);
    }

    /// Step cost functions are monotone on arbitrary sample loads and evaluate
    /// below/above their extreme values correctly.
    #[test]
    fn step_costs_are_monotone(
        increments in proptest::collection::vec((0.1f64..2.0, 0.0f64..2.0), 1..6),
        probes in proptest::collection::vec(0.0f64..20.0, 1..20),
    ) {
        let mut threshold = 0.0;
        let mut value = 0.0;
        let steps: Vec<(f64, f64)> = increments
            .into_iter()
            .map(|(dt, dv)| {
                threshold += dt;
                value += dv;
                (threshold, value)
            })
            .collect();
        let f = CostFunction::step(steps[0].1, steps.clone());
        prop_assert!(f.is_monotone_on(&probes));
        // Below the first threshold the base value applies.
        prop_assert_eq!(f.cost(steps[0].0 - 1e-9), steps[0].1);
        // At or beyond the last threshold the last value applies.
        prop_assert_eq!(f.cost(steps.last().unwrap().0 + 10.0), steps.last().unwrap().1);
    }

    /// In a user-specific game, a player's cost after a hypothetical move
    /// matches its cost in the profile where the move has been applied.
    #[test]
    fn cost_after_move_is_consistent((usg, _eg) in linear_user_specific(), seed in 0usize..1000) {
        let n = usg.players();
        let r = usg.resources();
        let profile: Vec<usize> = (0..n).map(|i| (seed + i) % r).collect();
        for player in 0..n {
            for target in 0..r {
                let predicted = usg.cost_after_move(&profile, player, target);
                let mut moved = profile.clone();
                moved[player] = target;
                let actual = usg.player_cost(&moved, player);
                prop_assert!((predicted - actual).abs() < 1e-12);
            }
        }
    }
}
