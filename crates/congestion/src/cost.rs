//! Resource cost functions.

use serde::{Deserialize, Serialize};

/// A non-decreasing cost (latency) function of the total load on a resource.
///
/// Two representations cover every game in this workspace:
///
/// * [`CostFunction::LinearLoad`] — `load / capacity`, the latency shape of
///   the KP-model and of the paper's belief-induced games;
/// * [`CostFunction::StepLoad`] — a right-continuous step function given by
///   `(threshold, value)` breakpoints, general enough to express arbitrary
///   monotone costs on the finitely many loads a finite game can produce
///   (used by the Milchtaich counterexample search).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CostFunction {
    /// `cost(load) = load / capacity` with `capacity > 0`.
    LinearLoad {
        /// The resource capacity.
        capacity: f64,
    },
    /// A non-decreasing step function: `cost(load)` is the value of the last
    /// breakpoint whose threshold is `≤ load`, or `base` when `load` is below
    /// every threshold.
    StepLoad {
        /// Cost when the load is below the first threshold.
        base: f64,
        /// Breakpoints as `(threshold, value)` pairs, sorted by threshold with
        /// non-decreasing values.
        steps: Vec<(f64, f64)>,
    },
}

impl CostFunction {
    /// A linear cost `load / capacity`.
    pub fn linear(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        CostFunction::LinearLoad { capacity }
    }

    /// A step cost function; panics unless thresholds are strictly increasing
    /// and values (including `base`) are non-decreasing and non-negative.
    pub fn step(base: f64, steps: Vec<(f64, f64)>) -> Self {
        assert!(
            base.is_finite() && base >= 0.0,
            "base cost must be non-negative"
        );
        let mut last_threshold = f64::NEG_INFINITY;
        let mut last_value = base;
        for &(threshold, value) in &steps {
            assert!(
                threshold.is_finite() && threshold > last_threshold,
                "thresholds must increase"
            );
            assert!(
                value.is_finite() && value >= last_value,
                "step values must be non-decreasing"
            );
            last_threshold = threshold;
            last_value = value;
        }
        CostFunction::StepLoad { base, steps }
    }

    /// The cost at total load `load`.
    pub fn cost(&self, load: f64) -> f64 {
        match self {
            CostFunction::LinearLoad { capacity } => load / capacity,
            CostFunction::StepLoad { base, steps } => {
                let mut value = *base;
                for &(threshold, step_value) in steps {
                    if load >= threshold {
                        value = step_value;
                    } else {
                        break;
                    }
                }
                value
            }
        }
    }

    /// Whether the function is non-decreasing on the given sample loads
    /// (diagnostic helper used by tests and the counterexample search).
    pub fn is_monotone_on(&self, loads: &[f64]) -> bool {
        let mut sorted = loads.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("loads must not be NaN"));
        sorted
            .windows(2)
            .all(|w| self.cost(w[0]) <= self.cost(w[1]) + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost_is_load_over_capacity() {
        let f = CostFunction::linear(4.0);
        assert_eq!(f.cost(0.0), 0.0);
        assert_eq!(f.cost(2.0), 0.5);
        assert_eq!(f.cost(8.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn linear_rejects_non_positive_capacity() {
        CostFunction::linear(0.0);
    }

    #[test]
    fn step_cost_evaluates_right_continuously() {
        let f = CostFunction::step(1.0, vec![(2.0, 3.0), (5.0, 7.0)]);
        assert_eq!(f.cost(0.0), 1.0);
        assert_eq!(f.cost(1.9), 1.0);
        assert_eq!(f.cost(2.0), 3.0);
        assert_eq!(f.cost(4.9), 3.0);
        assert_eq!(f.cost(5.0), 7.0);
        assert_eq!(f.cost(100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn step_rejects_decreasing_values() {
        CostFunction::step(1.0, vec![(2.0, 3.0), (5.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "thresholds must increase")]
    fn step_rejects_unsorted_thresholds() {
        CostFunction::step(0.0, vec![(5.0, 1.0), (2.0, 2.0)]);
    }

    #[test]
    fn monotonicity_check() {
        let f = CostFunction::step(0.0, vec![(1.0, 1.0), (2.0, 4.0)]);
        assert!(f.is_monotone_on(&[0.0, 1.0, 1.5, 2.0, 3.0]));
        let g = CostFunction::linear(2.0);
        assert!(g.is_monotone_on(&[0.0, 0.5, 10.0]));
    }
}
