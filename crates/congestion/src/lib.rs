//! # congestion-games
//!
//! A substrate crate implementing the congestion-game classes that the paper
//! builds on and compares against:
//!
//! * [`rosenthal`] — classical *unweighted* congestion games with universal
//!   (player-independent) resource cost functions. Rosenthal's potential shows
//!   these always possess pure Nash equilibria; the potential and the
//!   convergence of improvement dynamics are implemented and tested.
//! * [`user_specific`] — *weighted* singleton congestion games with
//!   player-specific cost functions, the class of Milchtaich (1996) that the
//!   paper's model is an instance of. Pure Nash equilibria need not exist
//!   here.
//! * [`milchtaich`] — a concrete three-player, three-resource weighted
//!   user-specific game without any pure Nash equilibrium (the shape of the
//!   counterexample cited by the paper), together with a randomised search
//!   routine for generating further counterexamples, and the embedding of the
//!   paper's belief-based games into the user-specific class.
//!
//! The paper's point — reproduced by the tests and experiments in this
//! workspace — is that the belief-induced games sit strictly *inside* the
//! user-specific class: the general class admits three-player games with no
//! pure equilibrium, while every three-player belief-induced game has one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod milchtaich;
pub mod rosenthal;
pub mod user_specific;

pub use cost::CostFunction;
pub use rosenthal::CongestionGame;
pub use user_specific::UserSpecificGame;
