//! Classical unweighted congestion games (Rosenthal 1973).
//!
//! Every player selects one resource; the cost of a resource depends only on
//! the *number* of players using it and is the same for every player.
//! Rosenthal's potential `Φ(σ) = Σ_r Σ_{k=1}^{n_r(σ)} c_r(k)` decreases with
//! every improving deviation, so better-response dynamics always converge to a
//! pure Nash equilibrium. This crate uses the class as the "everything works"
//! baseline against which the user-specific and belief-induced games are
//! compared.

use serde::{Deserialize, Serialize};

/// An unweighted singleton congestion game with universal per-resource costs.
///
/// `cost[r][k-1]` is the cost every player on resource `r` pays when exactly
/// `k` players use it; each cost row must be non-decreasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionGame {
    players: usize,
    /// `costs[r][k-1]` = cost of resource `r` with `k` players on it.
    costs: Vec<Vec<f64>>,
}

impl CongestionGame {
    /// Builds a game with `players` players and the given per-resource cost
    /// tables. Each table must have one entry per possible occupancy
    /// `1..=players` and be non-decreasing.
    pub fn new(players: usize, costs: Vec<Vec<f64>>) -> Self {
        assert!(players >= 2, "need at least two players");
        assert!(costs.len() >= 2, "need at least two resources");
        for (r, table) in costs.iter().enumerate() {
            assert_eq!(
                table.len(),
                players,
                "resource {r} needs a cost for every occupancy"
            );
            assert!(
                table.windows(2).all(|w| w[0] <= w[1] + 1e-12),
                "resource {r} costs must be non-decreasing"
            );
            assert!(table.iter().all(|c| c.is_finite()), "costs must be finite");
        }
        CongestionGame { players, costs }
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.players
    }

    /// Number of resources.
    pub fn resources(&self) -> usize {
        self.costs.len()
    }

    /// Cost of resource `resource` when `count` players use it.
    pub fn cost(&self, resource: usize, count: usize) -> f64 {
        assert!(count >= 1 && count <= self.players);
        self.costs[resource][count - 1]
    }

    /// Number of players on each resource under `profile`.
    pub fn occupancies(&self, profile: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.resources()];
        for &r in profile {
            counts[r] += 1;
        }
        counts
    }

    /// Cost paid by `player` in `profile`.
    pub fn player_cost(&self, profile: &[usize], player: usize) -> f64 {
        let counts = self.occupancies(profile);
        self.cost(profile[player], counts[profile[player]])
    }

    /// Rosenthal's potential `Φ(σ) = Σ_r Σ_{k=1}^{n_r} c_r(k)`.
    pub fn rosenthal_potential(&self, profile: &[usize]) -> f64 {
        let counts = self.occupancies(profile);
        let mut phi = 0.0;
        for (r, &n_r) in counts.iter().enumerate() {
            for k in 1..=n_r {
                phi += self.cost(r, k);
            }
        }
        phi
    }

    /// The best improving deviation of `player`, if any, as `(resource, new_cost)`.
    pub fn best_improvement(&self, profile: &[usize], player: usize) -> Option<(usize, f64)> {
        let counts = self.occupancies(profile);
        let current = self.cost(profile[player], counts[profile[player]]);
        let mut best: Option<(usize, f64)> = None;
        for (r, &count) in counts.iter().enumerate() {
            if r == profile[player] {
                continue;
            }
            let new_cost = self.cost(r, count + 1);
            if new_cost < current - 1e-12 && best.map(|(_, c)| new_cost < c).unwrap_or(true) {
                best = Some((r, new_cost));
            }
        }
        best
    }

    /// Whether `profile` is a pure Nash equilibrium.
    pub fn is_pure_nash(&self, profile: &[usize]) -> bool {
        (0..self.players).all(|p| self.best_improvement(profile, p).is_none())
    }

    /// Runs best-response dynamics until convergence, returning the
    /// equilibrium and the number of moves. Convergence is guaranteed by the
    /// Rosenthal potential; the step bound `players * resources * players` is a
    /// safety net only.
    pub fn converge(&self, start: Vec<usize>) -> (Vec<usize>, usize) {
        let mut profile = start;
        let mut steps = 0usize;
        let hard_cap = 10_000 + self.players * self.resources() * self.players;
        loop {
            let mut moved = false;
            for player in 0..self.players {
                if let Some((to, _)) = self.best_improvement(&profile, player) {
                    profile[player] = to;
                    steps += 1;
                    moved = true;
                    break;
                }
            }
            if !moved {
                return (profile, steps);
            }
            assert!(
                steps <= hard_cap,
                "dynamics failed to converge: potential argument violated"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_player_game() -> CongestionGame {
        CongestionGame::new(
            3,
            vec![
                vec![1.0, 3.0, 6.0],
                vec![2.0, 4.0, 5.0],
                vec![2.5, 2.5, 2.5],
            ],
        )
    }

    #[test]
    fn construction_validates_tables() {
        let g = three_player_game();
        assert_eq!(g.players(), 3);
        assert_eq!(g.resources(), 3);
        assert_eq!(g.cost(0, 2), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_costs_are_rejected() {
        CongestionGame::new(2, vec![vec![2.0, 1.0], vec![1.0, 1.0]]);
    }

    #[test]
    fn potential_drops_with_every_improving_move() {
        let g = three_player_game();
        let mut profile = vec![0, 0, 0];
        let mut phi = g.rosenthal_potential(&profile);
        loop {
            let mut moved = false;
            for p in 0..3 {
                if let Some((to, _)) = g.best_improvement(&profile, p) {
                    let old_cost = g.player_cost(&profile, p);
                    profile[p] = to;
                    let new_phi = g.rosenthal_potential(&profile);
                    let new_cost = g.player_cost(&profile, p);
                    // Exact potential: ΔΦ equals the mover's cost change.
                    assert!(
                        ((new_phi - phi) - (new_cost - old_cost)).abs() < 1e-9,
                        "potential is not exact"
                    );
                    assert!(new_phi < phi);
                    phi = new_phi;
                    moved = true;
                    break;
                }
            }
            if !moved {
                break;
            }
        }
        assert!(g.is_pure_nash(&profile));
    }

    #[test]
    fn dynamics_always_converge() {
        let g = three_player_game();
        for start in [vec![0, 0, 0], vec![1, 1, 1], vec![2, 2, 2], vec![0, 1, 2]] {
            let (profile, _steps) = g.converge(start);
            assert!(g.is_pure_nash(&profile));
        }
    }

    #[test]
    fn occupancies_and_costs_are_consistent() {
        let g = three_player_game();
        let profile = vec![0, 0, 2];
        assert_eq!(g.occupancies(&profile), vec![2, 0, 1]);
        assert_eq!(g.player_cost(&profile, 0), 3.0);
        assert_eq!(g.player_cost(&profile, 2), 2.5);
    }

    #[test]
    fn identical_resources_balance_players() {
        let g = CongestionGame::new(4, vec![vec![1.0, 2.0, 3.0, 4.0]; 2]);
        let (profile, _) = g.converge(vec![0, 0, 0, 0]);
        let counts = g.occupancies(&profile);
        assert_eq!(counts, vec![2, 2]);
    }
}
