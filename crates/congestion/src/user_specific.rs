//! Weighted singleton congestion games with player-specific cost functions
//! (Milchtaich 1996) — the general class the paper's model is an instance of.

use serde::{Deserialize, Serialize};

use crate::cost::CostFunction;

/// A weighted congestion game on parallel resources where each player has its
/// own cost function per resource.
///
/// A pure strategy of player `i` is a single resource; its cost in a profile
/// is `cᵢʳ(load on r)` where the load includes the player's own weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSpecificGame {
    weights: Vec<f64>,
    /// `costs[i][r]`: cost function of player `i` on resource `r`.
    costs: Vec<Vec<CostFunction>>,
    resources: usize,
}

/// A profitable unilateral deviation in a [`UserSpecificGame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Improvement {
    /// The deviating player.
    pub player: usize,
    /// The resource the player moves to.
    pub to: usize,
    /// Cost before the move.
    pub old_cost: f64,
    /// Cost after the move.
    pub new_cost: f64,
}

impl UserSpecificGame {
    /// Builds a game; `costs` must be an `n × r` matrix of cost functions and
    /// weights must be positive.
    pub fn new(weights: Vec<f64>, costs: Vec<Vec<CostFunction>>) -> Self {
        assert!(weights.len() >= 2, "need at least two players");
        assert_eq!(weights.len(), costs.len(), "one cost row per player");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "weights must be positive"
        );
        let resources = costs[0].len();
        assert!(resources >= 2, "need at least two resources");
        assert!(
            costs.iter().all(|row| row.len() == resources),
            "ragged cost matrix"
        );
        UserSpecificGame {
            weights,
            costs,
            resources,
        }
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.weights.len()
    }

    /// Number of resources.
    pub fn resources(&self) -> usize {
        self.resources
    }

    /// Weight of player `player`.
    pub fn weight(&self, player: usize) -> f64 {
        self.weights[player]
    }

    /// All weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The cost function of `player` on `resource`.
    pub fn cost_function(&self, player: usize, resource: usize) -> &CostFunction {
        &self.costs[player][resource]
    }

    /// Total load on every resource under `profile`.
    pub fn loads(&self, profile: &[usize]) -> Vec<f64> {
        let mut loads = vec![0.0; self.resources];
        for (player, &r) in profile.iter().enumerate() {
            loads[r] += self.weights[player];
        }
        loads
    }

    /// Cost of `player` in `profile`.
    pub fn player_cost(&self, profile: &[usize], player: usize) -> f64 {
        let loads = self.loads(profile);
        self.costs[player][profile[player]].cost(loads[profile[player]])
    }

    /// Cost `player` would pay after unilaterally moving to `resource`.
    pub fn cost_after_move(&self, profile: &[usize], player: usize, resource: usize) -> f64 {
        let mut load = self.weights[player];
        for (other, &r) in profile.iter().enumerate() {
            if other != player && r == resource {
                load += self.weights[other];
            }
        }
        self.costs[player][resource].cost(load)
    }

    /// The best improving deviation of `player`, if any.
    pub fn best_improvement(&self, profile: &[usize], player: usize) -> Option<Improvement> {
        let old_cost = self.player_cost(profile, player);
        let mut best: Option<Improvement> = None;
        for resource in 0..self.resources {
            if resource == profile[player] {
                continue;
            }
            let new_cost = self.cost_after_move(profile, player, resource);
            if new_cost < old_cost - 1e-12
                && best.as_ref().map(|b| new_cost < b.new_cost).unwrap_or(true)
            {
                best = Some(Improvement {
                    player,
                    to: resource,
                    old_cost,
                    new_cost,
                });
            }
        }
        best
    }

    /// Whether `profile` is a pure Nash equilibrium.
    pub fn is_pure_nash(&self, profile: &[usize]) -> bool {
        (0..self.players()).all(|p| self.best_improvement(profile, p).is_none())
    }

    /// Enumerates all pure Nash equilibria (the profile space must be small).
    pub fn all_pure_nash(&self) -> Vec<Vec<usize>> {
        let mut result = Vec::new();
        self.for_each_profile(|profile| {
            if self.is_pure_nash(profile) {
                result.push(profile.to_vec());
            }
        });
        result
    }

    /// Whether the game possesses at least one pure Nash equilibrium.
    pub fn has_pure_nash(&self) -> bool {
        let mut found = false;
        self.for_each_profile(|profile| {
            if !found && self.is_pure_nash(profile) {
                found = true;
            }
        });
        found
    }

    /// Runs best-response dynamics from `start` for at most `max_steps` moves;
    /// returns the final profile and whether it is an equilibrium.
    pub fn best_response_dynamics(
        &self,
        start: Vec<usize>,
        max_steps: usize,
    ) -> (Vec<usize>, bool, usize) {
        let mut profile = start;
        let mut steps = 0;
        while steps < max_steps {
            let mut moved = false;
            for player in 0..self.players() {
                if let Some(imp) = self.best_improvement(&profile, player) {
                    profile[player] = imp.to;
                    steps += 1;
                    moved = true;
                    break;
                }
            }
            if !moved {
                return (profile, true, steps);
            }
        }
        let is_ne = self.is_pure_nash(&profile);
        (profile, is_ne, steps)
    }

    /// Finds a best-response cycle by following best-response moves from
    /// `start` and recording visited profiles; returns the cycle if the walk
    /// revisits a profile before reaching an equilibrium.
    pub fn find_best_response_cycle(&self, start: Vec<usize>) -> Option<Vec<Vec<usize>>> {
        let mut profile = start;
        let mut visited: Vec<Vec<usize>> = Vec::new();
        loop {
            if let Some(pos) = visited.iter().position(|p| p == &profile) {
                return Some(visited[pos..].to_vec());
            }
            visited.push(profile.clone());
            let mut deviated = false;
            for player in 0..self.players() {
                if let Some(imp) = self.best_improvement(&profile, player) {
                    profile[player] = imp.to;
                    deviated = true;
                    break;
                }
            }
            if !deviated {
                return None;
            }
            if visited.len() > 10_000 {
                return None;
            }
        }
    }

    fn for_each_profile<F: FnMut(&[usize])>(&self, mut f: F) {
        let n = self.players();
        let r = self.resources;
        let mut profile = vec![0usize; n];
        loop {
            f(&profile);
            let mut pos = 0;
            loop {
                if pos == n {
                    return;
                }
                profile[pos] += 1;
                if profile[pos] < r {
                    break;
                }
                profile[pos] = 0;
                pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_game() -> UserSpecificGame {
        // Equivalent to a belief-induced game: linear load costs.
        UserSpecificGame::new(
            vec![1.0, 2.0],
            vec![
                vec![CostFunction::linear(10.0), CostFunction::linear(1.0)],
                vec![CostFunction::linear(1.0), CostFunction::linear(10.0)],
            ],
        )
    }

    #[test]
    fn costs_match_hand_computation() {
        let g = linear_game();
        // Both on resource 0: load 3.
        let profile = vec![0, 0];
        assert!((g.player_cost(&profile, 0) - 0.3).abs() < 1e-12);
        assert!((g.player_cost(&profile, 1) - 3.0).abs() < 1e-12);
        assert!((g.cost_after_move(&profile, 1, 1) - 0.2).abs() < 1e-12);
        assert_eq!(g.loads(&profile), vec![3.0, 0.0]);
    }

    #[test]
    fn nash_detection_and_enumeration() {
        let g = linear_game();
        assert!(g.is_pure_nash(&[0, 1]));
        assert!(!g.is_pure_nash(&[1, 0]));
        let all = g.all_pure_nash();
        assert_eq!(all, vec![vec![0, 1]]);
        assert!(g.has_pure_nash());
    }

    #[test]
    fn best_response_dynamics_converge_on_linear_games() {
        let g = linear_game();
        for start in [vec![0, 0], vec![1, 1], vec![1, 0]] {
            let (profile, converged, _steps) = g.best_response_dynamics(start, 100);
            assert!(converged);
            assert!(g.is_pure_nash(&profile));
        }
        assert!(g.find_best_response_cycle(vec![1, 0]).is_none());
    }

    #[test]
    fn improvement_reports_costs() {
        let g = linear_game();
        let imp = g
            .best_improvement(&[1, 0], 0)
            .expect("player 0 wants to move");
        assert_eq!(imp.to, 0);
        assert!(imp.new_cost < imp.old_cost);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_cost_matrix_is_rejected() {
        UserSpecificGame::new(
            vec![1.0, 1.0],
            vec![
                vec![CostFunction::linear(1.0), CostFunction::linear(1.0)],
                vec![CostFunction::linear(1.0)],
            ],
        );
    }

    #[test]
    fn step_cost_games_work_end_to_end() {
        // Player 0 hates sharing; player 1 is indifferent.
        let g = UserSpecificGame::new(
            vec![1.0, 1.0],
            vec![
                vec![
                    CostFunction::step(1.0, vec![(2.0, 10.0)]),
                    CostFunction::step(2.0, vec![(2.0, 10.0)]),
                ],
                vec![
                    CostFunction::step(1.0, vec![(2.0, 1.5)]),
                    CostFunction::step(1.0, vec![(2.0, 1.5)]),
                ],
            ],
        );
        // Sharing resource 0 costs player 0 a lot, so it should not be a NE.
        assert!(!g.is_pure_nash(&[0, 0]));
        assert!(g.has_pure_nash());
    }
}
