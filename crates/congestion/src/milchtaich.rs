//! The Milchtaich-style non-existence counterexample and the embedding of the
//! paper's belief-induced games into the user-specific class.
//!
//! Milchtaich (1996) showed that *weighted* singleton congestion games with
//! player-specific cost functions need not possess a pure Nash equilibrium,
//! exhibiting a three-player, three-resource counterexample. The paper under
//! reproduction observes that this counterexample does **not** carry over to
//! belief-induced games (whose cost functions are the linear `load / cᵢˡ`
//! shape): every three-user game of the paper's model has a pure equilibrium.
//!
//! This module provides:
//!
//! * [`counterexample`] — a concrete three-player, three-resource weighted
//!   user-specific game with **no** pure Nash equilibrium (found by randomised
//!   search over monotone step costs and fixed here as a constant instance);
//! * [`search_counterexample`] — the search routine itself, so further
//!   counterexamples can be generated deterministically from a seed;
//! * [`from_effective_game`] — the embedding of a belief-induced
//!   [`EffectiveGame`](netuncert_core::model::EffectiveGame) into
//!   [`UserSpecificGame`], witnessing that the paper's model is an instance of
//!   the user-specific class.

use netuncert_core::model::EffectiveGame;

use crate::cost::CostFunction;
use crate::user_specific::UserSpecificGame;

/// A fixed three-player, three-resource weighted user-specific game with no
/// pure Nash equilibrium.
///
/// Player weights are `(1, 2, 4)`; every cost function is a monotone step
/// function of the resource load. The instance was produced by
/// [`search_counterexample`] and is verified to have no pure equilibrium by
/// the crate's tests (all 27 profiles admit a profitable deviation).
pub fn counterexample() -> UserSpecificGame {
    let step = |values: &[(f64, f64)]| CostFunction::step(values[0].1, values.to_vec());
    UserSpecificGame::new(
        vec![1.0, 2.0, 4.0],
        vec![
            vec![
                step(&[(1.0, 1.778), (3.0, 1.875), (5.0, 4.408), (7.0, 5.894)]),
                step(&[(1.0, 2.220), (3.0, 3.671), (5.0, 5.949), (7.0, 8.088)]),
                step(&[(1.0, 0.103), (3.0, 1.045), (5.0, 3.675), (7.0, 6.333)]),
            ],
            vec![
                step(&[(2.0, 0.225), (3.0, 1.509), (6.0, 2.668), (7.0, 3.333)]),
                step(&[(2.0, 1.188), (3.0, 3.340), (6.0, 3.509), (7.0, 6.401)]),
                step(&[(2.0, 0.081), (3.0, 0.615), (6.0, 1.036), (7.0, 3.590)]),
            ],
            vec![
                step(&[(4.0, 1.844), (5.0, 4.398), (6.0, 6.859), (7.0, 8.113)]),
                step(&[(4.0, 1.623), (5.0, 2.447), (6.0, 5.098), (7.0, 5.302)]),
                step(&[(4.0, 1.316), (5.0, 1.348), (6.0, 4.238), (7.0, 7.023)]),
            ],
        ],
    )
}

/// A tiny deterministic pseudo-random generator (64-bit LCG), sufficient for
/// the counterexample search and free of external dependencies.
#[derive(Debug, Clone)]
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() % 1_000_000) as f64 / 1_000_000.0
    }
}

/// Searches for a weighted user-specific game with the given player weights
/// and `weights.len()` resources that possesses **no** pure Nash equilibrium.
///
/// Candidate games draw independent monotone step costs over the achievable
/// loads. Returns the first hit within `attempts` samples, or `None`.
/// The search is deterministic in `seed`.
pub fn search_counterexample(
    seed: u64,
    attempts: usize,
    weights: &[f64],
) -> Option<UserSpecificGame> {
    assert!(weights.len() >= 2, "need at least two players");
    let players = weights.len();
    let resources = players;
    let mut rng = Lcg::new(seed);

    // Achievable loads a player can observe on its own resource: sums of
    // subsets of the other players' weights plus its own weight.
    let player_loads: Vec<Vec<f64>> = (0..players)
        .map(|i| {
            let others: Vec<f64> = (0..players)
                .filter(|&j| j != i)
                .map(|j| weights[j])
                .collect();
            let mut sums = vec![weights[i]];
            for &w in &others {
                let mut extended: Vec<f64> = sums.iter().map(|s| s + w).collect();
                sums.append(&mut extended);
            }
            sums.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            sums.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            sums
        })
        .collect();

    for _ in 0..attempts {
        let mut costs = Vec::with_capacity(players);
        for loads in player_loads.iter().take(players) {
            let mut row = Vec::with_capacity(resources);
            for _ in 0..resources {
                let mut value = 0.0;
                let steps: Vec<(f64, f64)> = loads
                    .iter()
                    .map(|&l| {
                        value += rng.next_f64() * 3.0;
                        (l, value)
                    })
                    .collect();
                row.push(CostFunction::step(steps[0].1, steps));
            }
            costs.push(row);
        }
        let game = UserSpecificGame::new(weights.to_vec(), costs);
        if !game.has_pure_nash() {
            return Some(game);
        }
    }
    None
}

/// Embeds a belief-induced effective game into the user-specific class:
/// player `i`'s cost on resource `ℓ` is the linear function `load / cᵢˡ`.
///
/// The embedding is exact — loads, costs, improving deviations and pure Nash
/// equilibria coincide with those of the original game (with zero initial
/// traffic).
pub fn from_effective_game(game: &EffectiveGame) -> UserSpecificGame {
    let costs = (0..game.users())
        .map(|i| {
            (0..game.links())
                .map(|l| CostFunction::linear(game.capacity(i, l)))
                .collect()
        })
        .collect();
    UserSpecificGame::new(game.weights().to_vec(), costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counterexample_has_no_pure_nash() {
        let game = counterexample();
        assert_eq!(game.players(), 3);
        assert_eq!(game.resources(), 3);
        assert!(
            !game.has_pure_nash(),
            "the fixed counterexample must have no pure NE"
        );
        assert!(game.all_pure_nash().is_empty());
    }

    #[test]
    fn counterexample_best_response_dynamics_cycle_forever() {
        let game = counterexample();
        // From any starting profile the dynamics never converge and a
        // best-response cycle is reachable.
        for start in [vec![0, 0, 0], vec![1, 2, 0], vec![2, 2, 2]] {
            let (_, converged, steps) = game.best_response_dynamics(start.clone(), 1_000);
            assert!(!converged, "dynamics unexpectedly converged from {start:?}");
            assert_eq!(steps, 1_000);
            assert!(game.find_best_response_cycle(start).is_some());
        }
    }

    #[test]
    fn counterexample_costs_are_monotone() {
        let game = counterexample();
        let loads = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        for p in 0..3 {
            for r in 0..3 {
                assert!(game.cost_function(p, r).is_monotone_on(&loads));
            }
        }
    }

    #[test]
    fn search_is_deterministic_and_any_hit_is_a_valid_counterexample() {
        let first = search_counterexample(7, 100_000, &[1.0, 2.0, 4.0]);
        let second = search_counterexample(7, 100_000, &[1.0, 2.0, 4.0]);
        assert_eq!(
            first.is_some(),
            second.is_some(),
            "search must be repeatable"
        );
        if let (Some(a), Some(b)) = (first, second) {
            assert_eq!(a, b, "same seed must yield the same instance");
            assert!(!a.has_pure_nash());
        }
    }

    #[test]
    fn belief_induced_three_player_games_embed_and_keep_their_equilibria() {
        // A generic 3-user, 3-link effective game: the embedding must preserve
        // costs and pure Nash equilibria (and, per the paper, have at least one).
        let eg = EffectiveGame::from_rows(
            vec![1.0, 2.0, 4.0],
            vec![
                vec![2.0, 1.0, 3.0],
                vec![1.0, 2.0, 0.5],
                vec![3.0, 1.0, 1.0],
            ],
        )
        .unwrap();
        let usg = from_effective_game(&eg);
        assert_eq!(usg.players(), 3);

        use netuncert_core::prelude::*;
        let t = LinkLoads::zero(3);
        let tol = Tolerance::default();
        let core_nash = all_pure_nash(&eg, &t, tol, 100_000).unwrap();
        assert!(
            !core_nash.is_empty(),
            "paper: 3-user belief games always have a pure NE"
        );
        let embedded_nash = usg.all_pure_nash();
        let embedded_as_vecs: Vec<Vec<usize>> =
            core_nash.iter().map(|p| p.choices().to_vec()).collect();
        assert_eq!(embedded_nash, embedded_as_vecs);

        // Spot-check that costs agree on a profile.
        let profile = vec![0usize, 1, 2];
        let pure = PureProfile::new(profile.clone());
        for user in 0..3 {
            let a = usg.player_cost(&profile, user);
            let b = pure_user_latency(&eg, &pure, &t, user);
            assert!((a - b).abs() < 1e-12);
        }
    }
}
