//! Property-based tests for the equilibrium machinery and the paper's
//! algorithms: every solver must return verified Nash equilibria on arbitrary
//! instances satisfying its precondition, and the closed-form fully mixed
//! equilibrium must verify whenever it is feasible.

use proptest::prelude::*;

use netuncert_core::algorithms::best_response::BestResponseDynamics;
use netuncert_core::algorithms::{solve_pure_nash, symmetric, two_links, uniform};
use netuncert_core::equilibrium::{
    best_response, is_fully_mixed_nash, is_mixed_nash, is_pure_nash, profitable_deviations,
};
use netuncert_core::fully_mixed::{fully_mixed_candidate, fully_mixed_latency, fully_mixed_nash};
use netuncert_core::game_graph::{decode, encode};
use netuncert_core::model::EffectiveGame;
use netuncert_core::numeric::{stable_sum, Tolerance};
use netuncert_core::solvers::exhaustive::{all_pure_nash, profile_count};
use netuncert_core::strategy::{LinkLoads, MixedProfile, PureProfile};

fn weight() -> impl Strategy<Value = f64> {
    0.1f64..5.0
}

fn capacity() -> impl Strategy<Value = f64> {
    0.2f64..5.0
}

fn general_game(
    users: impl Strategy<Value = usize>,
    links: impl Strategy<Value = usize>,
) -> impl Strategy<Value = EffectiveGame> {
    (users, links).prop_flat_map(|(n, m)| {
        let weights = proptest::collection::vec(weight(), n);
        let rows = proptest::collection::vec(proptest::collection::vec(capacity(), m), n);
        (weights, rows).prop_map(|(w, rows)| EffectiveGame::from_rows(w, rows).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Atwolinks` always returns a pure Nash equilibrium (with or without
    /// initial traffic).
    #[test]
    fn two_links_always_returns_a_nash_equilibrium(
        game in general_game(2usize..=7, Just(2)),
        t0 in 0.0f64..3.0,
        t1 in 0.0f64..3.0,
    ) {
        let tol = Tolerance::default();
        let initial = LinkLoads::new(vec![t0, t1]).unwrap();
        let profile = two_links::solve(&game, &initial).unwrap();
        prop_assert!(is_pure_nash(&game, &profile, &initial, tol));
    }

    /// `Asymmetric` always returns a pure Nash equilibrium for identical weights.
    #[test]
    fn symmetric_always_returns_a_nash_equilibrium(
        (w, game) in (0.5f64..3.0, 2usize..=6, 2usize..=4).prop_flat_map(|(w, n, m)| {
            let rows = proptest::collection::vec(proptest::collection::vec(capacity(), m), n);
            (Just(w), rows.prop_map(move |rows| {
                EffectiveGame::from_rows(vec![w; rows.len()], rows).expect("valid")
            }))
        })
    ) {
        let _ = w;
        let tol = Tolerance::default();
        let profile = symmetric::solve(&game, tol).unwrap();
        prop_assert!(is_pure_nash(&game, &profile, &LinkLoads::zero(game.links()), tol));
    }

    /// `Auniform` always returns a pure Nash equilibrium under uniform beliefs.
    #[test]
    fn uniform_always_returns_a_nash_equilibrium(
        game in (2usize..=7, 2usize..=4).prop_flat_map(|(n, m)| {
            let weights = proptest::collection::vec(weight(), n);
            let caps = proptest::collection::vec(capacity(), n);
            (weights, caps).prop_map(move |(w, c)| {
                let rows = c.into_iter().map(|ci| vec![ci; m]).collect();
                EffectiveGame::from_rows(w, rows).expect("valid")
            })
        }),
    ) {
        let tol = Tolerance::default();
        let initial = LinkLoads::zero(game.links());
        let profile = uniform::solve(&game, &initial, tol).unwrap();
        prop_assert!(is_pure_nash(&game, &profile, &initial, tol));
    }

    /// Best-response dynamics converge on random general instances
    /// (the empirical content of Conjecture 3.7).
    #[test]
    fn best_response_dynamics_converge(game in general_game(2usize..=6, 2usize..=4)) {
        let tol = Tolerance::default();
        let initial = LinkLoads::zero(game.links());
        let outcome = BestResponseDynamics::default().run_from_greedy(&game, &initial, tol);
        prop_assert!(outcome.converged());
        prop_assert!(is_pure_nash(&game, outcome.profile(), &initial, tol));
    }

    /// The dispatcher finds an equilibrium on every random instance and the
    /// result agrees with the equilibrium predicate.
    #[test]
    fn dispatcher_always_finds_an_equilibrium(game in general_game(2usize..=5, 2usize..=4)) {
        let tol = Tolerance::default();
        let initial = LinkLoads::zero(game.links());
        let sol = solve_pure_nash(&game, &initial, tol).unwrap();
        prop_assert!(sol.is_some());
        prop_assert!(is_pure_nash(&game, &sol.unwrap().profile, &initial, tol));
    }

    /// A profile is a pure Nash equilibrium iff it admits no profitable
    /// deviation; and the best response of each user never increases latency.
    #[test]
    fn nash_predicate_matches_deviation_enumeration(
        game in general_game(2usize..=5, 2usize..=3),
        seed in 0usize..1000,
    ) {
        let tol = Tolerance::default();
        let n = game.users();
        let m = game.links();
        let initial = LinkLoads::zero(m);
        let profile = PureProfile::new((0..n).map(|i| (seed * 13 + i * 5) % m).collect());
        let deviations = profitable_deviations(&game, &profile, &initial, tol);
        prop_assert_eq!(is_pure_nash(&game, &profile, &initial, tol), deviations.is_empty());
        for user in 0..n {
            let (_, best) = best_response(&game, &profile, &initial, user, tol);
            let current = netuncert_core::latency::pure_user_latency(&game, &profile, &initial, user);
            prop_assert!(best <= current + 1e-9);
        }
    }

    /// Every equilibrium found by exhaustive enumeration verifies, and every
    /// solver output is contained in the exhaustive set.
    #[test]
    fn exhaustive_enumeration_is_sound_and_complete(game in general_game(2usize..=4, Just(2))) {
        let tol = Tolerance::default();
        let initial = LinkLoads::zero(2);
        let all = all_pure_nash(&game, &initial, tol, 1_000_000).unwrap();
        for ne in &all {
            prop_assert!(is_pure_nash(&game, ne, &initial, tol));
        }
        let solved = two_links::solve(&game, &initial).unwrap();
        prop_assert!(all.contains(&solved));
    }

    /// The fully mixed candidate's rows always sum to one; when feasible it is
    /// a fully mixed Nash equilibrium whose latencies match Lemma 4.1.
    #[test]
    fn fully_mixed_candidate_invariants(game in general_game(2usize..=6, 2usize..=4)) {
        let tol = Tolerance::default();
        let candidate = fully_mixed_candidate(&game);
        for user in 0..game.users() {
            prop_assert!((stable_sum(candidate.row(user)) - 1.0).abs() < 1e-7);
        }
        if let Some(fmne) = fully_mixed_nash(&game, tol) {
            prop_assert!(is_fully_mixed_nash(&game, &fmne, tol));
            for user in 0..game.users() {
                let expected = fully_mixed_latency(&game, user);
                let (_, observed) = netuncert_core::latency::mixed_min_latency(&game, &fmne, user);
                prop_assert!((expected - observed).abs() < 1e-6 * expected.max(1.0));
            }
        }
    }

    /// Uniform user beliefs force the fully mixed equilibrium to be exactly
    /// uniform (Theorem 4.8), regardless of the weights.
    #[test]
    fn uniform_beliefs_fmne_is_one_over_m(
        game in (2usize..=6, 2usize..=4).prop_flat_map(|(n, m)| {
            let weights = proptest::collection::vec(weight(), n);
            let caps = proptest::collection::vec(capacity(), n);
            (weights, caps).prop_map(move |(w, c)| {
                let rows = c.into_iter().map(|ci| vec![ci; m]).collect();
                EffectiveGame::from_rows(w, rows).expect("valid")
            })
        }),
    ) {
        let tol = Tolerance::default();
        let m = game.links();
        let fmne = fully_mixed_nash(&game, tol).expect("Theorem 4.8: FMNE exists");
        for user in 0..game.users() {
            for link in 0..m {
                prop_assert!((fmne.prob(user, link) - 1.0 / m as f64).abs() < 1e-9);
            }
        }
    }

    /// Pure equilibria, viewed as degenerate mixed profiles, satisfy the mixed
    /// Nash predicate too.
    #[test]
    fn pure_equilibria_are_mixed_equilibria(game in general_game(2usize..=4, Just(2))) {
        let tol = Tolerance::default();
        let initial = LinkLoads::zero(2);
        for ne in all_pure_nash(&game, &initial, tol, 1_000_000).unwrap() {
            let mixed = MixedProfile::from_pure(&ne, 2);
            prop_assert!(is_mixed_nash(&game, &mixed, tol));
        }
    }

    /// Profile encode/decode round-trips for every code below `mⁿ`.
    #[test]
    fn encode_decode_round_trip(n in 1usize..=5, m in 2usize..=4, raw in any::<u32>()) {
        let total = profile_count(n, m) as usize;
        let code = raw as usize % total;
        let profile = decode(code, n, m);
        prop_assert_eq!(encode(&profile, m), code);
        prop_assert_eq!(profile.users(), n);
        prop_assert!(profile.choices().iter().all(|&l| l < m));
    }
}
