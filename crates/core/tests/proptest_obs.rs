//! Property-based and concurrency tests for the observability layer.
//!
//! The histogram contract under test: `record`/`merge`/`percentile` must
//! agree with a sorted-vector oracle up to bucket resolution — a reported
//! percentile is the upper bound of the log2 bucket that contains the
//! nearest-rank order statistic, so it lands in the *same* bucket as the
//! oracle value and never undershoots it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use netuncert_core::obs::{bucket_ceil, bucket_index, Histogram, Registry};

/// Nearest-rank percentile on a sorted slice (the oracle).
fn oracle_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Strategy: observation sets that exercise small values, bucket
/// boundaries, and the full u64 range.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    let value = prop_oneof![
        0u64..16,
        1u64..100_000,
        any::<u64>(),
        // Exact powers of two sit on bucket boundaries.
        (0u32..64).prop_map(|shift| 1u64 << shift),
    ];
    proptest::collection::vec(value, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every percentile agrees with the sorted-vector oracle at bucket
    /// resolution: same bucket, reported as that bucket's upper bound.
    #[test]
    fn percentiles_agree_with_sorted_oracle(values in observations(), p in 0.0f64..=100.0) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let truth = oracle_percentile(&sorted, p);
        let reported = hist.percentile(p);
        prop_assert_eq!(bucket_index(reported), bucket_index(truth));
        prop_assert_eq!(reported, bucket_ceil(bucket_index(truth)));
        prop_assert!(reported >= truth);
    }

    /// count/sum are exact and p50 <= p90 <= p99 <= max always holds.
    #[test]
    fn snapshot_invariants(values in observations()) {
        let hist = Histogram::new();
        let mut sum = 0u64;
        for &v in &values {
            hist.record(v);
            sum = sum.wrapping_add(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, sum);
        prop_assert!(snap.p50 <= snap.p90);
        prop_assert!(snap.p90 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, snap.count);
    }

    /// Merging two histograms is indistinguishable from recording the
    /// union of their observations into one.
    #[test]
    fn merge_equals_union(left in observations(), right in observations()) {
        let (a, b, union) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &left {
            a.record(v);
            union.record(v);
        }
        for &v in &right {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.snapshot(), union.snapshot());
        // The merge source is left untouched.
        prop_assert_eq!(b.count(), right.len() as u64);
    }
}

/// Concurrent `record` calls from many threads are never lost and never
/// tear: the final count, sum and bucket totals are exact, and every
/// mid-flight snapshot is internally consistent (bucket totals equal the
/// snapshot count, percentiles monotone) — the same single-consistent-cut
/// discipline the serve-layer counter race test pins.
#[test]
fn concurrent_records_are_exact_and_snapshots_consistent() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let hist = Arc::new(Histogram::new());
    let registry = Arc::new(Registry::new());
    let done = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Handles resolved through the registry must alias the
                // same instrument from every thread.
                let shared = registry.histogram("race.shared");
                for i in 0..PER_THREAD {
                    let value = t * PER_THREAD + i;
                    hist.record(value);
                    shared.record(value % 1024);
                }
            })
        })
        .collect();

    // Reader thread: hammer snapshots while writers are racing.
    let observer = {
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = hist.snapshot();
                let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
                assert_eq!(bucket_total, snap.count, "torn snapshot");
                assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
                snapshots += 1;
            }
            snapshots
        })
    };

    for worker in workers {
        worker.join().expect("writer thread");
    }
    done.store(true, Ordering::Relaxed);
    let snapshots = observer.join().expect("observer thread");
    assert!(snapshots > 0, "observer never ran");

    let total = THREADS * PER_THREAD;
    assert_eq!(hist.count(), total);
    // Sum of 0..total recorded exactly once each.
    assert_eq!(hist.sum(), total * (total - 1) / 2);
    assert_eq!(registry.histogram("race.shared").count(), total);
}
