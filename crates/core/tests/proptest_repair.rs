//! Property-based tests for the repair contract: carrying a certified
//! equilibrium across a [`GameEdit`] with [`SolverEngine::repair`] must
//! land on a profile the canonical checker certifies on the *edited* game,
//! with a social cost that is independent of how the edited game was
//! reconstructed, and the whole chain must be bit-identical regardless of
//! the engine's configured parallelism (repair never consults the pool,
//! and the fallback's batch machinery reassembles by task id).

use proptest::prelude::*;

use netuncert_core::equilibrium::is_pure_nash;
use netuncert_core::model::{EffectiveGame, GameEdit};
use netuncert_core::numeric::Tolerance;
use netuncert_core::social_cost::pure_sc1;
use netuncert_core::solvers::{SolverEngine, SolverKind};
use netuncert_core::strategy::LinkLoads;
use par_exec::ParallelConfig;

fn weight() -> impl Strategy<Value = f64> {
    0.1f64..5.0
}

fn capacity() -> impl Strategy<Value = f64> {
    0.2f64..5.0
}

fn general_game(
    users: impl Strategy<Value = usize>,
    links: impl Strategy<Value = usize>,
) -> impl Strategy<Value = EffectiveGame> {
    (users, links).prop_flat_map(|(n, m)| {
        let weights = proptest::collection::vec(weight(), n);
        let rows = proptest::collection::vec(proptest::collection::vec(capacity(), m), n);
        (weights, rows).prop_map(|(w, rows)| EffectiveGame::from_rows(w, rows).expect("valid"))
    })
}

/// A raw churn event: selectors are reduced modulo the *current* game shape
/// at application time, so one generated sequence stays structurally valid
/// however joins and leaves reshape the instance along the way.
#[derive(Debug, Clone)]
struct RawEdit {
    kind: u8,
    user: usize,
    link: usize,
    value: f64,
    row: Vec<f64>,
}

fn raw_edit() -> impl Strategy<Value = RawEdit> {
    (
        0u8..3,
        any::<usize>(),
        any::<usize>(),
        capacity(),
        proptest::collection::vec(capacity(), 4),
    )
        .prop_map(|(kind, user, link, value, row)| RawEdit {
            kind,
            user,
            link,
            value,
            row,
        })
}

/// Grounds a raw event against the current game. A leave on a 2-user game
/// would be illegal (games need at least two users), so it degrades to a
/// capacity change — the same policy seeded churn streams use.
fn materialize(game: &EffectiveGame, raw: &RawEdit) -> GameEdit {
    let n = game.users();
    let m = game.links();
    match raw.kind {
        0 => GameEdit::UserJoins {
            weight: raw.value,
            capacities: raw.row[..m].to_vec(),
        },
        1 if n >= 3 => GameEdit::UserLeaves { user: raw.user % n },
        _ => GameEdit::CapacityChange {
            user: raw.user % n,
            link: raw.link % m,
            capacity: raw.value,
        },
    }
}

fn repair_engine(threads: usize) -> SolverEngine {
    SolverEngine::from_kinds(
        Default::default(),
        &[SolverKind::LocalSearch, SolverKind::Exhaustive],
    )
    .with_parallelism(ParallelConfig::new(threads))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The repair contract, end to end: starting from a certified
    /// equilibrium and streaming bounded random edits,
    ///
    /// 1. every repaired profile passes [`is_pure_nash`] on the edited
    ///    game (certification, not bit parity with any cold answer);
    /// 2. its social cost is identical whether measured on the repair
    ///    outcome's game or on an independently re-applied edit;
    /// 3. a from-scratch solve of the same edited game also certifies —
    ///    repair never keeps a session alive that a cold path would lose;
    /// 4. the whole repaired chain is bit-identical across engines
    ///    configured with 1, 3, and 8 worker threads.
    #[test]
    fn repair_certifies_and_is_thread_invariant(
        // Sizes stay within the exhaustive budget even if every edit is a
        // join (6 + 3 users on 4 links is 4^9 profiles), so the conclusive
        // backend is always applicable and `solution` is always `Some`.
        game in general_game(3usize..=6, 2usize..=4),
        raws in proptest::collection::vec(raw_edit(), 1..=3),
    ) {
        let tol = Tolerance::default();
        let initial = LinkLoads::zero(game.links());
        let engines: Vec<SolverEngine> = [1, 3, 8].into_iter().map(repair_engine).collect();

        let base = engines[0]
            .solve(&game, &initial)
            .expect("portfolio with Exhaustive never errors")
            .solution
            .expect("Exhaustive is conclusive on tiny games");
        prop_assert!(is_pure_nash(&game, &base.profile, &initial, tol));

        // One chain per engine, all seeded identically; the lanes must
        // never diverge.
        let mut chains: Vec<_> = engines
            .iter()
            .map(|_| (game.clone(), base.profile.clone()))
            .collect();
        for raw in &raws {
            let edit = materialize(&chains[0].0, raw);
            let mut lane_profiles = Vec::new();
            for (engine, (lane_game, lane_profile)) in engines.iter().zip(chains.iter_mut()) {
                let outcome = engine
                    .repair(lane_game, &initial, lane_profile, &edit)
                    .expect("materialized edits are structurally valid");
                let repaired = outcome
                    .solution
                    .solution
                    .expect("the cold fallback ends at Exhaustive, which is conclusive");
                let initial = LinkLoads::zero(outcome.game.links());
                // (1) certified on the edited game.
                prop_assert!(is_pure_nash(&outcome.game, &repaired.profile, &initial, tol));
                // (2) the social cost does not depend on which copy of the
                // edited game measures it.
                let independent = lane_game.apply_edit(&edit).expect("same edit, same game");
                let sc_outcome = pure_sc1(&outcome.game, &repaired.profile, &initial);
                let sc_independent = pure_sc1(&independent, &repaired.profile, &initial);
                prop_assert_eq!(sc_outcome.to_bits(), sc_independent.to_bits());
                // (3) from-scratch certification succeeds on the same game.
                let cold = engine
                    .solve(&outcome.game, &initial)
                    .expect("portfolio with Exhaustive never errors")
                    .solution
                    .expect("Exhaustive is conclusive on tiny games");
                prop_assert!(is_pure_nash(&outcome.game, &cold.profile, &initial, tol));
                *lane_game = outcome.game;
                *lane_profile = repaired.profile;
                lane_profiles.push(lane_profile.clone());
            }
            // (4) parallelism changed nothing, bit for bit.
            prop_assert_eq!(lane_profiles[0].choices(), lane_profiles[1].choices());
            prop_assert_eq!(lane_profiles[0].choices(), lane_profiles[2].choices());
        }
    }

    /// Structurally invalid edits are rejected without disturbing the
    /// carried state: the same engine repairs cleanly afterwards.
    #[test]
    fn invalid_edits_error_and_leave_state_usable(
        game in general_game(3usize..=5, 2usize..=3),
    ) {
        let tol = Tolerance::default();
        let initial = LinkLoads::zero(game.links());
        let engine = repair_engine(1);
        let base = engine
            .solve(&game, &initial)
            .expect("portfolio with Exhaustive never errors")
            .solution
            .expect("Exhaustive is conclusive on tiny games");

        let bad = [
            GameEdit::UserLeaves { user: game.users() },
            GameEdit::CapacityChange { user: 0, link: game.links(), capacity: 1.0 },
            GameEdit::CapacityChange { user: 0, link: 0, capacity: -1.0 },
            GameEdit::UserJoins { weight: 1.0, capacities: vec![1.0; game.links() + 1] },
        ];
        for edit in &bad {
            prop_assert!(engine.repair(&game, &initial, &base.profile, edit).is_err());
        }

        let good = GameEdit::CapacityChange { user: 0, link: 0, capacity: 1.5 };
        let outcome = engine
            .repair(&game, &initial, &base.profile, &good)
            .expect("a valid edit still repairs after rejected ones");
        let repaired = outcome.solution.solution.expect("conclusive portfolio");
        prop_assert!(is_pure_nash(&outcome.game, &repaired.profile, &initial, tol));
    }
}
