//! Property-based tests for the model layer: beliefs, effective capacities,
//! latencies and strategy profiles.

use proptest::prelude::*;

use netuncert_core::latency::{
    expected_pure_latency_full, mixed_link_latency, pure_user_latency, pure_user_latency_on_link,
};
use netuncert_core::model::{Belief, BeliefProfile, EffectiveGame, Game, StateSpace};
use netuncert_core::numeric::{stable_sum, Tolerance};
use netuncert_core::strategy::{LinkLoads, MixedProfile, PureProfile};

/// Strategy: a positive traffic value.
fn weight() -> impl Strategy<Value = f64> {
    0.1f64..5.0
}

/// Strategy: a positive capacity value.
fn capacity() -> impl Strategy<Value = f64> {
    0.2f64..5.0
}

/// Strategy: a full belief-model game with `n` users, `m` links, `s` states.
fn game_strategy() -> impl Strategy<Value = Game> {
    (2usize..=4, 2usize..=3, 1usize..=4).prop_flat_map(|(n, m, s)| {
        let weights = proptest::collection::vec(weight(), n);
        let states = proptest::collection::vec(proptest::collection::vec(capacity(), m), s);
        let beliefs = proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, s), n);
        (weights, states, beliefs).prop_map(|(w, rows, raw_beliefs)| {
            let space = StateSpace::from_rows(rows).expect("positive capacities");
            let beliefs = BeliefProfile::new(
                raw_beliefs
                    .into_iter()
                    .map(|b| Belief::from_weights(&b).expect("positive weights"))
                    .collect(),
            )
            .expect("consistent beliefs");
            Game::new(w, space, beliefs).expect("valid game")
        })
    })
}

/// Strategy: an effective game built directly from a random positive matrix.
fn effective_game_strategy() -> impl Strategy<Value = EffectiveGame> {
    (2usize..=5, 2usize..=4).prop_flat_map(|(n, m)| {
        let weights = proptest::collection::vec(weight(), n);
        let rows = proptest::collection::vec(proptest::collection::vec(capacity(), m), n);
        (weights, rows).prop_map(|(w, rows)| EffectiveGame::from_rows(w, rows).expect("valid"))
    })
}

/// Strategy: a mixed profile (rows normalised from positive raw weights).
fn mixed_strategy(n: usize, m: usize) -> impl Strategy<Value = MixedProfile> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, m), n).prop_map(|rows| {
        let rows = rows
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.into_iter().map(|p| p / total).collect::<Vec<_>>()
            })
            .collect();
        MixedProfile::from_rows(rows).expect("normalised rows")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The effective-capacity reduction is exact: for every user and profile,
    /// the expectation over states equals the reduced-form latency.
    #[test]
    fn effective_reduction_is_exact(game in game_strategy(), seed in 0usize..100) {
        let eg = game.effective_game();
        let n = game.users();
        let m = game.links();
        let t = LinkLoads::zero(m);
        // A pseudo-random profile derived from the seed.
        let profile = PureProfile::new((0..n).map(|i| (seed + i * 7) % m).collect());
        for user in 0..n {
            let explicit = expected_pure_latency_full(&game, &profile, user);
            let reduced = pure_user_latency(&eg, &profile, &t, user);
            prop_assert!((explicit - reduced).abs() < 1e-9 * explicit.max(1.0));
        }
    }

    /// Effective capacities are bounded by the extreme state capacities: the
    /// belief-harmonic mean can never leave the interval spanned by the states.
    #[test]
    fn effective_capacity_is_between_state_extremes(game in game_strategy()) {
        for user in 0..game.users() {
            for link in 0..game.links() {
                let cap = game.effective_capacity(user, link);
                let min = game.states().iter().map(|s| s.capacity(link)).fold(f64::MAX, f64::min);
                let max = game.states().iter().map(|s| s.capacity(link)).fold(f64::MIN, f64::max);
                prop_assert!(cap >= min - 1e-9 && cap <= max + 1e-9,
                    "c[{user}][{link}] = {cap} outside [{min}, {max}]");
            }
        }
    }

    /// Beliefs constructed from positive weights are normalised distributions.
    #[test]
    fn beliefs_from_weights_are_normalised(raw in proptest::collection::vec(0.001f64..10.0, 1..8)) {
        let belief = Belief::from_weights(&raw).unwrap();
        let total: f64 = belief.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(belief.probs().iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    /// Total link load equals initial traffic plus total user traffic.
    #[test]
    fn link_loads_conserve_traffic(game in effective_game_strategy(), seed in 0usize..100) {
        let n = game.users();
        let m = game.links();
        let profile = PureProfile::new((0..n).map(|i| (seed + i * 3) % m).collect());
        let initial = LinkLoads::zero(m);
        let loads = profile.link_loads(&game, &initial);
        prop_assert!((stable_sum(&loads) - game.total_traffic()).abs() < 1e-9);
    }

    /// Moving to one's current link changes nothing: the hypothetical-move
    /// latency on the current link equals the actual latency.
    #[test]
    fn staying_put_is_a_fixed_point(game in effective_game_strategy(), seed in 0usize..100) {
        let n = game.users();
        let m = game.links();
        let profile = PureProfile::new((0..n).map(|i| (seed + i) % m).collect());
        let t = LinkLoads::zero(m);
        for user in 0..n {
            let stay = pure_user_latency_on_link(&game, &profile, &t, user, profile.link(user));
            let actual = pure_user_latency(&game, &profile, &t, user);
            prop_assert!((stay - actual).abs() < 1e-12);
        }
    }

    /// Expected link traffic of a mixed profile sums to the total traffic, and
    /// every latency is positive.
    #[test]
    fn mixed_profile_invariants(game in effective_game_strategy()) {
        let n = game.users();
        let m = game.links();
        // Derive a mixed profile from the game dimensions deterministically.
        let profile = MixedProfile::uniform(n, m);
        let traffic = profile.expected_traffic(&game);
        prop_assert!((stable_sum(&traffic) - game.total_traffic()).abs() < 1e-9);
        for user in 0..n {
            for link in 0..m {
                prop_assert!(mixed_link_latency(&game, &profile, user, link) > 0.0);
            }
        }
    }

    /// Increasing the probability a user puts on a link never decreases the
    /// expected traffic of that link.
    #[test]
    fn expected_traffic_is_monotone_in_probability(
        game in effective_game_strategy(),
        bump in 0.05f64..0.5,
    ) {
        let n = game.users();
        let m = game.links();
        let base = MixedProfile::uniform(n, m);
        // Shift `bump` of user 0's mass onto link 0.
        let mut rows: Vec<Vec<f64>> = (0..n).map(|u| base.row(u).to_vec()).collect();
        let taken = bump.min(rows[0][1] * 0.9);
        rows[0][0] += taken;
        rows[0][1] -= taken;
        let shifted = MixedProfile::from_rows(rows).unwrap();
        let before = base.expected_traffic(&game);
        let after = shifted.expected_traffic(&game);
        prop_assert!(after[0] >= before[0] - 1e-12);
        prop_assert!(after[1] <= before[1] + 1e-12);
    }

    /// `as_pure` inverts `from_pure` for every pure profile, and mixed rows
    /// built by normalisation always validate.
    #[test]
    fn pure_mixed_round_trip(n in 2usize..=5, m in 2usize..=4, seed in 0usize..1000) {
        let profile = PureProfile::new((0..n).map(|i| (seed * 31 + i * 17) % m).collect());
        let mixed = MixedProfile::from_pure(&profile, m);
        prop_assert_eq!(mixed.as_pure(Tolerance::default()), Some(profile));
    }

    /// Mixed profiles from the generator always validate against their game.
    #[test]
    fn generated_mixed_profiles_validate(
        (game, profile) in effective_game_strategy().prop_flat_map(|g| {
            let n = g.users();
            let m = g.links();
            (Just(g), mixed_strategy(n, m))
        })
    ) {
        prop_assert!(profile.validate(&game).is_ok());
        prop_assert!(profile.is_fully_mixed(Tolerance::default()));
    }

    /// The KP special case: point-mass beliefs on a common state make every
    /// user's effective capacities equal to that state's capacities.
    #[test]
    fn point_mass_beliefs_recover_the_state(
        weights in proptest::collection::vec(weight(), 2..5),
        caps in proptest::collection::vec(capacity(), 2..4),
    ) {
        let game = Game::complete_information(weights, caps.clone()).unwrap();
        let eg = game.effective_game();
        for user in 0..eg.users() {
            for (link, &c) in caps.iter().enumerate() {
                prop_assert!((eg.capacity(user, link) - c).abs() < 1e-12);
            }
        }
        prop_assert!(eg.is_kp_instance(Tolerance::default()));
    }

    /// Profile validation catches out-of-range links and wrong arities.
    #[test]
    fn profile_validation_rejects_bad_profiles(game in effective_game_strategy()) {
        let n = game.users();
        let m = game.links();
        let too_short = PureProfile::new(vec![0; n - 1]);
        prop_assert!(too_short.validate(&game).is_err());
        let out_of_range = PureProfile::new(vec![m; n]);
        prop_assert!(out_of_range.validate(&game).is_err());
        let fine = PureProfile::new(vec![m - 1; n]);
        prop_assert!(fine.validate(&game).is_ok());
    }
}
