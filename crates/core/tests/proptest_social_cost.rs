//! Property-based tests for social costs, social optima, the coordination
//! ratio and the worst-case role of the fully mixed equilibrium.

use proptest::prelude::*;

use netuncert_core::fully_mixed::fully_mixed_nash;
use netuncert_core::latency::mixed_min_latencies;
use netuncert_core::model::EffectiveGame;
use netuncert_core::numeric::Tolerance;
use netuncert_core::social_cost::{
    cr_bound_general, cr_bound_uniform_beliefs, measure, pure_sc1, pure_sc2, sc1, sc2,
};
use netuncert_core::solvers::exhaustive::{all_pure_nash, social_optimum};
use netuncert_core::strategy::{LinkLoads, MixedProfile};

fn weight() -> impl Strategy<Value = f64> {
    0.25f64..3.0
}

fn capacity() -> impl Strategy<Value = f64> {
    0.5f64..3.0
}

fn general_game(max_users: usize, max_links: usize) -> impl Strategy<Value = EffectiveGame> {
    (2usize..=max_users, 2usize..=max_links).prop_flat_map(|(n, m)| {
        let weights = proptest::collection::vec(weight(), n);
        let rows = proptest::collection::vec(proptest::collection::vec(capacity(), m), n);
        (weights, rows).prop_map(|(w, rows)| EffectiveGame::from_rows(w, rows).expect("valid"))
    })
}

fn uniform_beliefs_game(
    max_users: usize,
    max_links: usize,
) -> impl Strategy<Value = EffectiveGame> {
    (2usize..=max_users, 2usize..=max_links).prop_flat_map(|(n, m)| {
        let weights = proptest::collection::vec(weight(), n);
        let caps = proptest::collection::vec(capacity(), n);
        (weights, caps).prop_map(move |(w, c)| {
            let rows = c.into_iter().map(|ci| vec![ci; m]).collect();
            EffectiveGame::from_rows(w, rows).expect("valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Basic sandwich relations: SC2 ≤ SC1 ≤ n·SC2, for mixed and pure costs.
    #[test]
    fn social_cost_sandwich(game in general_game(5, 4)) {
        let n = game.users() as f64;
        let uniform = MixedProfile::uniform(game.users(), game.links());
        let s1 = sc1(&game, &uniform);
        let s2 = sc2(&game, &uniform);
        prop_assert!(s2 <= s1 + 1e-9);
        prop_assert!(s1 <= n * s2 + 1e-9);

        let t = LinkLoads::zero(game.links());
        let pure = netuncert_core::strategy::PureProfile::all_on(game.users(), 0);
        prop_assert!(pure_sc2(&game, &pure, &t) <= pure_sc1(&game, &pure, &t) + 1e-9);
    }

    /// The social optimum is a lower bound on the cost of every pure profile,
    /// and the optimum profiles attain their reported values.
    #[test]
    fn optimum_is_a_lower_bound(game in general_game(4, 3), seed in 0usize..500) {
        let t = LinkLoads::zero(game.links());
        let opt = social_optimum(&game, &t, 1_000_000).unwrap();
        let n = game.users();
        let m = game.links();
        let profile = netuncert_core::strategy::PureProfile::new(
            (0..n).map(|i| (seed * 7 + i * 3) % m).collect());
        prop_assert!(opt.opt1 <= pure_sc1(&game, &profile, &t) + 1e-9);
        prop_assert!(opt.opt2 <= pure_sc2(&game, &profile, &t) + 1e-9);
        prop_assert!((pure_sc1(&game, &opt.opt1_profile, &t) - opt.opt1).abs() < 1e-9);
        prop_assert!((pure_sc2(&game, &opt.opt2_profile, &t) - opt.opt2).abs() < 1e-9);
    }

    /// Every Nash equilibrium respects the Theorem 4.14 bound; uniform-belief
    /// games additionally respect the Theorem 4.13 bound, and both ratios are
    /// at least one for pure equilibria.
    #[test]
    fn coordination_ratio_bounds_hold(game in general_game(4, 3)) {
        let tol = Tolerance::default();
        let t = LinkLoads::zero(game.links());
        let bound = cr_bound_general(&game);
        for ne in all_pure_nash(&game, &t, tol, 1_000_000).unwrap() {
            let mixed = MixedProfile::from_pure(&ne, game.links());
            let report = measure(&game, &mixed, &t, 1_000_000).unwrap();
            prop_assert!(report.cr1 >= 1.0 - 1e-9);
            prop_assert!(report.cr2 >= 1.0 - 1e-9);
            prop_assert!(report.cr1 <= bound + 1e-6, "CR1 {} > bound {}", report.cr1, bound);
            prop_assert!(report.cr2 <= bound + 1e-6, "CR2 {} > bound {}", report.cr2, bound);
        }
        if let Some(fmne) = fully_mixed_nash(&game, tol) {
            let report = measure(&game, &fmne, &t, 1_000_000).unwrap();
            prop_assert!(report.cr1 <= bound + 1e-6);
            prop_assert!(report.cr2 <= bound + 1e-6);
        }
    }

    /// Theorem 4.13 bound for the uniform-beliefs model.
    #[test]
    fn uniform_beliefs_bound_holds(game in uniform_beliefs_game(4, 3)) {
        let tol = Tolerance::default();
        let t = LinkLoads::zero(game.links());
        let bound = cr_bound_uniform_beliefs(&game);
        for ne in all_pure_nash(&game, &t, tol, 1_000_000).unwrap() {
            let mixed = MixedProfile::from_pure(&ne, game.links());
            let report = measure(&game, &mixed, &t, 1_000_000).unwrap();
            prop_assert!(report.cr1 <= bound + 1e-6);
            prop_assert!(report.cr2 <= bound + 1e-6);
        }
        let fmne = fully_mixed_nash(&game, tol).expect("uniform beliefs: FMNE exists");
        let report = measure(&game, &fmne, &t, 1_000_000).unwrap();
        prop_assert!(report.cr1 <= bound + 1e-6);
        prop_assert!(report.cr2 <= bound + 1e-6);
    }

    /// Lemma 4.9 / Theorems 4.11–4.12: whenever the fully mixed equilibrium
    /// exists it weakly dominates every pure equilibrium user-by-user, hence
    /// in both social costs.
    #[test]
    fn fully_mixed_equilibrium_is_worst(game in general_game(4, 3)) {
        let tol = Tolerance::default();
        let loose = Tolerance::new(1e-7);
        let t = LinkLoads::zero(game.links());
        if let Some(fmne) = fully_mixed_nash(&game, tol) {
            let fmne_lat = mixed_min_latencies(&game, &fmne);
            let fmne_sc1 = sc1(&game, &fmne);
            let fmne_sc2 = sc2(&game, &fmne);
            for ne in all_pure_nash(&game, &t, tol, 1_000_000).unwrap() {
                let mixed = MixedProfile::from_pure(&ne, game.links());
                let lat = mixed_min_latencies(&game, &mixed);
                for user in 0..game.users() {
                    prop_assert!(loose.leq(lat[user], fmne_lat[user]),
                        "user {user}: pure {} > fmne {}", lat[user], fmne_lat[user]);
                }
                prop_assert!(loose.leq(sc1(&game, &mixed), fmne_sc1));
                prop_assert!(loose.leq(sc2(&game, &mixed), fmne_sc2));
            }
        }
    }

    /// The closed-form bounds are scale-free in the weights: multiplying all
    /// traffics by a constant leaves both bounds unchanged.
    #[test]
    fn bounds_do_not_depend_on_traffic_scale(game in general_game(4, 3), scale in 0.5f64..4.0) {
        let scaled = EffectiveGame::from_rows(
            game.weights().iter().map(|w| w * scale).collect(),
            (0..game.users()).map(|i| game.capacities().row(i).to_vec()).collect(),
        ).unwrap();
        prop_assert!((cr_bound_general(&game) - cr_bound_general(&scaled)).abs() < 1e-9);
        prop_assert!(
            (cr_bound_uniform_beliefs(&game) - cr_bound_uniform_beliefs(&scaled)).abs() < 1e-9
        );
    }
}
