//! Structured observability: counters, gauges, log2 histograms and spans.
//!
//! Everything in this module is std-only and allocation-free on the record
//! path. The design splits into three layers:
//!
//! * **Instruments** — [`Counter`], [`Gauge`] and [`Histogram`] are plain
//!   atomics; recording is lock-free and callers may clone their `Arc`
//!   handles freely across threads.
//! * **[`Registry`]** — a named, get-or-create directory of instruments.
//!   It is *global-but-injectable*: call [`Registry::global()`] for the
//!   process-wide default, or construct one per subsystem (the serve layer
//!   owns its own so in-process replays never pollute live metrics). The
//!   registry lock is taken only when resolving a name to a handle, never
//!   when recording.
//! * **[`Recorder`]** — the hot-loop façade. A disabled recorder is a
//!   `None` and every method is an inlined early return; building the crate
//!   with `--no-default-features` (dropping the `obs` feature) compiles the
//!   record path out entirely. Engine code is instrumented through a
//!   `Recorder`, so solving with the default disabled recorder costs one
//!   predictable branch per probe.
//!
//! [`Span`]s time a region with a monotonic [`Instant`] and record the
//! elapsed nanoseconds into a histogram on [`Span::finish`]. Parenthood is
//! an explicit handle passed by the caller — there is no thread-local
//! ambient context to corrupt under the serve layer's worker pool.
//!
//! Histograms use 65 fixed log2 buckets: bucket `i` holds every value whose
//! bit length is `i` (bucket 0 holds only zero). Percentile readout returns
//! the upper bound of the bucket containing the nearest-rank element, so a
//! reported percentile is always within 2x of the true order statistic and
//! lands in the *same* bucket (the property the proptest oracle pins).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`]: one per possible bit length
/// of a `u64` (1..=64) plus a dedicated zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value: its bit length (0 for zero).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Smallest value that lands in bucket `index`.
#[inline]
pub fn bucket_floor(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// Largest value that lands in bucket `index` (saturating at `u64::MAX`).
#[inline]
pub fn bucket_ceil(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter. Lock-free.
    #[inline]
    pub fn incr(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, busy workers, ...).
///
/// Gauges are unsigned; [`Gauge::sub`] saturates at zero rather than
/// wrapping, so a racy decrement can never report `u64::MAX - 1` items.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge by `by`. Lock-free.
    #[inline]
    pub fn add(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// Lowers the gauge by `by`, saturating at zero.
    #[inline]
    pub fn sub(&self, by: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(by))
            });
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 latency histogram with a lock-free record path.
///
/// `record` is three relaxed `fetch_add`s; there is no lock anywhere in the
/// type. Readout ([`Histogram::percentile`], [`Histogram::snapshot`]) copies
/// the bucket array once and computes from the copy, so a snapshot is
/// internally consistent even while writers are racing.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.load_buckets().iter().sum()
    }

    /// Sum of all recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every observation of `other` into `self`.
    ///
    /// Merging is bucket-wise addition, so a histogram merged from `k`
    /// shards reports exactly the percentiles of the union of their
    /// observations.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.load_buckets()) {
            if theirs != 0 {
                mine.fetch_add(theirs, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), reported as the upper
    /// bound of the bucket holding the rank-th smallest observation.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        Self::percentile_of(&self.load_buckets(), p)
    }

    /// One consistent copy of the bucket array.
    fn load_buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    fn percentile_of(buckets: &[u64; HISTOGRAM_BUCKETS], p: f64) -> u64 {
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(count);
        let mut seen = 0u64;
        for (index, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_ceil(index);
            }
        }
        bucket_ceil(HISTOGRAM_BUCKETS - 1)
    }

    /// A consistent point-in-time summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.load_buckets();
        let count: u64 = buckets.iter().sum();
        let max = buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n != 0)
            .map(|(i, _)| bucket_ceil(i))
            .unwrap_or(0);
        HistogramSnapshot {
            count,
            sum: self.sum(),
            p50: Self::percentile_of(&buckets, 50.0),
            p90: Self::percentile_of(&buckets, 90.0),
            p99: Self::percentile_of(&buckets, 99.0),
            max,
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
///
/// `count` and the percentiles are computed from a single copy of the
/// bucket array, so `p50 <= p90 <= p99 <= max` holds by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (wrapping).
    pub sum: u64,
    /// 50th-percentile bucket upper bound.
    pub p50: u64,
    /// 90th-percentile bucket upper bound.
    pub p90: u64,
    /// 99th-percentile bucket upper bound.
    pub p99: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// Identifier of a [`Span`], unique within its [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// A timed region. Created by [`Recorder::span`]; [`Span::finish`] records
/// the elapsed nanoseconds into the histogram `span.<name>`.
///
/// Parenthood is explicit: pass the parent span to
/// [`Recorder::child_span`]. There is no thread-local current-span stack,
/// so spans can be handed across worker threads safely.
#[derive(Debug)]
pub struct Span {
    id: SpanId,
    parent: Option<SpanId>,
    start: Option<Instant>,
    sink: Option<Arc<Histogram>>,
}

impl Span {
    /// This span's id (0 when the recorder is disabled).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The explicit parent handle, if one was given.
    pub fn parent(&self) -> Option<SpanId> {
        self.parent
    }

    /// Ends the span, recording elapsed nanoseconds into its histogram.
    /// Returns the elapsed time (0 when the recorder is disabled).
    pub fn finish(self) -> u64 {
        match (self.start, self.sink) {
            (Some(start), Some(sink)) => {
                let ns = elapsed_ns(start);
                sink.record(ns);
                ns
            }
            _ => 0,
        }
    }
}

/// Saturating elapsed nanoseconds since `start`.
#[inline]
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A named directory of instruments.
///
/// Handles are get-or-create and shared: two callers asking for counter
/// `"x"` receive the same `Arc`. The internal lock guards only name
/// resolution; recording through a handle never touches it.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    next_span: AtomicU64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide default registry.
    ///
    /// Subsystems that need isolation (the serve layer, replay harnesses)
    /// should construct their own instead of sharing this one.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs registry poisoned");
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&created));
        created
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs registry poisoned");
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&created));
        created
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs registry poisoned");
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&created));
        created
    }

    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    fn next_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// A consistent, name-sorted snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A name-sorted snapshot of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The hot-loop instrumentation façade: a registry handle that may be absent.
///
/// Every probe method starts with an inlined `None` check, so a disabled
/// recorder costs one predicted branch — and with the crate's `obs` feature
/// off, the probe bodies compile out entirely. Clock reads go through
/// [`Recorder::now`], which returns `None` when disabled so instrumented
/// loops skip the `Instant::now()` syscall too.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    registry: Option<Arc<Registry>>,
}

impl Recorder {
    /// A recorder that drops every probe. This is the default everywhere.
    pub fn disabled() -> Self {
        Self { registry: None }
    }

    /// A recorder writing into `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self {
            registry: Some(registry),
        }
    }

    /// Whether probes are live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The attached registry, if any.
    pub fn attached(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// `Instant::now()` when enabled; `None` (no clock read) when disabled.
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        #[cfg(feature = "obs")]
        {
            self.registry.as_ref().map(|_| Instant::now())
        }
        #[cfg(not(feature = "obs"))]
        {
            None
        }
    }

    /// Records elapsed nanoseconds since a [`Recorder::now`] timestamp into
    /// histogram `name`. A `None` start (disabled at probe time) is a no-op.
    #[inline]
    pub fn record_since(&self, name: &str, start: Option<Instant>) {
        #[cfg(feature = "obs")]
        if let (Some(registry), Some(start)) = (self.registry.as_ref(), start) {
            registry.histogram(name).record(elapsed_ns(start));
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, start);
        }
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn record(&self, name: &str, value: u64) {
        #[cfg(feature = "obs")]
        if let Some(registry) = self.registry.as_ref() {
            registry.histogram(name).record(value);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, value);
        }
    }

    /// Adds `by` to counter `name`.
    #[inline]
    pub fn incr(&self, name: &str, by: u64) {
        #[cfg(feature = "obs")]
        if let Some(registry) = self.registry.as_ref() {
            registry.counter(name).incr(by);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, by);
        }
    }

    /// Sets gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: u64) {
        #[cfg(feature = "obs")]
        if let Some(registry) = self.registry.as_ref() {
            registry.gauge(name).set(value);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, value);
        }
    }

    /// Resolves a histogram handle for hot paths that want to skip the
    /// name lookup per record. `None` when disabled.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        #[cfg(feature = "obs")]
        {
            self.registry.as_ref().map(|r| r.histogram(name))
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = name;
            None
        }
    }

    /// Resolves a counter handle for hot paths that want to skip the name
    /// lookup per increment. `None` when disabled.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        #[cfg(feature = "obs")]
        {
            self.registry.as_ref().map(|r| r.counter(name))
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = name;
            None
        }
    }

    /// Opens a root span; elapsed time is recorded into `span.<name>` on
    /// [`Span::finish`].
    pub fn span(&self, name: &str) -> Span {
        self.open_span(name, None)
    }

    /// Opens a span with an explicit parent handle.
    pub fn child_span(&self, name: &str, parent: &Span) -> Span {
        self.open_span(name, Some(parent.id()))
    }

    /// Opens a span under an optional parent id — for callers that thread
    /// parenthood through a context struct rather than a `&Span` borrow.
    pub fn span_under(&self, name: &str, parent: Option<SpanId>) -> Span {
        self.open_span(name, parent)
    }

    fn open_span(&self, name: &str, parent: Option<SpanId>) -> Span {
        #[cfg(feature = "obs")]
        if let Some(registry) = self.registry.as_ref() {
            return Span {
                id: registry.next_span_id(),
                parent,
                start: Some(Instant::now()),
                sink: Some(registry.histogram(&format!("span.{name}"))),
            };
        }
        let _ = name;
        Span {
            id: SpanId(0),
            parent,
            start: None,
            sink: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Zero has its own bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_ceil(0), 0);
        // Bucket i covers [2^(i-1), 2^i - 1].
        for i in 1..64 {
            let floor = 1u64 << (i - 1);
            let ceil = (1u64 << i) - 1;
            assert_eq!(bucket_index(floor), i, "floor of bucket {i}");
            assert_eq!(bucket_index(ceil), i, "ceil of bucket {i}");
            assert_eq!(bucket_floor(i), floor);
            assert_eq!(bucket_ceil(i), ceil);
            // The boundary neighbours land in the adjacent buckets.
            assert_eq!(bucket_index(floor - 1), i - 1);
            if ceil < u64::MAX {
                assert_eq!(bucket_index(ceil + 1), i + 1);
            }
        }
        // The top bucket saturates at u64::MAX.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_ceil(64), u64::MAX);
        assert_eq!(bucket_floor(64), 1u64 << 63);
    }

    #[test]
    fn histogram_counts_and_sums_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX / 2] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 6 + 1000 + u64::MAX / 2);
    }

    #[test]
    fn percentiles_are_monotone_and_bucket_accurate() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.percentile(50.0), h.percentile(90.0), h.percentile(99.0));
        assert!(p50 <= p90 && p90 <= p99, "{p50} <= {p90} <= {p99}");
        // Nearest-rank oracle: the 500th/900th/990th smallest of 1..=1000.
        assert_eq!(bucket_index(p50), bucket_index(500));
        assert_eq!(bucket_index(p90), bucket_index(900));
        assert_eq!(bucket_index(p99), bucket_index(990));
        // Reported value is the bucket upper bound: within 2x of the truth.
        assert!((500..1024).contains(&p50));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn merge_is_bucketwise_union() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 500, 900] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 1 + 5 + 9 + 2 + 500 + 900);
        // p99 now comes from b's tail.
        assert_eq!(bucket_index(a.percentile(99.0)), bucket_index(900));
    }

    #[test]
    fn gauge_sub_saturates_at_zero() {
        let g = Gauge::new();
        g.add(3);
        g.sub(5);
        assert_eq!(g.value(), 0);
        g.set(7);
        g.sub(2);
        assert_eq!(g.value(), 5);
    }

    #[test]
    fn registry_handles_are_shared_and_snapshot_is_sorted() {
        let registry = Registry::new();
        registry.counter("b.second").incr(2);
        registry.counter("a.first").incr(1);
        let again = registry.counter("b.second");
        again.incr(3);
        registry.gauge("depth").set(4);
        registry.histogram("lat").record(100);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".into(), 1), ("b.second".into(), 5)]
        );
        assert_eq!(snap.gauges, vec![("depth".into(), 4)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "lat");
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let recorder = Recorder::disabled();
        assert!(!recorder.enabled());
        assert!(recorder.now().is_none());
        recorder.record("x", 1);
        recorder.incr("y", 1);
        recorder.gauge_set("z", 1);
        let span = recorder.span("leaf");
        assert_eq!(span.id().value(), 0);
        assert_eq!(span.finish(), 0);
        assert!(recorder.histogram("x").is_none());
    }

    #[test]
    fn spans_record_into_named_histograms_with_explicit_parents() {
        let registry = Arc::new(Registry::new());
        let recorder = Recorder::new(Arc::clone(&registry));
        let root = recorder.span("request");
        let child = recorder.child_span("leaf", &root);
        assert_eq!(child.parent(), Some(root.id()));
        assert_ne!(child.id(), root.id());
        child.finish();
        root.finish();
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.histograms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["span.leaf", "span.request"]);
        assert!(snap.histograms.iter().all(|(_, h)| h.count == 1));
    }

    #[test]
    fn recorder_record_since_times_real_elapsed() {
        let registry = Arc::new(Registry::new());
        let recorder = Recorder::new(Arc::clone(&registry));
        let start = recorder.now();
        assert!(start.is_some());
        recorder.record_since("tick", start);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
