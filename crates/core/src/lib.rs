//! # netuncert-core
//!
//! A from-scratch implementation of the model and results of
//! *Network Uncertainty in Selfish Routing* (Georgiou, Pavlides, Philippou,
//! IPPS/IPDPS 2006).
//!
//! `n` selfish users route unsplittable traffic onto `m` parallel links whose
//! capacities are uncertain: each user holds a private probability
//! distribution (a *belief*) over the possible capacity vectors (*states*),
//! and evaluates the latency of a link in expectation over its own belief.
//! The result is a weighted congestion game with user-specific payoff
//! functions that subsumes the classical KP-model (point-mass beliefs).
//!
//! ## Crate layout
//!
//! * [`model`] — states, beliefs, the full game `G = (n, m, w, B)` and its
//!   reduction to the *effective game* `(w, cᵢˡ)`.
//! * [`strategy`] — pure and mixed strategy profiles, initial link traffic.
//! * [`latency`] — expected latency costs for pure and mixed profiles.
//! * [`equilibrium`] — Nash conditions, best responses, deviations.
//! * [`algorithms`] — the paper's polynomial-time pure-NE algorithms
//!   (`Atwolinks`, `Asymmetric`, `Auniform`) plus best-response dynamics and a
//!   dispatcher.
//! * [`fully_mixed`] — the closed-form fully mixed Nash equilibrium
//!   (Theorem 4.6) and its existence test.
//! * [`social_cost`] — social costs SC1/SC2, exact optima, coordination
//!   ratios, and the bounds of Theorems 4.13/4.14.
//! * [`solvers`] — exhaustive reference solvers for small games, plus the
//!   unified [`SolverEngine`](solvers::engine::SolverEngine).
//! * [`opt`] — the certified social-optimum bracketing engine
//!   ([`OptEngine`](opt::OptEngine)): exact, upper-bound and lower-bound
//!   backends merged into `OPT1`/`OPT2` brackets for games beyond the
//!   exhaustive wall.
//! * [`game_graph`] — explicit defection graphs, equilibrium sinks and cycle
//!   detection (used by the `n = 3` and potential-game analyses).
//! * [`potential`] — exact/ordinal potential analysis (Section 3.2).
//!
//! ## Quick example
//!
//! ```
//! use netuncert_core::prelude::*;
//!
//! // Two links whose capacities depend on an uncertain network state.
//! let states = StateSpace::from_rows(vec![
//!     vec![4.0, 1.0], // state 0: link 0 fast
//!     vec![1.0, 4.0], // state 1: link 1 fast
//! ])?;
//! // Two users with opposite beliefs about which state is likely.
//! let beliefs = BeliefProfile::new(vec![
//!     Belief::new(vec![0.9, 0.1])?,
//!     Belief::new(vec![0.1, 0.9])?,
//! ])?;
//! let game = Game::new(vec![1.0, 2.0], states, beliefs)?;
//! let eg = game.effective_game();
//!
//! // A pure Nash equilibrium via the two-links algorithm (Figure 1).
//! let ne = algorithms::two_links::solve(&eg, &LinkLoads::zero(2))?;
//! assert!(is_pure_nash(&eg, &ne, &LinkLoads::zero(2), Tolerance::default()));
//!
//! // The fully mixed Nash equilibrium, when it exists (Theorem 4.6).
//! if let Some(fmne) = fully_mixed_nash(&eg, Tolerance::default()) {
//!     assert!(is_mixed_nash(&eg, &fmne, Tolerance::default()));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## The solver engine
//!
//! All pure-NE solving funnels through one composition layer in
//! [`solvers::engine`]. Each algorithm implements the
//! [`Solver`](solvers::engine::Solver) trait — it classifies its own
//! [`Applicability`](solvers::engine::Applicability) to an instance
//! (conclusive special case, fallible heuristic, or not applicable) and
//! solves under shared [`SolverConfig`](solvers::engine::SolverConfig)
//! budgets (best-response step limit, exhaustive profile cap, tolerance).
//! A [`SolverEngine`](solvers::engine::SolverEngine) walks an ordered solver
//! list, records per-attempt telemetry (method, iterations, wall time), and
//! stops at the first solution or the first conclusive "no equilibrium
//! within budget".
//!
//! Batch workloads use
//! [`SolverEngine::solve_batch`](solvers::engine::SolverEngine::solve_batch)
//! (or `solve_sampled` for generate-and-solve Monte-Carlo sweeps), which fans
//! instances out over a deterministic `par-exec` worker pool; outputs are
//! keyed by task id, so results are bit-identical for any worker count. The
//! classic [`algorithms::solve_pure_nash`] entry point remains as a thin
//! wrapper over the engine in paper order.
//!
//! ```
//! use netuncert_core::prelude::*;
//!
//! let games: Vec<EffectiveGame> = (0..32)
//!     .map(|i| {
//!         EffectiveGame::from_rows(
//!             vec![1.0 + i as f64, 2.0, 1.5],
//!             vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, 1.0]],
//!         )
//!     })
//!     .collect::<Result<_>>()?;
//! let engine = SolverEngine::default();
//! for result in engine.solve_batch(&games) {
//!     let solved = result?;
//!     assert_eq!(solved.method(), Some(PureNashMethod::TwoLinks));
//! }
//! # Ok::<(), GameError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod cache;
pub mod equilibrium;
pub mod error;
pub mod fully_mixed;
pub mod game_graph;
pub mod latency;
pub mod model;
pub mod numeric;
pub mod obs;
pub mod opt;
pub mod potential;
pub mod social_cost;
pub mod solvers;
pub mod strategy;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::algorithms::{self, solve_pure_nash, PureNashMethod, PureNashSolution};
    pub use crate::equilibrium::{
        best_response, is_fully_mixed_nash, is_mixed_nash, is_pure_nash, Deviation,
    };
    pub use crate::error::{GameError, Result};
    pub use crate::fully_mixed::{
        fully_mixed_candidate, fully_mixed_latency, fully_mixed_nash, FullyMixedCandidate,
    };
    pub use crate::game_graph::{EdgeKind, GameGraph};
    pub use crate::latency::{
        mixed_link_latency, mixed_min_latency, pure_user_latency, pure_user_latency_on_link,
    };
    pub use crate::model::{
        Belief, BeliefProfile, CapacityState, EffectiveCapacities, EffectiveGame, Game, GameEdit,
        StateSpace,
    };
    pub use crate::numeric::Tolerance;
    pub use crate::obs::{
        Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Recorder, Registry, Span,
        SpanId,
    };
    pub use crate::opt::{
        OptBackendKind, OptBracket, OptCache, OptCheckpoint, OptConfig, OptEngine, OptEstimator,
        OptMethod, OptOutcome, OptRun,
    };
    pub use crate::social_cost::{
        checked_ratio, cr_bound_general, cr_bound_uniform_beliefs, measure, measure_bracketed,
        pure_equilibrium_spectrum, pure_poa_and_pos, ratio_bracket, sc1, sc2, BracketedCostReport,
        CostReport, EquilibriumSpectrum, RatioBracket,
    };
    pub use crate::solvers::cache::{CacheStats, SolveCache};
    pub use crate::solvers::engine::{
        Applicability, EngineSolution, RepairOutcome, RepairTelemetry, SolveTelemetry, Solver,
        SolverAttempt, SolverConfig, SolverEngine, SolverKind,
    };
    pub use crate::solvers::exhaustive::{all_pure_nash, social_optimum, SocialOptimum};
    pub use crate::solvers::kernel::{KernelRun, KernelScratch, SoAArena, SoAGame, SoAView};
    pub use crate::solvers::local_search::LocalSearch;
    pub use crate::strategy::{LinkLoads, MixedProfile, PureProfile};
}
