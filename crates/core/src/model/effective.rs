//! Effective (belief-averaged) capacities and the reduced game form.
//!
//! Section 2 of the paper observes that the expected latency of user `i` on
//! link `ℓ` only depends on the user's belief through the *effective capacity*
//!
//! ```text
//! cᵢℓ = 1 / Σ_φ  bᵢ(φ) / c_φℓ
//! ```
//!
//! i.e. the belief-harmonic-mean of the link's capacity. Every algorithm and
//! every equilibrium predicate in the crate therefore operates on the
//! *effective game* `(w, c)` — the traffic vector together with the `n × m`
//! matrix of effective capacities — rather than on raw states and beliefs.
//!
//! The reduction loses nothing: any strictly positive `n × m` matrix is the
//! effective-capacity matrix of some belief model (take `n` states where state
//! `i` equals row `i` and give user `i` a point-mass belief on state `i`), so
//! [`EffectiveGame`] is exactly the class of games studied in the paper.

use serde::{Deserialize, Serialize};

use crate::error::{GameError, Result};
use crate::numeric::{stable_sum, Tolerance};

/// The `n × m` matrix of effective capacities `cᵢℓ`, stored row-major
/// (row = user, column = link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectiveCapacities {
    users: usize,
    links: usize,
    data: Vec<f64>,
}

impl EffectiveCapacities {
    /// Builds the matrix from row-major data (`data[i * links + l] = cᵢˡ`).
    pub fn from_rows(users: usize, links: usize, data: Vec<f64>) -> Result<Self> {
        if users < 2 {
            return Err(GameError::TooFewUsers { n: users });
        }
        if links < 2 {
            return Err(GameError::TooFewLinks { m: links });
        }
        if data.len() != users * links {
            return Err(GameError::StateDimensionMismatch {
                state: 0,
                expected: users * links,
                found: data.len(),
            });
        }
        for (idx, &c) in data.iter().enumerate() {
            if !(c.is_finite() && c > 0.0) {
                return Err(GameError::InvalidCapacity {
                    state: idx / links,
                    link: idx % links,
                    value: c,
                });
            }
        }
        Ok(EffectiveCapacities { users, links, data })
    }

    /// Builds the matrix from a vector of per-user rows.
    pub fn from_user_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let users = rows.len();
        let links = rows.first().map(Vec::len).unwrap_or(0);
        let mut data = Vec::with_capacity(users * links);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != links {
                return Err(GameError::StateDimensionMismatch {
                    state: i,
                    expected: links,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        EffectiveCapacities::from_rows(users, links, data)
    }

    /// Number of users `n`.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of links `m`.
    pub fn links(&self) -> usize {
        self.links
    }

    /// Effective capacity `cᵢˡ` of link `link` as seen by user `user`.
    #[inline]
    pub fn get(&self, user: usize, link: usize) -> f64 {
        self.data[user * self.links + link]
    }

    /// The full row of user `user` (their view of every link).
    #[inline]
    pub fn row(&self, user: usize) -> &[f64] {
        &self.data[user * self.links..(user + 1) * self.links]
    }

    /// Sum of user `user`'s effective capacities over all links (`Σⱼ cᵢʲ`).
    pub fn row_sum(&self, user: usize) -> f64 {
        stable_sum(self.row(user))
    }

    /// The largest effective capacity over all users and links (`c_max`).
    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(f64::MIN, f64::max)
    }

    /// The smallest effective capacity over all users and links (`c_min`).
    pub fn min(&self) -> f64 {
        self.data.iter().cloned().fold(f64::MAX, f64::min)
    }

    /// The smallest effective capacity of link `link` over all users
    /// (`cˡ_min = min_i cᵢˡ`, used in Theorem 4.14).
    pub fn link_min(&self, link: usize) -> f64 {
        (0..self.users)
            .map(|i| self.get(i, link))
            .fold(f64::MAX, f64::min)
    }

    /// Whether every user sees the same capacity on every link
    /// (the *uniform user beliefs* model of Section 3.1: `cᵢˡ = cᵢ` for all `ℓ`).
    pub fn is_uniform_per_user(&self, tol: Tolerance) -> bool {
        (0..self.users).all(|i| {
            let first = self.get(i, 0);
            self.row(i).iter().all(|&c| tol.eq(c, first))
        })
    }

    /// Whether all users agree on the capacity of every link
    /// (the complete-information / KP special case: `cᵢˡ = cˡ` for all `i`).
    pub fn is_user_independent(&self, tol: Tolerance) -> bool {
        (0..self.links).all(|l| {
            let first = self.get(0, l);
            (0..self.users).all(|i| tol.eq(self.get(i, l), first))
        })
    }
}

/// A bounded, typed change to an [`EffectiveGame`] — the churn events an
/// equilibrium service repairs against instead of re-solving from scratch.
///
/// Each edit perturbs exactly one user's worth of structure: a join appends
/// one weight and one capacity row, a leave removes one, and a capacity
/// change rewrites a single matrix entry. [`EffectiveGame::apply_edit`]
/// validates the edit against the same invariants as game construction
/// (positive finite values, `n ≥ 2`, indices in range), so an edited game is
/// always a valid game or a typed error — never a panic downstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GameEdit {
    /// A new user joins with traffic `weight` and their effective-capacity
    /// view `capacities` (one entry per link). The user is appended at
    /// index `n`.
    UserJoins {
        /// Traffic of the joining user (finite, positive).
        weight: f64,
        /// The joining user's effective capacity on each link.
        capacities: Vec<f64>,
    },
    /// User `user` leaves; later users shift down by one index.
    UserLeaves {
        /// Index of the departing user.
        user: usize,
    },
    /// The effective capacity `cᵢˡ` of one `(user, link)` entry changes.
    CapacityChange {
        /// Row of the changed entry.
        user: usize,
        /// Column of the changed entry.
        link: usize,
        /// The new effective capacity (finite, positive).
        capacity: f64,
    },
}

impl GameEdit {
    /// A short tag naming the edit kind (`"join"`, `"leave"`, `"capacity"`),
    /// used in telemetry and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            GameEdit::UserJoins { .. } => "join",
            GameEdit::UserLeaves { .. } => "leave",
            GameEdit::CapacityChange { .. } => "capacity",
        }
    }
}

/// The reduced form of an uncertain routing game: traffic vector `w` plus the
/// effective-capacity matrix. All algorithms in the crate operate on this type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectiveGame {
    weights: Vec<f64>,
    capacities: EffectiveCapacities,
}

impl EffectiveGame {
    /// Builds an effective game, validating weights against the capacity matrix.
    pub fn new(weights: Vec<f64>, capacities: EffectiveCapacities) -> Result<Self> {
        if weights.len() != capacities.users() {
            return Err(GameError::ProfileDimensionMismatch {
                expected_users: capacities.users(),
                found_users: weights.len(),
            });
        }
        for (user, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                return Err(GameError::InvalidWeight { user, value: w });
            }
        }
        Ok(EffectiveGame {
            weights,
            capacities,
        })
    }

    /// Builds an effective game directly from weights and per-user capacity rows.
    pub fn from_rows(weights: Vec<f64>, rows: Vec<Vec<f64>>) -> Result<Self> {
        EffectiveGame::new(weights, EffectiveCapacities::from_user_rows(rows)?)
    }

    /// Number of users `n`.
    pub fn users(&self) -> usize {
        self.weights.len()
    }

    /// Number of links `m`.
    pub fn links(&self) -> usize {
        self.capacities.links()
    }

    /// Traffic `wᵢ` of user `user`.
    #[inline]
    pub fn weight(&self, user: usize) -> f64 {
        self.weights[user]
    }

    /// The full traffic vector `w`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total traffic `T = Σᵢ wᵢ`.
    pub fn total_traffic(&self) -> f64 {
        stable_sum(&self.weights)
    }

    /// The effective-capacity matrix.
    pub fn capacities(&self) -> &EffectiveCapacities {
        &self.capacities
    }

    /// Effective capacity `cᵢˡ`.
    #[inline]
    pub fn capacity(&self, user: usize, link: usize) -> f64 {
        self.capacities.get(user, link)
    }

    /// Whether all users have (approximately) identical traffic — the
    /// *symmetric users* special case handled by `Asymmetric`.
    pub fn has_identical_weights(&self, tol: Tolerance) -> bool {
        self.weights.iter().all(|&w| tol.eq(w, self.weights[0]))
    }

    /// Whether each user believes all links have the same capacity — the
    /// *uniform user beliefs* special case handled by `Auniform`.
    pub fn has_uniform_beliefs(&self, tol: Tolerance) -> bool {
        self.capacities.is_uniform_per_user(tol)
    }

    /// Whether the game is a complete-information (KP) instance: all users
    /// agree on every link capacity.
    pub fn is_kp_instance(&self, tol: Tolerance) -> bool {
        self.capacities.is_user_independent(tol)
    }

    /// Applies one [`GameEdit`], returning the edited game.
    ///
    /// Validation mirrors construction: a join must bring a positive finite
    /// weight and a full row of positive finite capacities; a leave must
    /// name an existing user and keep `n ≥ 2`; a capacity change must name
    /// an in-range entry and a positive finite value. The receiver is
    /// untouched — callers keep the pre-edit game for drift measurements.
    pub fn apply_edit(&self, edit: &GameEdit) -> Result<Self> {
        let (n, m) = (self.users(), self.links());
        match edit {
            GameEdit::UserJoins { weight, capacities } => {
                if capacities.len() != m {
                    return Err(GameError::StateDimensionMismatch {
                        state: n,
                        expected: m,
                        found: capacities.len(),
                    });
                }
                let mut weights = self.weights.clone();
                weights.push(*weight);
                let mut data = self.capacities.data.clone();
                data.extend_from_slice(capacities);
                EffectiveGame::new(weights, EffectiveCapacities::from_rows(n + 1, m, data)?)
            }
            GameEdit::UserLeaves { user } => {
                if *user >= n {
                    return Err(GameError::Precondition {
                        algorithm: "apply_edit",
                        requirement: format!("departing user {user} must be < n = {n}"),
                    });
                }
                if n - 1 < 2 {
                    return Err(GameError::TooFewUsers { n: n - 1 });
                }
                let keep: Vec<usize> = (0..n).filter(|&i| i != *user).collect();
                self.restrict_users(&keep)
            }
            GameEdit::CapacityChange {
                user,
                link,
                capacity,
            } => {
                if *user >= n {
                    return Err(GameError::Precondition {
                        algorithm: "apply_edit",
                        requirement: format!("edited user {user} must be < n = {n}"),
                    });
                }
                if *link >= m {
                    return Err(GameError::LinkOutOfRange {
                        user: *user,
                        link: *link,
                        links: m,
                    });
                }
                let mut data = self.capacities.data.clone();
                data[user * m + link] = *capacity;
                EffectiveGame::new(
                    self.weights.clone(),
                    EffectiveCapacities::from_rows(n, m, data)?,
                )
            }
        }
    }

    /// Returns the game restricted to the users selected by `keep` (in order).
    ///
    /// Used by the recursive algorithms (e.g. `Atwolinks`) that peel one user
    /// off per round.
    pub fn restrict_users(&self, keep: &[usize]) -> Result<Self> {
        let weights: Vec<f64> = keep.iter().map(|&i| self.weights[i]).collect();
        let rows: Vec<Vec<f64>> = keep
            .iter()
            .map(|&i| self.capacities.row(i).to_vec())
            .collect();
        EffectiveGame::from_rows(weights, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_caps() -> EffectiveCapacities {
        EffectiveCapacities::from_user_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.5]])
            .unwrap()
    }

    #[test]
    fn matrix_accessors() {
        let c = simple_caps();
        assert_eq!(c.users(), 3);
        assert_eq!(c.links(), 2);
        assert_eq!(c.get(1, 1), 4.0);
        assert_eq!(c.row(2), &[5.0, 0.5]);
        assert_eq!(c.row_sum(0), 3.0);
        assert_eq!(c.max(), 5.0);
        assert_eq!(c.min(), 0.5);
        assert_eq!(c.link_min(0), 1.0);
        assert_eq!(c.link_min(1), 0.5);
    }

    #[test]
    fn matrix_validation() {
        assert!(EffectiveCapacities::from_rows(2, 2, vec![1.0, 1.0, 1.0]).is_err());
        assert!(EffectiveCapacities::from_rows(2, 2, vec![1.0, 1.0, 1.0, -1.0]).is_err());
        assert!(EffectiveCapacities::from_rows(1, 2, vec![1.0, 1.0]).is_err());
        assert!(EffectiveCapacities::from_rows(2, 1, vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn uniform_and_user_independent_detection() {
        let tol = Tolerance::default();
        let uniform =
            EffectiveCapacities::from_user_rows(vec![vec![2.0, 2.0], vec![5.0, 5.0]]).unwrap();
        assert!(uniform.is_uniform_per_user(tol));
        assert!(!uniform.is_user_independent(tol));

        let kp = EffectiveCapacities::from_user_rows(vec![vec![2.0, 5.0], vec![2.0, 5.0]]).unwrap();
        assert!(kp.is_user_independent(tol));
        assert!(!kp.is_uniform_per_user(tol));

        let both =
            EffectiveCapacities::from_user_rows(vec![vec![3.0, 3.0], vec![3.0, 3.0]]).unwrap();
        assert!(both.is_user_independent(tol) && both.is_uniform_per_user(tol));
    }

    #[test]
    fn effective_game_validation() {
        let caps = simple_caps();
        assert!(EffectiveGame::new(vec![1.0, 2.0], caps.clone()).is_err());
        assert!(EffectiveGame::new(vec![1.0, 2.0, -1.0], caps.clone()).is_err());
        let g = EffectiveGame::new(vec![1.0, 2.0, 3.0], caps).unwrap();
        assert_eq!(g.users(), 3);
        assert_eq!(g.links(), 2);
        assert_eq!(g.total_traffic(), 6.0);
        assert_eq!(g.weight(2), 3.0);
        assert_eq!(g.capacity(2, 1), 0.5);
    }

    #[test]
    fn special_case_predicates() {
        let tol = Tolerance::default();
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![2.0, 3.0], vec![4.0, 5.0]]).unwrap();
        assert!(g.has_identical_weights(tol));
        assert!(!g.has_uniform_beliefs(tol));
        assert!(!g.is_kp_instance(tol));

        let kp =
            EffectiveGame::from_rows(vec![1.0, 2.0], vec![vec![2.0, 3.0], vec![2.0, 3.0]]).unwrap();
        assert!(kp.is_kp_instance(tol));
    }

    #[test]
    fn apply_edit_join_appends_one_user() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 2.0], vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let edited = g
            .apply_edit(&GameEdit::UserJoins {
                weight: 5.0,
                capacities: vec![6.0, 7.0],
            })
            .unwrap();
        assert_eq!(edited.users(), 3);
        assert_eq!(edited.weights(), &[1.0, 2.0, 5.0]);
        assert_eq!(edited.capacities().row(2), &[6.0, 7.0]);
        // The original is untouched.
        assert_eq!(g.users(), 2);
        // Invalid joins are typed errors.
        assert!(g
            .apply_edit(&GameEdit::UserJoins {
                weight: -1.0,
                capacities: vec![1.0, 1.0],
            })
            .is_err());
        assert!(g
            .apply_edit(&GameEdit::UserJoins {
                weight: 1.0,
                capacities: vec![1.0],
            })
            .is_err());
        assert!(g
            .apply_edit(&GameEdit::UserJoins {
                weight: 1.0,
                capacities: vec![1.0, 0.0],
            })
            .is_err());
    }

    #[test]
    fn apply_edit_leave_shifts_later_users_down() {
        let g = EffectiveGame::from_rows(
            vec![1.0, 2.0, 3.0],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        )
        .unwrap();
        let edited = g.apply_edit(&GameEdit::UserLeaves { user: 1 }).unwrap();
        assert_eq!(edited.users(), 2);
        assert_eq!(edited.weights(), &[1.0, 3.0]);
        assert_eq!(edited.capacities().row(1), &[5.0, 6.0]);
        // Leaving below n = 2 or naming a missing user is a typed error.
        assert!(edited
            .apply_edit(&GameEdit::UserLeaves { user: 0 })
            .is_err());
        assert!(g.apply_edit(&GameEdit::UserLeaves { user: 3 }).is_err());
    }

    #[test]
    fn apply_edit_capacity_rewrites_one_entry() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 2.0], vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let edited = g
            .apply_edit(&GameEdit::CapacityChange {
                user: 1,
                link: 0,
                capacity: 9.0,
            })
            .unwrap();
        assert_eq!(edited.capacity(1, 0), 9.0);
        assert_eq!(edited.capacity(0, 0), 1.0);
        assert_eq!(edited.capacity(1, 1), 4.0);
        for bad in [
            GameEdit::CapacityChange {
                user: 2,
                link: 0,
                capacity: 1.0,
            },
            GameEdit::CapacityChange {
                user: 0,
                link: 2,
                capacity: 1.0,
            },
            GameEdit::CapacityChange {
                user: 0,
                link: 0,
                capacity: f64::NAN,
            },
        ] {
            assert!(g.apply_edit(&bad).is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(GameEdit::UserLeaves { user: 0 }.kind(), "leave");
        assert_eq!(
            GameEdit::CapacityChange {
                user: 0,
                link: 0,
                capacity: 1.0
            }
            .kind(),
            "capacity"
        );
    }

    #[test]
    fn restrict_users_keeps_selected_rows() {
        let g = EffectiveGame::from_rows(
            vec![1.0, 2.0, 3.0],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        )
        .unwrap();
        let r = g.restrict_users(&[0, 2]).unwrap();
        assert_eq!(r.users(), 2);
        assert_eq!(r.weights(), &[1.0, 3.0]);
        assert_eq!(r.capacities().row(1), &[5.0, 6.0]);
    }
}
