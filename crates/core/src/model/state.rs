//! Network states: capacity vectors and the state space `Φ`.

use serde::{Deserialize, Serialize};

use crate::error::{GameError, Result};

/// A single network state: one capacity per link (`⟨c¹, …, cᵐ⟩` in the paper).
///
/// Capacities are strictly positive, finite rates at which a link processes
/// traffic. The latency contributed by a load `W` on link `ℓ` in this state is
/// `W / cℓ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityState {
    capacities: Vec<f64>,
}

impl CapacityState {
    /// Creates a state from per-link capacities.
    ///
    /// Fails if any capacity is non-positive, NaN or infinite, or if there are
    /// fewer than two links.
    pub fn new(capacities: Vec<f64>) -> Result<Self> {
        if capacities.len() < 2 {
            return Err(GameError::TooFewLinks {
                m: capacities.len(),
            });
        }
        for (link, &c) in capacities.iter().enumerate() {
            if !(c.is_finite() && c > 0.0) {
                return Err(GameError::InvalidCapacity {
                    state: 0,
                    link,
                    value: c,
                });
            }
        }
        Ok(CapacityState { capacities })
    }

    /// A state where every link has the same capacity.
    pub fn identical(m: usize, capacity: f64) -> Result<Self> {
        CapacityState::new(vec![capacity; m])
    }

    /// Number of links described by this state.
    pub fn links(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of link `link` in this state.
    pub fn capacity(&self, link: usize) -> f64 {
        self.capacities[link]
    }

    /// All capacities as a slice.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }
}

/// The state space `Φ`: every capacity vector the network may realise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSpace {
    links: usize,
    states: Vec<CapacityState>,
}

impl StateSpace {
    /// Builds a state space from a non-empty list of states over the same links.
    pub fn new(states: Vec<CapacityState>) -> Result<Self> {
        let first = states.first().ok_or(GameError::EmptyStateSpace)?;
        let links = first.links();
        for (idx, s) in states.iter().enumerate() {
            if s.links() != links {
                return Err(GameError::StateDimensionMismatch {
                    state: idx,
                    expected: links,
                    found: s.links(),
                });
            }
        }
        Ok(StateSpace { links, states })
    }

    /// Builds a state space from raw capacity rows (one row per state).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let mut states = Vec::with_capacity(rows.len());
        for (idx, row) in rows.into_iter().enumerate() {
            let state = CapacityState::new(row).map_err(|e| match e {
                GameError::InvalidCapacity { link, value, .. } => GameError::InvalidCapacity {
                    state: idx,
                    link,
                    value,
                },
                other => other,
            })?;
            states.push(state);
        }
        StateSpace::new(states)
    }

    /// A degenerate state space containing exactly one state (complete information).
    pub fn singleton(capacities: Vec<f64>) -> Result<Self> {
        StateSpace::new(vec![CapacityState::new(capacities)?])
    }

    /// Number of links `m`.
    pub fn links(&self) -> usize {
        self.links
    }

    /// Number of states `|Φ|`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the space is empty (never true for a validated space).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state with index `idx`.
    pub fn state(&self, idx: usize) -> &CapacityState {
        &self.states[idx]
    }

    /// Iterator over all states.
    pub fn iter(&self) -> impl Iterator<Item = &CapacityState> {
        self.states.iter()
    }

    /// Capacity of `link` in state `state`.
    pub fn capacity(&self, state: usize, link: usize) -> f64 {
        self.states[state].capacity(link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_rejects_non_positive_capacity() {
        assert!(CapacityState::new(vec![1.0, 0.0]).is_err());
        assert!(CapacityState::new(vec![1.0, -2.0]).is_err());
        assert!(CapacityState::new(vec![f64::NAN, 1.0]).is_err());
        assert!(CapacityState::new(vec![f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn state_rejects_single_link() {
        assert!(matches!(
            CapacityState::new(vec![1.0]),
            Err(GameError::TooFewLinks { m: 1 })
        ));
    }

    #[test]
    fn identical_state_has_equal_capacities() {
        let s = CapacityState::identical(4, 2.5).unwrap();
        assert_eq!(s.links(), 4);
        assert!(s.capacities().iter().all(|&c| c == 2.5));
    }

    #[test]
    fn state_space_validates_dimensions() {
        let a = CapacityState::new(vec![1.0, 2.0]).unwrap();
        let b = CapacityState::new(vec![1.0, 2.0, 3.0]).unwrap();
        let err = StateSpace::new(vec![a, b]).unwrap_err();
        assert!(matches!(
            err,
            GameError::StateDimensionMismatch { state: 1, .. }
        ));
    }

    #[test]
    fn state_space_rejects_empty() {
        assert!(matches!(
            StateSpace::new(vec![]),
            Err(GameError::EmptyStateSpace)
        ));
    }

    #[test]
    fn from_rows_reports_offending_state_index() {
        let err = StateSpace::from_rows(vec![vec![1.0, 1.0], vec![1.0, -3.0]]).unwrap_err();
        assert!(matches!(
            err,
            GameError::InvalidCapacity {
                state: 1,
                link: 1,
                ..
            }
        ));
    }

    #[test]
    fn accessors_round_trip() {
        let space = StateSpace::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(space.links(), 2);
        assert_eq!(space.len(), 2);
        assert!(!space.is_empty());
        assert_eq!(space.capacity(1, 0), 3.0);
        assert_eq!(space.state(0).capacities(), &[1.0, 2.0]);
        assert_eq!(space.iter().count(), 2);
    }
}
