//! The full belief-based routing game `G = (n, m, w, B)` of Section 2.

use serde::{Deserialize, Serialize};

use crate::error::{GameError, Result};
use crate::model::belief::{Belief, BeliefProfile};
use crate::model::effective::{EffectiveCapacities, EffectiveGame};
use crate::model::state::StateSpace;
use crate::numeric::Tolerance;

/// An uncertain selfish-routing game `G = (n, m, w, B)`.
///
/// `n` users with traffics `w` route onto `m` parallel links whose capacities
/// are uncertain: the network realises one of the states in the [`StateSpace`]
/// and each user holds a private [`Belief`] over those states.
///
/// Most computations go through [`Game::effective_game`], which collapses the
/// states and beliefs into the per-user effective-capacity matrix described in
/// [`crate::model::effective`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Game {
    weights: Vec<f64>,
    states: StateSpace,
    beliefs: BeliefProfile,
}

impl Game {
    /// Builds and validates a game.
    pub fn new(weights: Vec<f64>, states: StateSpace, beliefs: BeliefProfile) -> Result<Self> {
        let n = weights.len();
        if n < 2 {
            return Err(GameError::TooFewUsers { n });
        }
        if states.links() < 2 {
            return Err(GameError::TooFewLinks { m: states.links() });
        }
        for (user, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                return Err(GameError::InvalidWeight { user, value: w });
            }
        }
        if beliefs.users() != n {
            return Err(GameError::BeliefCountMismatch {
                users: n,
                beliefs: beliefs.users(),
            });
        }
        if beliefs.states() != states.len() {
            return Err(GameError::InvalidBelief {
                user: 0,
                reason: crate::error::BeliefError::LengthMismatch {
                    expected: states.len(),
                    found: beliefs.states(),
                },
            });
        }
        Ok(Game {
            weights,
            states,
            beliefs,
        })
    }

    /// A complete-information (KP) game: a single known capacity vector.
    pub fn complete_information(weights: Vec<f64>, capacities: Vec<f64>) -> Result<Self> {
        let n = weights.len();
        let states = StateSpace::singleton(capacities)?;
        let beliefs = BeliefProfile::point_mass(n, 1, 0);
        Game::new(weights, states, beliefs)
    }

    /// A game where every user holds the same belief over the states.
    pub fn common_belief(weights: Vec<f64>, states: StateSpace, belief: Belief) -> Result<Self> {
        let n = weights.len();
        let beliefs = BeliefProfile::identical(n, belief);
        Game::new(weights, states, beliefs)
    }

    /// Number of users `n`.
    pub fn users(&self) -> usize {
        self.weights.len()
    }

    /// Number of links `m`.
    pub fn links(&self) -> usize {
        self.states.links()
    }

    /// Traffic of user `user`.
    pub fn weight(&self, user: usize) -> f64 {
        self.weights[user]
    }

    /// The traffic vector `w`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total traffic `T`.
    pub fn total_traffic(&self) -> f64 {
        crate::numeric::stable_sum(&self.weights)
    }

    /// The state space `Φ`.
    pub fn states(&self) -> &StateSpace {
        &self.states
    }

    /// The belief profile `B`.
    pub fn beliefs(&self) -> &BeliefProfile {
        &self.beliefs
    }

    /// Whether the game is a KP-model instance (all users certain of the same state).
    pub fn is_kp_instance(&self, tol: Tolerance) -> bool {
        self.beliefs.is_complete_information(tol)
    }

    /// Effective capacity `cᵢˡ = 1 / Σ_φ bᵢ(φ)/c_φˡ` of link `link` for user `user`.
    pub fn effective_capacity(&self, user: usize, link: usize) -> f64 {
        let inv = self
            .beliefs
            .belief(user)
            .expect(|s| 1.0 / self.states.capacity(s, link));
        1.0 / inv
    }

    /// The full effective-capacity matrix.
    pub fn effective_capacities(&self) -> EffectiveCapacities {
        let n = self.users();
        let m = self.links();
        let mut data = Vec::with_capacity(n * m);
        for i in 0..n {
            for l in 0..m {
                data.push(self.effective_capacity(i, l));
            }
        }
        EffectiveCapacities::from_rows(n, m, data)
            .expect("validated game always yields a valid capacity matrix")
    }

    /// Collapses the game into its reduced effective form `(w, c)`.
    pub fn effective_game(&self) -> EffectiveGame {
        EffectiveGame::new(self.weights.clone(), self.effective_capacities())
            .expect("validated game always yields a valid effective game")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::state::CapacityState;

    fn two_state_space() -> StateSpace {
        StateSpace::new(vec![
            CapacityState::new(vec![1.0, 4.0]).unwrap(),
            CapacityState::new(vec![2.0, 2.0]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn game_validation_catches_mismatches() {
        let states = two_state_space();
        // Too few users.
        assert!(Game::new(
            vec![1.0],
            states.clone(),
            BeliefProfile::point_mass(1, 2, 0)
        )
        .is_err());
        // Wrong belief count.
        assert!(Game::new(
            vec![1.0, 2.0],
            states.clone(),
            BeliefProfile::point_mass(3, 2, 0)
        )
        .is_err());
        // Beliefs over the wrong number of states.
        assert!(Game::new(
            vec![1.0, 2.0],
            states.clone(),
            BeliefProfile::point_mass(2, 3, 0)
        )
        .is_err());
        // Bad weight.
        assert!(Game::new(
            vec![1.0, 0.0],
            states.clone(),
            BeliefProfile::point_mass(2, 2, 0)
        )
        .is_err());
        // Valid.
        assert!(Game::new(vec![1.0, 2.0], states, BeliefProfile::point_mass(2, 2, 0)).is_ok());
    }

    #[test]
    fn effective_capacity_is_belief_harmonic_mean() {
        let states = two_state_space();
        let beliefs = BeliefProfile::new(vec![
            Belief::new(vec![0.5, 0.5]).unwrap(),
            Belief::point_mass(2, 0),
        ])
        .unwrap();
        let g = Game::new(vec![1.0, 1.0], states, beliefs).unwrap();

        // User 0, link 0: 1 / (0.5/1 + 0.5/2) = 1 / 0.75
        assert!((g.effective_capacity(0, 0) - 1.0 / 0.75).abs() < 1e-12);
        // User 0, link 1: 1 / (0.5/4 + 0.5/2) = 1 / 0.375
        assert!((g.effective_capacity(0, 1) - 1.0 / 0.375).abs() < 1e-12);
        // User 1 is certain of state 0.
        assert!((g.effective_capacity(1, 0) - 1.0).abs() < 1e-12);
        assert!((g.effective_capacity(1, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn complete_information_recovers_kp_model() {
        let tol = Tolerance::default();
        let g = Game::complete_information(vec![1.0, 2.0, 3.0], vec![2.0, 5.0]).unwrap();
        assert!(g.is_kp_instance(tol));
        let eg = g.effective_game();
        assert!(eg.is_kp_instance(tol));
        for i in 0..3 {
            assert!((eg.capacity(i, 0) - 2.0).abs() < 1e-12);
            assert!((eg.capacity(i, 1) - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn common_belief_yields_identical_rows() {
        let states = two_state_space();
        let g = Game::common_belief(vec![1.0, 2.0], states, Belief::uniform(2)).unwrap();
        let eg = g.effective_game();
        assert_eq!(eg.capacities().row(0), eg.capacities().row(1));
        assert!(!g.is_kp_instance(Tolerance::default()));
    }

    #[test]
    fn effective_game_preserves_weights_and_dimensions() {
        let states = two_state_space();
        let g = Game::common_belief(vec![1.5, 2.5], states, Belief::uniform(2)).unwrap();
        let eg = g.effective_game();
        assert_eq!(eg.weights(), &[1.5, 2.5]);
        assert_eq!(eg.users(), 2);
        assert_eq!(eg.links(), 2);
        assert!((g.total_traffic() - 4.0).abs() < 1e-12);
    }
}
