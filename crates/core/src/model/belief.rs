//! User beliefs: probability distributions over the state space.

use serde::{Deserialize, Serialize};

use crate::error::{BeliefError, GameError, Result};
use crate::numeric::{stable_sum, Tolerance};

/// Tolerance used when validating that belief entries sum to one.
const NORMALIZATION_EPS: f64 = 1e-7;

/// A belief `b ∈ ∆(Φ)`: a probability distribution over network states.
///
/// `probs[φ]` is the probability the user assigns to state `φ` of the
/// associated [`StateSpace`](crate::model::StateSpace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Belief {
    probs: Vec<f64>,
}

impl Belief {
    /// Creates a belief from raw probabilities, validating non-negativity and
    /// normalisation. Entries are re-normalised exactly so downstream sums are
    /// consistent.
    pub fn new(probs: Vec<f64>) -> std::result::Result<Self, BeliefError> {
        if probs.is_empty() {
            return Err(BeliefError::LengthMismatch {
                expected: 1,
                found: 0,
            });
        }
        for (index, &p) in probs.iter().enumerate() {
            if !(p.is_finite() && p >= 0.0) {
                return Err(BeliefError::InvalidEntry { index, value: p });
            }
        }
        let sum = stable_sum(&probs);
        if (sum - 1.0).abs() > NORMALIZATION_EPS {
            return Err(BeliefError::NotNormalized { sum });
        }
        let mut probs = probs;
        // Re-normalise so the entries sum to exactly 1 (up to f64 rounding).
        for p in &mut probs {
            *p /= sum;
        }
        Ok(Belief { probs })
    }

    /// A point-mass belief: probability 1 on state `state` out of `num_states`.
    pub fn point_mass(num_states: usize, state: usize) -> Self {
        assert!(state < num_states, "point-mass state out of range");
        let mut probs = vec![0.0; num_states];
        probs[state] = 1.0;
        Belief { probs }
    }

    /// The uniform belief over `num_states` states.
    pub fn uniform(num_states: usize) -> Self {
        assert!(num_states > 0, "uniform belief over zero states");
        Belief {
            probs: vec![1.0 / num_states as f64; num_states],
        }
    }

    /// Creates a belief proportional to the given non-negative weights.
    pub fn from_weights(weights: &[f64]) -> std::result::Result<Self, BeliefError> {
        if weights.is_empty() {
            return Err(BeliefError::LengthMismatch {
                expected: 1,
                found: 0,
            });
        }
        for (index, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w >= 0.0) {
                return Err(BeliefError::InvalidEntry { index, value: w });
            }
        }
        let total = stable_sum(weights);
        if total <= 0.0 {
            return Err(BeliefError::NotNormalized { sum: total });
        }
        Ok(Belief {
            probs: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// Number of states this belief ranges over.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the belief is over zero states (never true after validation).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability assigned to state `state`.
    pub fn prob(&self, state: usize) -> f64 {
        self.probs[state]
    }

    /// All probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Whether this belief puts all mass on a single state.
    pub fn is_point_mass(&self, tol: Tolerance) -> bool {
        self.probs.iter().filter(|&&p| tol.gt(p, 0.0)).count() == 1
    }

    /// The support: indices of states with positive probability.
    pub fn support(&self, tol: Tolerance) -> Vec<usize> {
        self.probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| tol.gt(p, 0.0))
            .map(|(i, _)| i)
            .collect()
    }

    /// Expectation of `f(state_index)` under this belief.
    pub fn expect<F: Fn(usize) -> f64>(&self, f: F) -> f64 {
        let terms: Vec<f64> = self
            .probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(idx, &p)| p * f(idx))
            .collect();
        stable_sum(&terms)
    }
}

/// A belief profile `B = ⟨b₁, …, bₙ⟩`: one belief per user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeliefProfile {
    beliefs: Vec<Belief>,
}

impl BeliefProfile {
    /// Builds a profile from per-user beliefs; all beliefs must range over the
    /// same number of states.
    pub fn new(beliefs: Vec<Belief>) -> Result<Self> {
        let first_len = beliefs.first().map(Belief::len).unwrap_or(0);
        for (user, b) in beliefs.iter().enumerate() {
            if b.len() != first_len {
                return Err(GameError::InvalidBelief {
                    user,
                    reason: BeliefError::LengthMismatch {
                        expected: first_len,
                        found: b.len(),
                    },
                });
            }
        }
        Ok(BeliefProfile { beliefs })
    }

    /// A profile where every user has the same belief.
    pub fn identical(n: usize, belief: Belief) -> Self {
        BeliefProfile {
            beliefs: vec![belief; n],
        }
    }

    /// A profile where every user puts probability one on the same state
    /// (the KP-model special case).
    pub fn point_mass(n: usize, num_states: usize, state: usize) -> Self {
        BeliefProfile::identical(n, Belief::point_mass(num_states, state))
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.beliefs.len()
    }

    /// Number of states each belief ranges over.
    pub fn states(&self) -> usize {
        self.beliefs.first().map(Belief::len).unwrap_or(0)
    }

    /// The belief of user `user`.
    pub fn belief(&self, user: usize) -> &Belief {
        &self.beliefs[user]
    }

    /// Iterator over beliefs in user order.
    pub fn iter(&self) -> impl Iterator<Item = &Belief> {
        self.beliefs.iter()
    }

    /// Whether all users share a point-mass belief on a common state
    /// (the condition under which the model coincides with the KP-model).
    pub fn is_complete_information(&self, tol: Tolerance) -> bool {
        let Some(first) = self.beliefs.first() else {
            return false;
        };
        if !first.is_point_mass(tol) {
            return false;
        }
        let state = first.support(tol)[0];
        self.beliefs
            .iter()
            .all(|b| b.is_point_mass(tol) && b.support(tol) == [state])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn belief_validates_entries() {
        assert!(Belief::new(vec![0.5, 0.5]).is_ok());
        assert!(matches!(
            Belief::new(vec![0.5, -0.5]),
            Err(BeliefError::InvalidEntry { index: 1, .. })
        ));
        assert!(matches!(
            Belief::new(vec![0.5, 0.2]),
            Err(BeliefError::NotNormalized { .. })
        ));
        assert!(matches!(
            Belief::new(vec![]),
            Err(BeliefError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn point_mass_and_uniform() {
        let tol = Tolerance::default();
        let pm = Belief::point_mass(3, 1);
        assert_eq!(pm.probs(), &[0.0, 1.0, 0.0]);
        assert!(pm.is_point_mass(tol));
        assert_eq!(pm.support(tol), vec![1]);

        let u = Belief::uniform(4);
        assert!(u.probs().iter().all(|&p| (p - 0.25).abs() < 1e-15));
        assert!(!u.is_point_mass(tol));
    }

    #[test]
    fn from_weights_normalises() {
        let b = Belief::from_weights(&[1.0, 3.0]).unwrap();
        assert!((b.prob(0) - 0.25).abs() < 1e-15);
        assert!((b.prob(1) - 0.75).abs() < 1e-15);
        assert!(Belief::from_weights(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn expectation_matches_manual_computation() {
        let b = Belief::new(vec![0.25, 0.75]).unwrap();
        let caps = [2.0, 4.0];
        // E[1/c] = 0.25/2 + 0.75/4 = 0.3125
        let e = b.expect(|s| 1.0 / caps[s]);
        assert!((e - 0.3125).abs() < 1e-15);
    }

    #[test]
    fn profile_requires_consistent_state_counts() {
        let a = Belief::uniform(2);
        let b = Belief::uniform(3);
        assert!(BeliefProfile::new(vec![a.clone(), b]).is_err());
        assert!(BeliefProfile::new(vec![a.clone(), a]).is_ok());
    }

    #[test]
    fn complete_information_detection() {
        let tol = Tolerance::default();
        let kp = BeliefProfile::point_mass(3, 4, 2);
        assert!(kp.is_complete_information(tol));

        // Point masses on different states are still uncertain collectively.
        let mixed =
            BeliefProfile::new(vec![Belief::point_mass(2, 0), Belief::point_mass(2, 1)]).unwrap();
        assert!(!mixed.is_complete_information(tol));

        let uncertain = BeliefProfile::identical(2, Belief::uniform(2));
        assert!(!uncertain.is_complete_information(tol));
    }

    #[test]
    fn profile_accessors() {
        let p = BeliefProfile::identical(3, Belief::uniform(2));
        assert_eq!(p.users(), 3);
        assert_eq!(p.states(), 2);
        assert_eq!(p.iter().count(), 3);
        assert_eq!(p.belief(1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_mass_out_of_range_panics() {
        Belief::point_mass(2, 5);
    }
}
