//! Model types: states, beliefs, games and their reduced (effective) form.

mod belief;
mod effective;
mod game;
mod state;

pub use belief::{Belief, BeliefProfile};
pub use effective::{EffectiveCapacities, EffectiveGame, GameEdit};
pub use game::Game;
pub use state::{CapacityState, StateSpace};
