//! Content-addressed memoisation for [`SolverEngine::solve`].
//!
//! Perturbation-style sweeps re-solve identical effective games constantly:
//! a study that redraws beliefs around a fixed "true" network solves that
//! same true network once per perturbed sample. A [`SolveCache`] shortcuts
//! the repeats. The cache key is the *canonical byte serialisation* of
//! everything that determines the engine's answer — the solver method list,
//! the [`SolverConfig`] budgets, the effective game (weights and capacity
//! matrix bit patterns) and the initial link loads — so a hit is guaranteed
//! to return exactly what a cold solve would have returned, telemetry
//! included. Caching therefore never changes results, only skips work.
//!
//! The cache is opt-in via [`SolverEngine::with_cache`]; engines without one
//! behave exactly as before. One cache may be shared (it is `Sync`, handed
//! around as `Arc<SolveCache>`) across threads and across engines — keys
//! embed the engine's method list and budgets, so engines with different
//! strategies never collide.
//!
//! The capacity mechanics (and the LRU service tier behind
//! [`SolveCache::lru`]) live in the shared [`crate::cache`] module; this
//! module owns the solve-specific key discipline.
//!
//! [`SolverEngine::solve`]: super::engine::SolverEngine::solve
//! [`SolverEngine::with_cache`]: super::engine::SolverEngine::with_cache
//! [`SolverConfig`]: super::engine::SolverConfig

use crate::algorithms::best_response::SelectionRule;
use crate::algorithms::PureNashMethod;
pub use crate::cache::CacheStats;
use crate::cache::{BoundedCache, CacheBound};
use crate::model::EffectiveGame;
use crate::numeric::canonical_bits;
use crate::solvers::engine::{EngineSolution, SolverConfig};
use crate::strategy::LinkLoads;

/// Entry cap used by [`SolveCache::new`]; enough for any in-process sweep
/// while bounding a million-instance, mostly-miss workload to a few GB at
/// worst. Use [`SolveCache::bounded`] to tighten or loosen it, or
/// [`SolveCache::lru`] for a service-style evicting tier.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A thread-safe memoisation table in front of the engine's solve path.
///
/// The default ([`SolveCache::new`] / [`SolveCache::bounded`]) keeps the
/// historical batch-sweep behaviour: the table stops growing once `capacity`
/// distinct instances are stored (new entries are simply not inserted —
/// deterministic, and hits on the stored prefix keep working). A resident
/// service should use [`SolveCache::lru`] instead, which evicts the
/// least-recently-used entry at capacity and counts evictions in
/// [`CacheStats`]. See the [module docs](self) for the key discipline and
/// guarantees.
#[derive(Debug)]
pub struct SolveCache {
    inner: BoundedCache<EngineSolution>,
}

impl Default for SolveCache {
    fn default() -> Self {
        SolveCache::bounded(DEFAULT_CAPACITY)
    }
}

impl SolveCache {
    /// An empty cache holding at most [`DEFAULT_CAPACITY`] entries.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// An empty cache holding at most `capacity` entries; at capacity, new
    /// entries are dropped (never evicted).
    pub fn bounded(capacity: usize) -> Self {
        SolveCache {
            inner: BoundedCache::new(capacity, CacheBound::Soft),
        }
    }

    /// An empty cache holding at most `capacity` entries; at capacity, the
    /// least-recently-used entry is evicted to admit a new one (lookups
    /// refresh recency). Evictions are counted in [`CacheStats::evictions`]
    /// and can never change results — an evicted instance is simply
    /// re-solved on its next miss.
    pub fn lru(capacity: usize) -> Self {
        SolveCache {
            inner: BoundedCache::new(capacity, CacheBound::Lru),
        }
    }

    /// The entry cap this cache was built with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Current hit/miss/entry/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of distinct solved instances stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Looks up a canonical key (from [`canonical_key`]), counting the
    /// outcome as a hit or a miss.
    ///
    /// Public for out-of-crate engine frontends (the serve layer's
    /// deadline-aware solve path); everything stored under a key built by
    /// [`canonical_key`] is exactly what a cold
    /// [`SolverEngine::solve`](super::engine::SolverEngine::solve) with that
    /// method list and config would return.
    pub fn lookup(&self, key: &[u8]) -> Option<EngineSolution> {
        self.inner.lookup(key)
    }

    /// Stores a cold solve under its canonical key (see
    /// [`lookup`](SolveCache::lookup) for the contract).
    pub fn insert(&self, key: Vec<u8>, solution: EngineSolution) {
        self.inner.insert(key, solution);
    }
}

fn method_tag(method: PureNashMethod) -> u8 {
    match method {
        PureNashMethod::TwoLinks => 0,
        PureNashMethod::Symmetric => 1,
        PureNashMethod::UniformBeliefs => 2,
        PureNashMethod::BestResponse => 3,
        PureNashMethod::Exhaustive => 4,
        PureNashMethod::LocalSearch => 5,
    }
}

fn rule_tag(rule: SelectionRule) -> u8 {
    match rule {
        SelectionRule::RoundRobin => 0,
        SelectionRule::LargestGain => 1,
    }
}

/// Builds the canonical cache key for one solve: engine method list, shared
/// budgets, then the canonicalised bit patterns of the instance itself
/// ([`canonical_bits`] folds `±0.0` and NaN payloads together, so
/// semantically identical instances always share a key).
///
/// Public so engine frontends outside this crate (the serve layer) can
/// address the same warm tier as
/// [`SolverEngine::solve`](super::engine::SolverEngine::solve): two callers
/// that agree on the method list, config and instance read and write the
/// same entry.
pub fn canonical_key(
    methods: &[PureNashMethod],
    config: &SolverConfig,
    game: &EffectiveGame,
    initial: &LinkLoads,
) -> Vec<u8> {
    let n = game.users();
    let m = game.links();
    let mut key = Vec::with_capacity(64 + 8 * (n + n * m + m));
    key.extend_from_slice(b"netuncert-solve-v2");
    key.push(methods.len() as u8);
    key.extend(methods.iter().map(|&mth| method_tag(mth)));
    key.extend_from_slice(&canonical_bits(config.tol.eps()).to_le_bytes());
    key.extend_from_slice(&(config.max_steps as u64).to_le_bytes());
    key.push(rule_tag(config.rule));
    key.extend_from_slice(&config.profile_limit.to_le_bytes());
    key.extend_from_slice(&(config.restarts as u64).to_le_bytes());
    key.extend_from_slice(&config.ls_seed.to_le_bytes());
    key.extend_from_slice(&(n as u64).to_le_bytes());
    key.extend_from_slice(&(m as u64).to_le_bytes());
    for &w in game.weights() {
        key.extend_from_slice(&canonical_bits(w).to_le_bytes());
    }
    for user in 0..n {
        for &c in game.capacities().row(user) {
            key.extend_from_slice(&canonical_bits(c).to_le_bytes());
        }
    }
    for &t in initial.as_slice() {
        key.extend_from_slice(&canonical_bits(t).to_le_bytes());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn keys_separate_games_configs_and_method_lists() {
        let config = SolverConfig::default();
        let initial = LinkLoads::zero(3);
        let methods = vec![PureNashMethod::BestResponse, PureNashMethod::Exhaustive];
        let base = canonical_key(&methods, &config, &game(), &initial);

        let other_game = EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0 + 1e-12],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
            ],
        )
        .unwrap();
        assert_ne!(
            base,
            canonical_key(&methods, &config, &other_game, &initial)
        );

        let tighter = SolverConfig {
            max_steps: 7,
            ..SolverConfig::default()
        };
        assert_ne!(base, canonical_key(&methods, &tighter, &game(), &initial));

        let reordered = vec![PureNashMethod::Exhaustive, PureNashMethod::BestResponse];
        assert_ne!(base, canonical_key(&reordered, &config, &game(), &initial));

        let busy = LinkLoads::new(vec![1.0, 0.0, 0.0]).unwrap();
        assert_ne!(base, canonical_key(&methods, &config, &game(), &busy));

        assert_eq!(base, canonical_key(&methods, &config, &game(), &initial));
    }

    #[test]
    fn keys_identify_signed_zero_initial_loads() {
        // `-0.0` satisfies `LinkLoads`' non-negativity validation but has a
        // different bit pattern than `+0.0`; the canonical key must treat
        // the two semantically identical instances as one.
        let config = SolverConfig::default();
        let methods = vec![PureNashMethod::BestResponse];
        let pos = LinkLoads::new(vec![0.0, 1.0, 0.0]).unwrap();
        let neg = LinkLoads::new(vec![-0.0, 1.0, -0.0]).unwrap();
        assert_eq!(
            canonical_key(&methods, &config, &game(), &pos),
            canonical_key(&methods, &config, &game(), &neg)
        );
        // Genuinely different loads still separate.
        let other = LinkLoads::new(vec![0.0, 1.5, 0.0]).unwrap();
        assert_ne!(
            canonical_key(&methods, &config, &game(), &pos),
            canonical_key(&methods, &config, &game(), &other)
        );
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = SolveCache::new();
        assert!(cache.is_empty());
        let key = vec![1u8, 2, 3];
        assert!(cache.lookup(&key).is_none());
        cache.insert(
            key.clone(),
            EngineSolution {
                solution: None,
                telemetry: Default::default(),
            },
        );
        assert!(cache.lookup(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn a_full_cache_stops_growing_but_keeps_serving_stored_entries() {
        let cache = SolveCache::bounded(1);
        let solution = EngineSolution {
            solution: None,
            telemetry: Default::default(),
        };
        cache.insert(vec![1], solution.clone());
        cache.insert(vec![2], solution.clone());
        assert_eq!(cache.len(), 1, "capacity bound must hold");
        assert!(cache.lookup(&[1]).is_some());
        assert!(cache.lookup(&[2]).is_none());
        assert_eq!(cache.stats().evictions, 0);
        // Re-inserting a stored key is still allowed at capacity.
        cache.insert(vec![1], solution);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn an_lru_cache_evicts_and_counts() {
        let solution = EngineSolution {
            solution: None,
            telemetry: Default::default(),
        };
        let cache = SolveCache::lru(2);
        cache.insert(vec![1], solution.clone());
        cache.insert(vec![2], solution.clone());
        assert!(cache.lookup(&[1]).is_some()); // refresh key 1
        cache.insert(vec![3], solution);
        assert!(cache.lookup(&[2]).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(&[1]).is_some());
        assert!(cache.lookup(&[3]).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.capacity(), 2);
    }
}
