//! Equilibrium solvers: the exhaustive reference solver, the multi-restart
//! [`local_search`] backend for huge games, the structure-of-arrays
//! [`kernel`] layer their hot paths run on, the unified, parallel [`engine`]
//! that orchestrates every pure-NE algorithm in the crate, and the
//! differential-testing [`oracle`] every backend is certified against.

pub mod cache;
pub mod engine;
pub mod exhaustive;
pub mod kernel;
pub mod local_search;
pub mod oracle;

pub use cache::{CacheStats, SolveCache};
pub use engine::{
    Applicability, EngineSolution, RepairOutcome, RepairTelemetry, SolveTelemetry, Solver,
    SolverAttempt, SolverConfig, SolverDetail, SolverEngine, SolverKind,
};
pub use kernel::{KernelRun, KernelScratch, SoAArena, SoAGame, SoAView};
pub use local_search::LocalSearch;
