//! Equilibrium solvers: the exhaustive reference solver and the unified,
//! parallel [`engine`] that orchestrates every pure-NE algorithm in the crate.

pub mod cache;
pub mod engine;
pub mod exhaustive;

pub use cache::{CacheStats, SolveCache};
pub use engine::{
    Applicability, EngineSolution, SolveTelemetry, Solver, SolverAttempt, SolverConfig,
    SolverDetail, SolverEngine,
};
