//! Exact solvers used as references for the polynomial-time algorithms and for
//! the social-optimum denominators of the price of anarchy.

pub mod exhaustive;
