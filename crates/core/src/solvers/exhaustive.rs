//! Exhaustive enumeration over the `mⁿ` pure profiles.
//!
//! Used as a ground-truth reference for the enumeration of all pure Nash
//! equilibria. The exact social optima OPT1/OPT2 of Section 2 historically
//! lived here too; they moved behind the [`crate::opt`] estimator trait
//! ([`crate::opt::exhaustive`]) and are re-exported for compatibility.

pub use crate::opt::exhaustive::{social_optimum, SocialOptimum};

use crate::equilibrium::is_pure_nash;
use crate::error::{GameError, Result};
use crate::model::EffectiveGame;
use crate::numeric::Tolerance;
use crate::strategy::{LinkLoads, PureProfile};

/// Default cap on the number of profiles an exhaustive routine will visit.
pub const DEFAULT_PROFILE_LIMIT: u128 = 2_000_000;

/// Number of pure profiles `mⁿ` of a game with `n` users and `m` links.
pub fn profile_count(users: usize, links: usize) -> u128 {
    (links as u128).saturating_pow(users as u32)
}

pub(crate) fn ensure_within_limit(game: &EffectiveGame, limit: u128) -> Result<()> {
    let profiles = profile_count(game.users(), game.links());
    if profiles > limit {
        return Err(GameError::TooLarge { profiles, limit });
    }
    Ok(())
}

/// Calls `f` for every pure profile of an `n`-user, `m`-link game, in
/// lexicographic order (user 0 varies fastest).
pub fn for_each_profile<F: FnMut(&PureProfile)>(users: usize, links: usize, mut f: F) {
    let mut choices = vec![0usize; users];
    loop {
        f(&PureProfile::new(choices.clone()));
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == users {
                return;
            }
            choices[pos] += 1;
            if choices[pos] < links {
                break;
            }
            choices[pos] = 0;
            pos += 1;
        }
    }
}

/// All pure Nash equilibria of `game` with initial traffic `initial`.
///
/// # Errors
/// Fails when `mⁿ` exceeds `limit`.
pub fn all_pure_nash(
    game: &EffectiveGame,
    initial: &LinkLoads,
    tol: Tolerance,
    limit: u128,
) -> Result<Vec<PureProfile>> {
    ensure_within_limit(game, limit)?;
    let mut equilibria = Vec::new();
    for_each_profile(game.users(), game.links(), |profile| {
        if is_pure_nash(game, profile, initial, tol) {
            equilibria.push(profile.clone());
        }
    });
    Ok(equilibria)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opposed_game() -> EffectiveGame {
        EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]]).unwrap()
    }

    #[test]
    fn profile_enumeration_visits_every_profile_once() {
        let mut seen = Vec::new();
        for_each_profile(3, 2, |p| seen.push(p.choices().to_vec()));
        assert_eq!(seen.len(), 8);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn profile_count_matches_enumeration() {
        assert_eq!(profile_count(3, 2), 8);
        assert_eq!(profile_count(4, 3), 81);
        assert_eq!(profile_count(0, 5), 1);
    }

    #[test]
    fn limits_are_enforced() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        assert!(matches!(
            all_pure_nash(&g, &t, Tolerance::default(), 3),
            Err(GameError::TooLarge { .. })
        ));
    }

    #[test]
    fn opposed_game_has_unique_pure_nash() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        let all = all_pure_nash(&g, &t, Tolerance::default(), 1_000).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].choices(), &[0, 1]);
    }

    #[test]
    fn identical_everything_has_two_split_equilibria() {
        // Two identical users, two identical links: both split profiles are NE;
        // the profiles where they share a link are not.
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let t = LinkLoads::zero(2);
        let all = all_pure_nash(&g, &t, Tolerance::default(), 1_000).unwrap();
        assert_eq!(all.len(), 2);
        for p in &all {
            assert_ne!(p.link(0), p.link(1));
        }
    }
}
