//! Exhaustive enumeration over the `mⁿ` pure profiles.
//!
//! Used as a ground-truth reference: enumeration of all pure Nash equilibria,
//! and exact computation of the social optima OPT1/OPT2 that appear in the
//! coordination-ratio definitions of Section 2.

use serde::{Deserialize, Serialize};

use crate::equilibrium::is_pure_nash;
use crate::error::{GameError, Result};
use crate::latency::pure_user_latency;
use crate::model::EffectiveGame;
use crate::numeric::{stable_sum, Tolerance};
use crate::strategy::{LinkLoads, PureProfile};

/// Default cap on the number of profiles an exhaustive routine will visit.
pub const DEFAULT_PROFILE_LIMIT: u128 = 2_000_000;

/// Number of pure profiles `mⁿ` of a game with `n` users and `m` links.
pub fn profile_count(users: usize, links: usize) -> u128 {
    (links as u128).saturating_pow(users as u32)
}

fn ensure_within_limit(game: &EffectiveGame, limit: u128) -> Result<()> {
    let profiles = profile_count(game.users(), game.links());
    if profiles > limit {
        return Err(GameError::TooLarge { profiles, limit });
    }
    Ok(())
}

/// Calls `f` for every pure profile of an `n`-user, `m`-link game, in
/// lexicographic order (user 0 varies fastest).
pub fn for_each_profile<F: FnMut(&PureProfile)>(users: usize, links: usize, mut f: F) {
    let mut choices = vec![0usize; users];
    loop {
        f(&PureProfile::new(choices.clone()));
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == users {
                return;
            }
            choices[pos] += 1;
            if choices[pos] < links {
                break;
            }
            choices[pos] = 0;
            pos += 1;
        }
    }
}

/// All pure Nash equilibria of `game` with initial traffic `initial`.
///
/// # Errors
/// Fails when `mⁿ` exceeds `limit`.
pub fn all_pure_nash(
    game: &EffectiveGame,
    initial: &LinkLoads,
    tol: Tolerance,
    limit: u128,
) -> Result<Vec<PureProfile>> {
    ensure_within_limit(game, limit)?;
    let mut equilibria = Vec::new();
    for_each_profile(game.users(), game.links(), |profile| {
        if is_pure_nash(game, profile, initial, tol) {
            equilibria.push(profile.clone());
        }
    });
    Ok(equilibria)
}

/// The exact social optima of a game (Section 2): the minimum over all pure
/// assignments of the sum (`OPT1`) and of the maximum (`OPT2`) of the users'
/// expected latencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocialOptimum {
    /// `OPT1(G)`: minimum total expected latency.
    pub opt1: f64,
    /// A profile attaining `OPT1`.
    pub opt1_profile: PureProfile,
    /// `OPT2(G)`: minimum of the maximum expected latency.
    pub opt2: f64,
    /// A profile attaining `OPT2`.
    pub opt2_profile: PureProfile,
}

/// Computes [`SocialOptimum`] exactly by enumerating all pure profiles.
///
/// # Errors
/// Fails when `mⁿ` exceeds `limit`.
pub fn social_optimum(
    game: &EffectiveGame,
    initial: &LinkLoads,
    limit: u128,
) -> Result<SocialOptimum> {
    ensure_within_limit(game, limit)?;
    let mut best: Option<SocialOptimum> = None;
    for_each_profile(game.users(), game.links(), |profile| {
        let latencies: Vec<f64> = (0..game.users())
            .map(|i| pure_user_latency(game, profile, initial, i))
            .collect();
        let sum = stable_sum(&latencies);
        let max = latencies.iter().cloned().fold(f64::MIN, f64::max);
        match &mut best {
            None => {
                best = Some(SocialOptimum {
                    opt1: sum,
                    opt1_profile: profile.clone(),
                    opt2: max,
                    opt2_profile: profile.clone(),
                });
            }
            Some(b) => {
                if sum < b.opt1 {
                    b.opt1 = sum;
                    b.opt1_profile = profile.clone();
                }
                if max < b.opt2 {
                    b.opt2 = max;
                    b.opt2_profile = profile.clone();
                }
            }
        }
    });
    Ok(best.expect("a validated game has at least one profile"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opposed_game() -> EffectiveGame {
        EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]]).unwrap()
    }

    #[test]
    fn profile_enumeration_visits_every_profile_once() {
        let mut seen = Vec::new();
        for_each_profile(3, 2, |p| seen.push(p.choices().to_vec()));
        assert_eq!(seen.len(), 8);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn profile_count_matches_enumeration() {
        assert_eq!(profile_count(3, 2), 8);
        assert_eq!(profile_count(4, 3), 81);
        assert_eq!(profile_count(0, 5), 1);
    }

    #[test]
    fn limits_are_enforced() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        assert!(matches!(
            all_pure_nash(&g, &t, Tolerance::default(), 3),
            Err(GameError::TooLarge { .. })
        ));
        assert!(social_optimum(&g, &t, 3).is_err());
    }

    #[test]
    fn opposed_game_has_unique_pure_nash() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        let all = all_pure_nash(&g, &t, Tolerance::default(), 1_000).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].choices(), &[0, 1]);
    }

    #[test]
    fn identical_everything_has_two_split_equilibria() {
        // Two identical users, two identical links: both split profiles are NE;
        // the profiles where they share a link are not.
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let t = LinkLoads::zero(2);
        let all = all_pure_nash(&g, &t, Tolerance::default(), 1_000).unwrap();
        assert_eq!(all.len(), 2);
        for p in &all {
            assert_ne!(p.link(0), p.link(1));
        }
    }

    #[test]
    fn social_optimum_on_opposed_game_separates_users() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        let opt = social_optimum(&g, &t, 1_000).unwrap();
        assert_eq!(opt.opt1_profile.choices(), &[0, 1]);
        assert_eq!(opt.opt2_profile.choices(), &[0, 1]);
        // Each user alone on its fast (capacity 10) link: latency 0.1 each.
        assert!((opt.opt1 - 0.2).abs() < 1e-12);
        assert!((opt.opt2 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn opt1_is_never_larger_than_n_times_opt2() {
        // Simple sanity relation: sum ≤ n·max for the same profile, hence
        // OPT1 ≤ n·OPT2.
        let g = EffectiveGame::from_rows(
            vec![2.0, 1.0, 3.0],
            vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 0.5]],
        )
        .unwrap();
        let t = LinkLoads::zero(2);
        let opt = social_optimum(&g, &t, 1_000).unwrap();
        assert!(opt.opt1 <= 3.0 * opt.opt2 + 1e-12);
        assert!(opt.opt2 <= opt.opt1 + 1e-12);
    }

    #[test]
    fn initial_traffic_shifts_the_optimum() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let heavy = LinkLoads::new(vec![10.0, 0.0]).unwrap();
        let opt = social_optimum(&g, &heavy, 1_000).unwrap();
        // With link 0 saturated, the optimum puts both users on link 1.
        assert_eq!(opt.opt1_profile.choices(), &[1, 1]);
    }
}
