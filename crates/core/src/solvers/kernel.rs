//! Structure-of-arrays solve kernels: the raw-speed floor under every hot
//! solver loop.
//!
//! The accessor-shaped hot paths (`game.capacity(user, link)` plus an f64
//! divide per candidate link) hide the flat `n × m` structure the model
//! actually has. This module exposes that structure once per solve and lets
//! every pass run on it:
//!
//! * [`SoAGame`] — a flat, cache-friendly view of an
//!   [`EffectiveGame`]: the weight vector, the row-major capacity matrix,
//!   the row-major matrix of **precomputed reciprocals** (so cost
//!   evaluation is a multiply, not a divide), and the decreasing-weight
//!   user order (computed once, not once per LPT start). Construction
//!   round-trips losslessly: [`SoAGame::to_game`] rebuilds the original
//!   game bit-for-bit.
//! * [`SoAArena`] — K games packed into one contiguous arena, for
//!   [`SolverEngine::solve_batch`](crate::solvers::engine::SolverEngine::solve_batch)
//!   to advance interleaved per pass while rows stay hot.
//! * [`KernelScratch`] — per-worker scratch (`loads`, improving-link lists)
//!   reused across restarts, passes and batch items, so the steady state
//!   allocates nothing.
//! * [`LocalSearchRun`] / [`BestResponseRun`] — pass-resumable solver state
//!   machines. A single solve loops one run to completion; the batched
//!   engine path round-robins `step` across K runs. Both paths execute the
//!   same code on the same state, so batched results are bit-identical to
//!   sequential ones **by construction**.
//!
//! # Kernel contract: certification, not bit parity
//!
//! Multiplying by a precomputed reciprocal is not bit-equal to dividing, so
//! kernel descent may take a different path than the legacy accessor loops
//! near tolerance boundaries. Equivalence with the legacy solvers is
//! therefore certified the same way the solvers themselves are: every
//! returned profile must pass the canonical [`is_pure_nash`] predicate, and
//! the differential [`oracle`](crate::solvers::oracle) contract (soundness,
//! no phantom equilibria, conclusive completeness) runs against the kernels.
//! When a kernel pass claims convergence but the canonical predicate
//! disagrees (a reciprocal-rounding artefact), the run takes a canonical
//! best-response move and keeps descending — exactly the safety net the
//! pre-kernel `LocalSearch` already carried.

use crate::equilibrium::{best_deviation_of, is_pure_nash};
use crate::model::{EffectiveGame, GameEdit};
use crate::numeric::Tolerance;
use crate::solvers::engine::{SolverConfig, SolverDetail};
use crate::solvers::local_search::SplitMix64;
use crate::strategy::{LinkLoads, PureProfile};

/// Flat, cache-friendly storage of one [`EffectiveGame`].
///
/// `caps` keeps the exact capacity bits (so the view round-trips losslessly
/// and exact-arithmetic consumers like the opt aggregates stay bit-identical)
/// while `inv_caps` carries the precomputed reciprocals the hot loops
/// multiply by.
#[derive(Debug, Clone, PartialEq)]
pub struct SoAGame {
    users: usize,
    links: usize,
    weights: Vec<f64>,
    caps: Vec<f64>,
    inv_caps: Vec<f64>,
    order: Vec<usize>,
}

impl SoAGame {
    /// Flattens `game` into SoA form. `O(nm)` plus one `O(n log n)` sort.
    pub fn from_game(game: &EffectiveGame) -> Self {
        let users = game.users();
        let links = game.links();
        let weights = game.weights().to_vec();
        let mut caps = Vec::with_capacity(users * links);
        for user in 0..users {
            caps.extend_from_slice(game.capacities().row(user));
        }
        let inv_caps: Vec<f64> = caps.iter().map(|&c| 1.0 / c).collect();
        let order = weight_order(&weights);
        SoAGame {
            users,
            links,
            weights,
            caps,
            inv_caps,
            order,
        }
    }

    /// Rebuilds the original [`EffectiveGame`], bit-for-bit.
    pub fn to_game(&self) -> EffectiveGame {
        let rows: Vec<Vec<f64>> = (0..self.users)
            .map(|u| self.caps[u * self.links..(u + 1) * self.links].to_vec())
            .collect();
        EffectiveGame::from_rows(self.weights.clone(), rows)
            .expect("an SoAGame only stores validated games")
    }

    /// Number of users `n`.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of links `m`.
    pub fn links(&self) -> usize {
        self.links
    }

    /// The borrowed view the kernels run on.
    pub fn view(&self) -> SoAView<'_> {
        SoAView {
            users: self.users,
            links: self.links,
            weights: &self.weights,
            caps: &self.caps,
            inv_caps: &self.inv_caps,
            order: &self.order,
        }
    }
}

/// Users in decreasing weight order, ties by index — the LPT order, computed
/// once per game instead of once per greedy start.
fn weight_order(weights: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    order
}

/// A borrowed flat view of one game: what every kernel loop consumes.
///
/// `Copy`, so passes can take it by value without borrow gymnastics.
#[derive(Debug, Clone, Copy)]
pub struct SoAView<'a> {
    /// Number of users `n`.
    pub users: usize,
    /// Number of links `m`.
    pub links: usize,
    /// Traffic vector `w` (`n` entries).
    pub weights: &'a [f64],
    /// Row-major effective capacities (`n × m`).
    pub caps: &'a [f64],
    /// Row-major reciprocals `1/cᵢℓ` (`n × m`).
    pub inv_caps: &'a [f64],
    /// Users in decreasing weight order, ties by index.
    pub order: &'a [usize],
}

impl<'a> SoAView<'a> {
    /// User `user`'s reciprocal row (`m` entries, one slice borrow —
    /// no per-link bounds check in the loops that iterate it).
    #[inline]
    pub fn inv_row(&self, user: usize) -> &'a [f64] {
        &self.inv_caps[user * self.links..(user + 1) * self.links]
    }

    /// User `user`'s capacity row (`m` entries).
    #[inline]
    pub fn cap_row(&self, user: usize) -> &'a [f64] {
        &self.caps[user * self.links..(user + 1) * self.links]
    }

    /// Traffic of `user`.
    #[inline]
    pub fn weight(&self, user: usize) -> f64 {
        self.weights[user]
    }
}

/// K games packed into contiguous SoA storage, advanced interleaved by the
/// batched engine path.
#[derive(Debug, Clone, Default)]
pub struct SoAArena {
    weights: Vec<f64>,
    caps: Vec<f64>,
    inv_caps: Vec<f64>,
    order: Vec<usize>,
    /// Per-game `(users, links, weight offset, matrix offset)`.
    dims: Vec<(usize, usize, usize, usize)>,
}

impl SoAArena {
    /// Packs `games` into one arena. Rows of consecutive games are adjacent,
    /// so a pass interleaved over the batch keeps the cache hot.
    pub fn pack<'g, I>(games: I) -> Self
    where
        I: IntoIterator<Item = &'g EffectiveGame>,
    {
        let mut arena = SoAArena::default();
        for game in games {
            let users = game.users();
            let links = game.links();
            let w_off = arena.weights.len();
            let m_off = arena.caps.len();
            arena.weights.extend_from_slice(game.weights());
            for user in 0..users {
                arena.caps.extend_from_slice(game.capacities().row(user));
            }
            arena
                .inv_caps
                .extend(arena.caps[m_off..].iter().map(|&c| 1.0 / c));
            let order = weight_order(&arena.weights[w_off..]);
            arena.order.extend(order);
            arena.dims.push((users, links, w_off, m_off));
        }
        arena
    }

    /// Number of games packed.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The view of game `k` — identical (including bits) to
    /// `SoAGame::from_game(&games[k]).view()`.
    pub fn view(&self, k: usize) -> SoAView<'_> {
        let (users, links, w_off, m_off) = self.dims[k];
        SoAView {
            users,
            links,
            weights: &self.weights[w_off..w_off + users],
            caps: &self.caps[m_off..m_off + users * links],
            inv_caps: &self.inv_caps[m_off..m_off + users * links],
            order: &self.order[w_off..w_off + users],
        }
    }
}

/// Per-worker scratch buffers reused across restarts, passes and batch
/// items. Runs rebuild `loads` from their profile at the start of every
/// pass, so nothing here persists between `step` calls — one scratch serves
/// any number of interleaved runs.
#[derive(Debug, Default)]
pub struct KernelScratch {
    loads: Vec<f64>,
    improving: Vec<usize>,
}

impl KernelScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// The load buffer, resized to `m` (contents unspecified).
    fn loads(&mut self, links: usize) -> &mut Vec<f64> {
        self.loads.clear();
        self.loads.resize(links, 0.0);
        &mut self.loads
    }
}

/// Rebuilds `loads` (length `m`) from `initial` plus the profile's users.
#[inline]
fn rebuild_loads(view: SoAView<'_>, initial: &[f64], choices: &[usize], loads: &mut [f64]) {
    loads.copy_from_slice(initial);
    for (user, &link) in choices.iter().enumerate() {
        loads[link] += view.weights[user];
    }
}

// ---------------------------------------------------------------------------
// Kernel start builders
// ---------------------------------------------------------------------------
//
// SoA versions of the `local_search` start portfolio, writing into a caller
// buffer instead of allocating. Costs are evaluated multiply-by-reciprocal,
// so at exact cost ties these can differ from the divide-based legacy
// builders — the runs certify the final profile either way.

/// LPT-style greedy start (decreasing weight order, latency-minimal link).
pub(crate) fn lpt_greedy_into(
    view: SoAView<'_>,
    initial: &[f64],
    choices: &mut [usize],
    scratch: &mut KernelScratch,
) {
    let loads = scratch.loads(view.links);
    loads.copy_from_slice(initial);
    for &user in view.order {
        let w = view.weights[user];
        let inv = view.inv_row(user);
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (link, (&load, &inv_c)) in loads.iter().zip(inv).enumerate() {
            let cost = (load + w) * inv_c;
            if cost < best_cost {
                best_cost = cost;
                best = link;
            }
        }
        choices[user] = best;
        loads[best] += w;
    }
}

/// Index-order greedy start (each user on its currently cheapest link).
pub(crate) fn greedy_into(
    view: SoAView<'_>,
    initial: &[f64],
    choices: &mut [usize],
    scratch: &mut KernelScratch,
) {
    let loads = scratch.loads(view.links);
    loads.copy_from_slice(initial);
    for (user, choice) in choices.iter_mut().enumerate().take(view.users) {
        let w = view.weights[user];
        let inv = view.inv_row(user);
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (link, (&load, &inv_c)) in loads.iter().zip(inv).enumerate() {
            let cost = (load + w) * inv_c;
            if cost < best_cost {
                best_cost = cost;
                best = link;
            }
        }
        *choice = best;
        loads[best] += w;
    }
}

/// Load-balanced start (decreasing weight order, least-loaded link,
/// capacity-blind).
pub(crate) fn load_balanced_into(
    view: SoAView<'_>,
    initial: &[f64],
    choices: &mut [usize],
    scratch: &mut KernelScratch,
) {
    let loads = scratch.loads(view.links);
    loads.copy_from_slice(initial);
    for &user in view.order {
        let mut best = 0usize;
        for link in 1..loads.len() {
            if loads[link] < loads[best] {
                best = link;
            }
        }
        choices[user] = best;
        loads[best] += view.weights[user];
    }
}

/// Uniform spread start (`user i → link i mod m`).
pub(crate) fn spread_into(view: SoAView<'_>, choices: &mut [usize]) {
    for (user, choice) in choices.iter_mut().enumerate() {
        *choice = user % view.links;
    }
}

/// Maps a profile certified on a pre-edit game onto the edited game — the
/// warm start of an equilibrium repair.
///
/// The carried assignment is perturbed only where the edit displaced it, and
/// the link loads it induces are updated incrementally (`O(m)` per edit,
/// from `prev_loads`) rather than rebuilt from the full profile:
///
/// * capacity change — no user is displaced; the assignment carries over
///   unchanged (only latencies moved, the descent fixes any new defectors);
/// * leave — the departing user's choice is dropped and later users shift
///   down one index (their link choices are untouched);
/// * join — the appended user is placed by the greedy portfolio step, i.e.
///   on its latency-minimal link under the carried loads (`O(m)`).
///
/// `view` must be the SoA form of the **edited** game and `prev_loads` the
/// loads `prev` induces on the pre-edit game (initial traffic included).
/// The seed is a valid profile of the edited game, not an equilibrium —
/// seeding a [`LocalSearchRun`] with it and re-certifying via the canonical
/// [`is_pure_nash`] is what turns it into one.
pub fn repair_seed(
    view: SoAView<'_>,
    prev: &PureProfile,
    prev_loads: &[f64],
    edit: &GameEdit,
) -> PureProfile {
    match edit {
        GameEdit::CapacityChange { .. } => prev.clone(),
        GameEdit::UserLeaves { user } => {
            let mut choices = prev.choices().to_vec();
            choices.remove(*user);
            PureProfile::new(choices)
        }
        GameEdit::UserJoins { .. } => {
            let mut choices = prev.choices().to_vec();
            let user = view.users - 1;
            let w = view.weight(user);
            let inv = view.inv_row(user);
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (link, (&load, &inv_c)) in prev_loads.iter().zip(inv).enumerate() {
                let cost = (load + w) * inv_c;
                if cost < best_cost {
                    best_cost = cost;
                    best = link;
                }
            }
            choices.push(best);
            PureProfile::new(choices)
        }
    }
}

// ---------------------------------------------------------------------------
// Pass-resumable runs
// ---------------------------------------------------------------------------

/// A pass-resumable kernel solver: `step` advances one bounded pass and
/// returns the finished [`SolverDetail`] when done.
///
/// Runs own their per-game state (profile, RNG, budget counters) and borrow
/// everything transient from the [`KernelScratch`] handed to each step, so
/// K interleaved runs share one scratch. Stepping a run to completion in a
/// loop is exactly the single-solve path — there is no separate batch
/// implementation to diverge from.
pub trait KernelRun {
    /// Advances one pass; `Some` when the solve has finished.
    fn step(&mut self, scratch: &mut KernelScratch) -> Option<SolverDetail>;
}

/// Drives `run` to completion with `scratch` — the single-solve loop.
pub fn run_to_completion(run: &mut dyn KernelRun, scratch: &mut KernelScratch) -> SolverDetail {
    loop {
        if let Some(detail) = run.step(scratch) {
            return detail;
        }
    }
}

/// Shared tail of a kernel pass that found no improving move: certify with
/// the canonical predicate; on disagreement return the canonical move's
/// target so the caller can keep descending.
///
/// `None` means the profile is certified; `Some((user, to))` is the
/// canonical best-response move to take.
fn certify_or_canonical_move(
    game: &EffectiveGame,
    initial: &LinkLoads,
    profile: &PureProfile,
    tol: Tolerance,
) -> Option<(usize, usize)> {
    if is_pure_nash(game, profile, initial, tol) {
        return None;
    }
    (0..game.users())
        .find_map(|u| best_deviation_of(game, profile, initial, u, tol))
        .map(|d| (d.user, d.to))
}

/// Phase of a [`LocalSearchRun`].
enum LsPhase {
    /// Set up the next restart (or finish, if the portfolio is exhausted).
    NextRestart,
    /// Mid-descent on the current restart.
    Descending,
}

/// Pass-resumable state machine of the multi-restart
/// [`LocalSearch`](crate::solvers::local_search::LocalSearch) solver,
/// running entirely on SoA rows.
pub struct LocalSearchRun<'a> {
    game: &'a EffectiveGame,
    initial: &'a LinkLoads,
    view: SoAView<'a>,
    tol: Tolerance,
    ls_seed: u64,
    budget: u64,
    restarts: usize,
    per_restart: u64,
    profile: PureProfile,
    rng: SplitMix64,
    anneal_moves: u64,
    restart: usize,
    restarts_used: u64,
    total_moves: u64,
    slice_budget: u64,
    slice_moves: u64,
    phase: LsPhase,
    /// Warm-start profile consumed by restart 0 when present (repair path);
    /// later restarts fall back into the regular start portfolio.
    seed: Option<PureProfile>,
    /// Whether this run was seeded — the seeded restart descends without an
    /// annealed phase (randomising a certified-adjacent start would discard
    /// exactly the structure the repair carries over).
    warm: bool,
}

impl<'a> LocalSearchRun<'a> {
    /// A run over `game` under `config`'s budgets. `view` must be the SoA
    /// form of `game`.
    pub fn new(
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        view: SoAView<'a>,
        config: &SolverConfig,
    ) -> Self {
        let budget = config.max_steps as u64;
        let restarts = config.restarts.max(1);
        LocalSearchRun {
            game,
            initial,
            view,
            tol: config.tol,
            ls_seed: config.ls_seed,
            budget,
            restarts,
            // Each restart gets an equal slice of the shared move budget
            // (at least one move), so a cycling restart cannot starve the
            // rest of the portfolio.
            per_restart: (budget / restarts as u64).max(1),
            profile: PureProfile::new(vec![0; view.users]),
            rng: SplitMix64::new(config.ls_seed),
            anneal_moves: 0,
            restart: 0,
            restarts_used: 0,
            total_moves: 0,
            slice_budget: 0,
            slice_moves: 0,
            phase: LsPhase::NextRestart,
            seed: None,
            warm: false,
        }
    }

    /// A run whose restart 0 starts from `seed` — a valid profile of `game`
    /// (e.g. a [`repair_seed`] carried over from a pre-edit equilibrium) —
    /// instead of the LPT greedy start. The seeded restart descends without
    /// annealing; if its budget slice runs out the remaining restarts fall
    /// back into the regular start portfolio, so a warm run can never do
    /// worse than losing one portfolio slot.
    pub fn with_seed(
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        view: SoAView<'a>,
        config: &SolverConfig,
        seed: PureProfile,
    ) -> Self {
        debug_assert_eq!(seed.users(), view.users, "seed must fit the game");
        let mut run = LocalSearchRun::new(game, initial, view, config);
        run.seed = Some(seed);
        run.warm = true;
        run
    }

    /// The start profile of restart `r`, written into `self.profile`: the
    /// warm seed when one is pending, then the four smart starts, then
    /// seeded perturbations of the LPT start.
    fn build_start(&mut self, restart: usize, scratch: &mut KernelScratch) {
        if restart == 0 {
            if let Some(seed) = self.seed.take() {
                self.profile = seed;
                return;
            }
        }
        let view = self.view;
        let initial = self.initial.as_slice();
        let choices = self.profile.choices_mut();
        match restart {
            0 => lpt_greedy_into(view, initial, choices, scratch),
            1 => greedy_into(view, initial, choices, scratch),
            2 => load_balanced_into(view, initial, choices, scratch),
            3 => spread_into(view, choices),
            r => {
                lpt_greedy_into(view, initial, choices, scratch);
                let mut rng =
                    SplitMix64::new(self.ls_seed ^ (r as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                let n = view.users;
                let m = view.links;
                for _ in 0..(n / 4).max(1) {
                    let user = rng.next_below(n);
                    choices[user] = rng.next_below(m);
                }
            }
        }
    }

    fn finish(&self, solution: bool) -> SolverDetail {
        SolverDetail {
            solution: solution.then(|| crate::algorithms::PureNashSolution {
                profile: self.profile.clone(),
                method: crate::algorithms::PureNashMethod::LocalSearch,
            }),
            iterations: Some(self.total_moves),
            restarts: Some(self.restarts_used),
        }
    }

    /// One incremental descent pass over all users. Returns the run's
    /// verdict for this pass.
    fn pass(&mut self, scratch: &mut KernelScratch) -> PassVerdict {
        let view = self.view;
        let n = view.users;
        // Split the scratch: `loads` and `improving` are distinct fields, so
        // both can be borrowed at once.
        scratch.loads.clear();
        scratch.loads.resize(view.links, 0.0);
        let loads = &mut scratch.loads;
        let improving = &mut scratch.improving;
        rebuild_loads(view, self.initial.as_slice(), self.profile.choices(), loads);
        let mut moved_in_pass = false;
        for user in 0..n {
            let w = view.weights[user];
            let inv = view.inv_row(user);
            let current_link = self.profile.link(user);
            let current = loads[current_link] * inv[current_link];
            let mut best = current_link;
            let mut best_latency = current;
            improving.clear();
            for (link, (&load, &inv_c)) in loads.iter().zip(inv).enumerate() {
                if link == current_link {
                    continue;
                }
                let latency = (load + w) * inv_c;
                if self.tol.lt(latency, current) {
                    improving.push(link);
                    if latency < best_latency {
                        best_latency = latency;
                        best = link;
                    }
                }
            }
            if improving.is_empty() {
                continue;
            }
            let target = if self.slice_moves < self.anneal_moves {
                improving[self.rng.next_below(improving.len())]
            } else {
                best
            };
            loads[current_link] -= w;
            loads[target] += w;
            self.profile.apply_move(user, target);
            self.slice_moves += 1;
            moved_in_pass = true;
            if self.slice_moves >= self.slice_budget {
                return PassVerdict::Budget;
            }
        }
        if moved_in_pass {
            return PassVerdict::Continue;
        }
        // The incremental pass found no improving move; certify with the
        // canonical predicate before claiming convergence, exactly as the
        // pre-kernel descent did.
        match certify_or_canonical_move(self.game, self.initial, &self.profile, self.tol) {
            None => PassVerdict::Converged,
            Some((user, to)) => {
                self.profile.apply_move(user, to);
                self.slice_moves += 1;
                if self.slice_moves >= self.slice_budget {
                    PassVerdict::Budget
                } else {
                    // Hand control back to the incremental pass loop.
                    PassVerdict::Continue
                }
            }
        }
    }
}

/// Verdict of one [`LocalSearchRun`] descent pass.
enum PassVerdict {
    /// Moves were made; descend further.
    Continue,
    /// Certified pure Nash equilibrium.
    Converged,
    /// The restart's budget slice ran out.
    Budget,
}

impl KernelRun for LocalSearchRun<'_> {
    fn step(&mut self, scratch: &mut KernelScratch) -> Option<SolverDetail> {
        if let LsPhase::NextRestart = self.phase {
            if self.restart >= self.restarts
                || (self.total_moves >= self.budget && self.restart > 0)
            {
                return Some(self.finish(false));
            }
            self.restarts_used += 1;
            let restart = self.restart;
            self.build_start(restart, scratch);
            // Annealed phase: n randomised moves on restart 0, halving with
            // every restart. A warm-seeded restart 0 skips annealing — the
            // seed is already certified-adjacent and should descend directly.
            self.anneal_moves = if self.warm && restart == 0 {
                0
            } else {
                (self.view.users as u64)
                    .checked_shr(restart as u32)
                    .unwrap_or(0)
            };
            self.rng = SplitMix64::new(
                self.ls_seed
                    .wrapping_add((restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            self.slice_budget = self
                .per_restart
                .min(self.budget.saturating_sub(self.total_moves).max(1));
            self.slice_moves = 0;
            self.phase = LsPhase::Descending;
        }
        match self.pass(scratch) {
            PassVerdict::Continue => None,
            PassVerdict::Converged => {
                self.total_moves += self.slice_moves;
                Some(self.finish(true))
            }
            PassVerdict::Budget => {
                self.total_moves += self.slice_moves;
                self.restart += 1;
                self.phase = LsPhase::NextRestart;
                None
            }
        }
    }
}

/// How a [`BestResponseRun`] starts.
pub enum BrStart {
    /// The kernel index-order greedy start ([`greedy_into`]).
    Greedy,
    /// An explicit start profile.
    Profile(PureProfile),
}

/// Pass-resumable best-response dynamics on SoA rows.
///
/// Semantics match
/// [`BestResponseDynamics`](crate::algorithms::best_response::BestResponseDynamics):
/// round-robin is a circular scan moving every defector as it is examined
/// (the legacy scan-from-cursor loop visits users in exactly this order);
/// largest-gain scans all users and moves the first-best. Link loads are
/// maintained incrementally — the `O(n)`-per-link-query recomputation the
/// legacy primitives did is the main cost this kernel removes — and rebuilt
/// from the profile at every step, bounding float drift to one pass.
pub struct BestResponseRun<'a> {
    game: &'a EffectiveGame,
    initial: &'a LinkLoads,
    view: SoAView<'a>,
    tol: Tolerance,
    max_steps: u64,
    largest_gain: bool,
    profile: PureProfile,
    started: bool,
    start: BrStart,
    cursor: usize,
    steps: u64,
}

impl<'a> BestResponseRun<'a> {
    /// A run over `game` with `view` its SoA form.
    pub fn new(
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        view: SoAView<'a>,
        start: BrStart,
        max_steps: u64,
        largest_gain: bool,
        tol: Tolerance,
    ) -> Self {
        BestResponseRun {
            game,
            initial,
            view,
            tol,
            max_steps,
            largest_gain,
            profile: PureProfile::new(vec![0; view.users]),
            started: false,
            start,
            cursor: 0,
            steps: 0,
        }
    }

    fn finish(&self, converged: bool) -> SolverDetail {
        SolverDetail {
            solution: converged.then(|| crate::algorithms::PureNashSolution {
                profile: self.profile.clone(),
                method: crate::algorithms::PureNashMethod::BestResponse,
            }),
            iterations: Some(self.steps),
            restarts: None,
        }
    }

    /// Best-response moves taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Consumes the run, yielding its current profile — the final profile
    /// once `step` has returned `Some` (needed by the dynamics wrapper,
    /// whose step-limit outcome reports the profile it stalled on).
    pub fn into_profile(self) -> PureProfile {
        self.profile
    }

    /// The kernel best response of `user` under `loads`: the latency-minimal
    /// link (first wins), with ties against the current link resolved in the
    /// current link's favour — the tie policy of
    /// [`best_response`](crate::equilibrium::best_response).
    #[inline]
    fn best_link(&self, loads: &[f64], user: usize) -> (usize, f64, f64) {
        let w = self.view.weights[user];
        let inv = self.view.inv_row(user);
        let current_link = self.profile.link(user);
        let current = loads[current_link] * inv[current_link];
        let mut best = 0usize;
        let mut best_latency = f64::INFINITY;
        for (link, (&load, &inv_c)) in loads.iter().zip(inv).enumerate() {
            let latency = if link == current_link {
                current
            } else {
                (load + w) * inv_c
            };
            if latency < best_latency {
                best_latency = latency;
                best = link;
            }
        }
        if self.tol.leq(current, best_latency) {
            (current_link, current, current)
        } else {
            (best, best_latency, current)
        }
    }

    /// One round-robin sweep: up to `n` examinations from the cursor, moving
    /// every defector encountered.
    fn round_robin_pass(&mut self, loads: &mut [f64]) -> PassVerdict {
        let n = self.view.users;
        let mut quiet = 0usize;
        for _ in 0..n {
            if self.steps >= self.max_steps {
                return PassVerdict::Budget;
            }
            let user = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            let (to, new_latency, current) = self.best_link(loads, user);
            let from = self.profile.link(user);
            if to != from && self.tol.lt(new_latency, current) {
                let w = self.view.weights[user];
                loads[from] -= w;
                loads[to] += w;
                self.profile.apply_move(user, to);
                self.steps += 1;
                quiet = 0;
            } else {
                quiet += 1;
                if quiet >= n {
                    return PassVerdict::Converged;
                }
            }
        }
        PassVerdict::Continue
    }

    /// One largest-gain step: scan all users, move the first-best defector.
    fn largest_gain_pass(&mut self, loads: &mut [f64]) -> PassVerdict {
        if self.steps >= self.max_steps {
            return PassVerdict::Budget;
        }
        let n = self.view.users;
        let mut best: Option<(usize, usize, f64)> = None; // (user, to, gain)
        for user in 0..n {
            let (to, new_latency, current) = self.best_link(loads, user);
            if to == self.profile.link(user) || !self.tol.lt(new_latency, current) {
                continue;
            }
            let gain = current - new_latency;
            if best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                best = Some((user, to, gain));
            }
        }
        match best {
            None => PassVerdict::Converged,
            Some((user, to, _)) => {
                let w = self.view.weights[user];
                loads[self.profile.link(user)] -= w;
                loads[to] += w;
                self.profile.apply_move(user, to);
                self.steps += 1;
                PassVerdict::Continue
            }
        }
    }
}

impl KernelRun for BestResponseRun<'_> {
    fn step(&mut self, scratch: &mut KernelScratch) -> Option<SolverDetail> {
        if !self.started {
            self.started = true;
            match std::mem::replace(&mut self.start, BrStart::Greedy) {
                BrStart::Greedy => greedy_into(
                    self.view,
                    self.initial.as_slice(),
                    self.profile.choices_mut(),
                    scratch,
                ),
                BrStart::Profile(profile) => self.profile = profile,
            }
        }
        scratch.loads.clear();
        scratch.loads.resize(self.view.links, 0.0);
        let loads = &mut scratch.loads;
        rebuild_loads(
            self.view,
            self.initial.as_slice(),
            self.profile.choices(),
            loads,
        );
        let verdict = if self.largest_gain {
            self.largest_gain_pass(loads)
        } else {
            self.round_robin_pass(loads)
        };
        match verdict {
            PassVerdict::Continue => None,
            PassVerdict::Converged => {
                // The kernel sweep found no defector; certify canonically.
                // A reciprocal-rounding disagreement takes a canonical move
                // and keeps iterating (within the step budget).
                match certify_or_canonical_move(self.game, self.initial, &self.profile, self.tol) {
                    None => Some(self.finish(true)),
                    Some((user, to)) => {
                        if self.steps >= self.max_steps {
                            return Some(self.finish(false));
                        }
                        self.profile.apply_move(user, to);
                        self.steps += 1;
                        None
                    }
                }
            }
            PassVerdict::Budget => {
                // Budget exhausted: the final canonical check decides, like
                // the legacy dynamics' tail.
                Some(self.finish(is_pure_nash(
                    self.game,
                    &self.profile,
                    self.initial,
                    self.tol,
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messy_game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 5.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
                vec![0.5, 6.0, 2.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn soa_round_trips_bit_exactly() {
        let game = messy_game();
        let soa = SoAGame::from_game(&game);
        assert_eq!(soa.to_game(), game);
        let view = soa.view();
        assert_eq!(view.users, 4);
        assert_eq!(view.links, 3);
        assert_eq!(view.cap_row(2), &[3.0, 3.0, 0.5]);
        assert_eq!(view.inv_row(2), &[1.0 / 3.0, 1.0 / 3.0, 2.0]);
        // Decreasing weight order: w = [3, 1, 2, 5].
        assert_eq!(view.order, &[3, 0, 2, 1]);
    }

    #[test]
    fn arena_views_match_single_game_views() {
        let games = [messy_game(), messy_game()];
        let arena = SoAArena::pack(&games);
        assert_eq!(arena.len(), 2);
        for (k, game) in games.iter().enumerate() {
            let single = SoAGame::from_game(game);
            let sv = single.view();
            let av = arena.view(k);
            assert_eq!(av.weights, sv.weights);
            assert_eq!(av.caps, sv.caps);
            assert_eq!(av.inv_caps, sv.inv_caps);
            assert_eq!(av.order, sv.order);
        }
    }

    #[test]
    fn kernel_local_search_converges_and_certifies() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let config = SolverConfig::default();
        let soa = SoAGame::from_game(&game);
        let mut scratch = KernelScratch::new();
        let mut run = LocalSearchRun::new(&game, &initial, soa.view(), &config);
        let detail = run_to_completion(&mut run, &mut scratch);
        let solution = detail.solution.expect("tiny instance converges");
        assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
        assert_eq!(detail.restarts, Some(1));
    }

    #[test]
    fn kernel_best_response_converges_and_certifies() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let config = SolverConfig::default();
        let soa = SoAGame::from_game(&game);
        let mut scratch = KernelScratch::new();
        for largest_gain in [false, true] {
            let mut run = BestResponseRun::new(
                &game,
                &initial,
                soa.view(),
                BrStart::Greedy,
                config.max_steps as u64,
                largest_gain,
                config.tol,
            );
            let detail = run_to_completion(&mut run, &mut scratch);
            let solution = detail.solution.expect("tiny instance converges");
            assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
        }
    }

    #[test]
    fn repair_seed_carries_the_assignment_across_each_edit_kind() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let config = SolverConfig::default();
        let soa = SoAGame::from_game(&game);
        let mut scratch = KernelScratch::new();
        let mut run = LocalSearchRun::new(&game, &initial, soa.view(), &config);
        let prev = run_to_completion(&mut run, &mut scratch)
            .solution
            .expect("tiny instance converges")
            .profile;
        let prev_loads = prev.link_loads(&game, &initial);

        // Capacity change: the assignment carries over verbatim.
        let cap_edit = GameEdit::CapacityChange {
            user: 0,
            link: 1,
            capacity: 10.0,
        };
        let cap_game = game.apply_edit(&cap_edit).unwrap();
        let cap_soa = SoAGame::from_game(&cap_game);
        let seed = repair_seed(cap_soa.view(), &prev, prev_loads.as_slice(), &cap_edit);
        assert_eq!(seed.choices(), prev.choices());

        // Leave: the departing user's choice is dropped, the rest shift.
        let leave = GameEdit::UserLeaves { user: 1 };
        let leave_game = game.apply_edit(&leave).unwrap();
        let leave_soa = SoAGame::from_game(&leave_game);
        let seed = repair_seed(leave_soa.view(), &prev, prev_loads.as_slice(), &leave);
        assert_eq!(seed.users(), 3);
        assert_eq!(seed.link(0), prev.link(0));
        assert_eq!(seed.link(1), prev.link(2));
        assert_eq!(seed.link(2), prev.link(3));

        // Join: the new user lands on its latency-minimal link under the
        // carried loads; everyone else is untouched.
        let join = GameEdit::UserJoins {
            weight: 2.5,
            capacities: vec![1.0, 2.0, 3.0],
        };
        let join_game = game.apply_edit(&join).unwrap();
        let join_soa = SoAGame::from_game(&join_game);
        let seed = repair_seed(join_soa.view(), &prev, prev_loads.as_slice(), &join);
        assert_eq!(seed.users(), 5);
        assert_eq!(&seed.choices()[..4], prev.choices());
        let view = join_soa.view();
        let inv = view.inv_row(4);
        let placed = seed.link(4);
        for link in 0..3 {
            assert!(
                (prev_loads[placed] + 2.5) * inv[placed]
                    <= (prev_loads[link] + 2.5) * inv[link] + 1e-12,
                "join placement must be greedy-minimal"
            );
        }
    }

    #[test]
    fn a_seeded_run_certifies_on_the_edited_game() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let config = SolverConfig::default();
        let soa = SoAGame::from_game(&game);
        let mut scratch = KernelScratch::new();
        let mut run = LocalSearchRun::new(&game, &initial, soa.view(), &config);
        let prev = run_to_completion(&mut run, &mut scratch)
            .solution
            .expect("tiny instance converges")
            .profile;
        let prev_loads = prev.link_loads(&game, &initial);
        let edit = GameEdit::CapacityChange {
            user: 3,
            link: 0,
            capacity: 0.05,
        };
        let edited = game.apply_edit(&edit).unwrap();
        let edited_soa = SoAGame::from_game(&edited);
        let seed = repair_seed(edited_soa.view(), &prev, prev_loads.as_slice(), &edit);
        let mut warm =
            LocalSearchRun::with_seed(&edited, &initial, edited_soa.view(), &config, seed);
        let detail = run_to_completion(&mut warm, &mut scratch);
        let solution = detail.solution.expect("warm run converges");
        assert!(is_pure_nash(
            &edited,
            &solution.profile,
            &initial,
            config.tol
        ));
        // The warm restart is the only one a converging repair consumes.
        assert_eq!(detail.restarts, Some(1));
    }

    #[test]
    fn a_zero_step_budget_gives_up_like_the_legacy_dynamics() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let soa = SoAGame::from_game(&game);
        let mut scratch = KernelScratch::new();
        let mut run = BestResponseRun::new(
            &game,
            &initial,
            soa.view(),
            BrStart::Profile(PureProfile::all_on(4, 0)),
            0,
            false,
            Tolerance::default(),
        );
        let detail = run_to_completion(&mut run, &mut scratch);
        assert!(detail.solution.is_none());
        assert_eq!(detail.iterations, Some(0));
    }
}
