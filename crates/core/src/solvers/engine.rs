//! The unified, parallel solver engine.
//!
//! Historically the crate found pure Nash equilibria through a hard-coded
//! `if`-chain dispatcher. This module replaces that with an explicit
//! composition: each algorithm is a [`Solver`] that reports its own
//! [`Applicability`] to an instance, and a [`SolverEngine`] walks an ordered
//! solver list under shared [`SolverConfig`] budgets, recording
//! [`SolveTelemetry`] (method tried, iterations, wall time) for every
//! attempt. Batch workloads go through [`SolverEngine::solve_batch`], which
//! fans instances out over [`par_exec::parallel_map`]; because every solver
//! is deterministic and `parallel_map` reassembles outputs by task id, batch
//! results are **bit-identical for any worker count**. Wall-clock telemetry
//! is, of course, not deterministic — determinism claims apply to the
//! returned solutions.
//!
//! The legacy entry point
//! [`solve_pure_nash`](crate::algorithms::solve_pure_nash) survives as a thin
//! wrapper over an engine in [`SolverEngine::paper_order`], so existing call
//! sites keep their exact behaviour.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use par_exec::{chunk_ranges, parallel_map, ParallelConfig};

use crate::algorithms::best_response::{BestResponseDynamics, SelectionRule};
use crate::algorithms::{symmetric, two_links, uniform, PureNashMethod, PureNashSolution};
use crate::error::Result;
use crate::model::{EffectiveGame, GameEdit};
use crate::numeric::Tolerance;
use crate::obs::{elapsed_ns, Counter, Histogram, Recorder};
use crate::solvers::cache::{self, CacheStats, SolveCache};
use crate::solvers::exhaustive;
use crate::solvers::kernel::{
    repair_seed, BestResponseRun, BrStart, KernelRun, KernelScratch, LocalSearchRun, SoAArena,
    SoAGame, SoAView,
};
use crate::solvers::local_search::{self, LocalSearch};
use crate::strategy::{LinkLoads, PureProfile};

/// How a [`Solver`] relates to a particular instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Applicability {
    /// Preconditions hold and the solver's answer is conclusive: the paper's
    /// special-case algorithms always return an equilibrium, and exhaustive
    /// enumeration within budget decides existence either way.
    Conclusive,
    /// The solver can be attempted but may fail within its budget without
    /// settling anything (best-response dynamics hitting the step limit).
    Heuristic,
    /// Preconditions do not hold; the engine skips the solver.
    NotApplicable,
}

/// Shared per-solve budgets and numeric tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Comparison tolerance threaded through every equilibrium predicate.
    pub tol: Tolerance,
    /// Step budget for best-response dynamics.
    pub max_steps: usize,
    /// Defector-selection rule for best-response dynamics.
    pub rule: SelectionRule,
    /// Cap on `mⁿ` for exhaustive enumeration.
    pub profile_limit: u128,
    /// Restart budget for [`LocalSearch`] (smart starts + perturbations).
    pub restarts: usize,
    /// Seed of the deterministic annealed tie-breaking stream used by
    /// [`LocalSearch`]; part of the instance-independent budgets, so it is
    /// embedded in cache keys like every other knob.
    pub ls_seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            tol: Tolerance::default(),
            max_steps: BestResponseDynamics::default().max_steps,
            rule: SelectionRule::RoundRobin,
            profile_limit: exhaustive::DEFAULT_PROFILE_LIMIT,
            restarts: local_search::DEFAULT_RESTARTS,
            ls_seed: local_search::DEFAULT_LS_SEED,
        }
    }
}

impl SolverConfig {
    /// A configuration with the given tolerance and default budgets.
    pub fn with_tol(tol: Tolerance) -> Self {
        SolverConfig {
            tol,
            ..SolverConfig::default()
        }
    }
}

/// The result of one solver attempt: a solution (if any) plus the iteration
/// count for iterative methods.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverDetail {
    /// The equilibrium found, if any.
    pub solution: Option<PureNashSolution>,
    /// Iterations performed (best-response moves, profiles enumerated); `None`
    /// for closed-form constructions.
    pub iterations: Option<u64>,
    /// Restarts consumed, for multi-restart methods; `None` otherwise.
    pub restarts: Option<u64>,
}

/// One pure-Nash algorithm viewed as an engine component.
///
/// Implementations must be stateless (or internally synchronised): the engine
/// shares them across worker threads during [`SolverEngine::solve_batch`].
pub trait Solver: Send + Sync {
    /// The method tag this solver reports in solutions and telemetry.
    fn method(&self) -> PureNashMethod;

    /// Whether this solver applies to `game` from `initial` under `config`.
    fn applicability(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Applicability;

    /// Runs the solver, reporting iteration telemetry alongside the solution.
    ///
    /// Only called when [`applicability`](Solver::applicability) did not
    /// return [`Applicability::NotApplicable`].
    fn solve_detailed(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Result<SolverDetail>;

    /// Runs the solver, returning just the solution.
    fn solve(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Result<Option<PureNashSolution>> {
        Ok(self.solve_detailed(game, initial, config)?.solution)
    }

    /// A pass-resumable kernel run over `game`, if this solver has one.
    ///
    /// `view` must be the SoA form of `game` (typically a slice of the batch
    /// arena). Solvers that return `Some` are advanced interleaved by
    /// [`SolverEngine::solve_batch`]; stepping the returned run to completion
    /// must produce exactly what [`solve_detailed`](Solver::solve_detailed)
    /// produces, which the kernel-backed solvers guarantee by implementing
    /// `solve_detailed` as that very loop. The default (`None`) makes the
    /// engine fall back to `solve_detailed` inline — correct for closed-form
    /// and exhaustive solvers whose work is not pass-shaped.
    fn kernel_run<'a>(
        &self,
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        view: SoAView<'a>,
        config: &SolverConfig,
    ) -> Option<Box<dyn KernelRun + 'a>> {
        let _ = (game, initial, view, config);
        None
    }
}

fn is_zero_initial(initial: &LinkLoads) -> bool {
    initial.as_slice().iter().all(|&t| t == 0.0)
}

/// Instances per batch chunk: each worker task packs this many games into one
/// [`SoAArena`] and advances their kernel runs interleaved. Fixed (never
/// derived from the worker count), so chunk boundaries — and therefore batch
/// results — are identical for any parallelism.
const BATCH_CHUNK: usize = 16;

/// `Atwolinks` (Figure 1): any weights, exactly two links.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoLinks;

impl Solver for TwoLinks {
    fn method(&self) -> PureNashMethod {
        PureNashMethod::TwoLinks
    }

    fn applicability(
        &self,
        game: &EffectiveGame,
        _initial: &LinkLoads,
        _config: &SolverConfig,
    ) -> Applicability {
        if game.links() == 2 {
            Applicability::Conclusive
        } else {
            Applicability::NotApplicable
        }
    }

    fn solve_detailed(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        _config: &SolverConfig,
    ) -> Result<SolverDetail> {
        let profile = two_links::solve(game, initial)?;
        Ok(SolverDetail {
            solution: Some(PureNashSolution {
                profile,
                method: self.method(),
            }),
            iterations: None,
            restarts: None,
        })
    }
}

/// `Asymmetric` (Figure 2): identical weights, any number of links, zero
/// initial traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Symmetric;

impl Solver for Symmetric {
    fn method(&self) -> PureNashMethod {
        PureNashMethod::Symmetric
    }

    fn applicability(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Applicability {
        if is_zero_initial(initial) && game.has_identical_weights(config.tol) {
            Applicability::Conclusive
        } else {
            Applicability::NotApplicable
        }
    }

    fn solve_detailed(
        &self,
        game: &EffectiveGame,
        _initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Result<SolverDetail> {
        let profile = symmetric::solve(game, config.tol)?;
        Ok(SolverDetail {
            solution: Some(PureNashSolution {
                profile,
                method: self.method(),
            }),
            iterations: None,
            restarts: None,
        })
    }
}

/// `Auniform` (Figure 3): uniform per-user beliefs.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformBeliefs;

impl Solver for UniformBeliefs {
    fn method(&self) -> PureNashMethod {
        PureNashMethod::UniformBeliefs
    }

    fn applicability(
        &self,
        game: &EffectiveGame,
        _initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Applicability {
        if game.has_uniform_beliefs(config.tol) {
            Applicability::Conclusive
        } else {
            Applicability::NotApplicable
        }
    }

    fn solve_detailed(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Result<SolverDetail> {
        let profile = uniform::solve(game, initial, config.tol)?;
        Ok(SolverDetail {
            solution: Some(PureNashSolution {
                profile,
                method: self.method(),
            }),
            iterations: None,
            restarts: None,
        })
    }
}

/// Best-response dynamics from the greedy starting profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestResponse;

impl Solver for BestResponse {
    fn method(&self) -> PureNashMethod {
        PureNashMethod::BestResponse
    }

    fn applicability(
        &self,
        _game: &EffectiveGame,
        _initial: &LinkLoads,
        _config: &SolverConfig,
    ) -> Applicability {
        Applicability::Heuristic
    }

    fn solve_detailed(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Result<SolverDetail> {
        let dynamics = BestResponseDynamics {
            max_steps: config.max_steps,
            rule: config.rule,
        };
        let outcome = dynamics.run_from_greedy(game, initial, config.tol);
        let iterations = Some(outcome.steps() as u64);
        let solution = outcome.converged().then(|| PureNashSolution {
            profile: outcome.profile().clone(),
            method: self.method(),
        });
        Ok(SolverDetail {
            solution,
            iterations,
            restarts: None,
        })
    }

    fn kernel_run<'a>(
        &self,
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        view: SoAView<'a>,
        config: &SolverConfig,
    ) -> Option<Box<dyn KernelRun + 'a>> {
        Some(Box::new(BestResponseRun::new(
            game,
            initial,
            view,
            BrStart::Greedy,
            config.max_steps as u64,
            matches!(config.rule, SelectionRule::LargestGain),
            config.tol,
        )))
    }
}

/// Exhaustive enumeration of all `mⁿ` pure profiles (conclusive within the
/// profile budget).
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl Solver for Exhaustive {
    fn method(&self) -> PureNashMethod {
        PureNashMethod::Exhaustive
    }

    fn applicability(
        &self,
        game: &EffectiveGame,
        _initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Applicability {
        if exhaustive::profile_count(game.users(), game.links()) <= config.profile_limit {
            Applicability::Conclusive
        } else {
            Applicability::NotApplicable
        }
    }

    fn solve_detailed(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Result<SolverDetail> {
        let iterations = Some(
            exhaustive::profile_count(game.users(), game.links()).min(u64::MAX as u128) as u64,
        );
        let all = exhaustive::all_pure_nash(game, initial, config.tol, config.profile_limit)?;
        let solution = all.into_iter().next().map(|profile| PureNashSolution {
            profile,
            method: self.method(),
        });
        Ok(SolverDetail {
            solution,
            iterations,
            restarts: None,
        })
    }
}

/// One engine attempt at running a solver, as recorded in telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverAttempt {
    /// Which solver ran.
    pub method: PureNashMethod,
    /// Its applicability classification at the time.
    pub applicability: Applicability,
    /// Iterations performed, for iterative methods.
    pub iterations: Option<u64>,
    /// Restarts consumed, for multi-restart methods.
    pub restarts: Option<u64>,
    /// Whether it produced an equilibrium.
    pub found: bool,
    /// Wall-clock nanoseconds spent inside the solver.
    pub wall_ns: u64,
}

/// The built-in solver backends, as data — the registry behind
/// [`SolverEngine::from_kinds`] and the CLI's `--solvers` flag.
///
/// Order matters: an engine built from a kind list tries the kinds in the
/// given order, exactly like [`SolverEngine::with_solvers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// `Atwolinks` — [`TwoLinks`].
    TwoLinks,
    /// `Asymmetric` — [`Symmetric`].
    Symmetric,
    /// `Auniform` — [`UniformBeliefs`].
    UniformBeliefs,
    /// Best-response dynamics — [`BestResponse`].
    BestResponse,
    /// Multi-restart local search — [`LocalSearch`].
    LocalSearch,
    /// Exhaustive enumeration — [`Exhaustive`].
    Exhaustive,
}

impl SolverKind {
    /// Every backend, in the order a "try everything" engine would use.
    pub const ALL: [SolverKind; 6] = [
        SolverKind::TwoLinks,
        SolverKind::Symmetric,
        SolverKind::UniformBeliefs,
        SolverKind::LocalSearch,
        SolverKind::BestResponse,
        SolverKind::Exhaustive,
    ];

    /// The paper's dispatch order ([`SolverEngine::paper_order`]).
    pub const PAPER_ORDER: [SolverKind; 5] = [
        SolverKind::TwoLinks,
        SolverKind::Symmetric,
        SolverKind::UniformBeliefs,
        SolverKind::BestResponse,
        SolverKind::Exhaustive,
    ];

    /// The stable CLI/registry id of this backend.
    pub fn id(self) -> &'static str {
        match self {
            SolverKind::TwoLinks => "two_links",
            SolverKind::Symmetric => "symmetric",
            SolverKind::UniformBeliefs => "uniform",
            SolverKind::BestResponse => "best_response",
            SolverKind::LocalSearch => "local_search",
            SolverKind::Exhaustive => "exhaustive",
        }
    }

    /// Parses a CLI/registry id produced by [`SolverKind::id`].
    pub fn parse(s: &str) -> Option<SolverKind> {
        SolverKind::ALL.into_iter().find(|k| k.id() == s)
    }

    /// The method tag the built solver reports.
    pub fn method(self) -> PureNashMethod {
        match self {
            SolverKind::TwoLinks => PureNashMethod::TwoLinks,
            SolverKind::Symmetric => PureNashMethod::Symmetric,
            SolverKind::UniformBeliefs => PureNashMethod::UniformBeliefs,
            SolverKind::BestResponse => PureNashMethod::BestResponse,
            SolverKind::LocalSearch => PureNashMethod::LocalSearch,
            SolverKind::Exhaustive => PureNashMethod::Exhaustive,
        }
    }

    /// Builds the backend.
    pub fn build(self) -> Box<dyn Solver> {
        match self {
            SolverKind::TwoLinks => Box::new(TwoLinks),
            SolverKind::Symmetric => Box::new(Symmetric),
            SolverKind::UniformBeliefs => Box::new(UniformBeliefs),
            SolverKind::BestResponse => Box::new(BestResponse),
            SolverKind::LocalSearch => Box::new(LocalSearch),
            SolverKind::Exhaustive => Box::new(Exhaustive),
        }
    }
}

/// Telemetry for one [`SolverEngine::solve`] call.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveTelemetry {
    /// Every solver attempt, in engine order (skipped solvers are omitted).
    pub attempts: Vec<SolverAttempt>,
    /// Total wall-clock nanoseconds including engine overhead.
    pub total_wall_ns: u64,
}

impl SolveTelemetry {
    /// The attempt that produced the solution, if any.
    pub fn winning_attempt(&self) -> Option<&SolverAttempt> {
        self.attempts.iter().find(|a| a.found)
    }

    /// Iterations performed by the winning attempt (`None` for closed forms
    /// or when nothing was found).
    pub fn winning_iterations(&self) -> Option<u64> {
        self.winning_attempt().and_then(|a| a.iterations)
    }
}

/// A solution (or conclusive/give-up absence of one) plus telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSolution {
    /// The equilibrium found, if any.
    pub solution: Option<PureNashSolution>,
    /// How the engine got there.
    pub telemetry: SolveTelemetry,
}

impl EngineSolution {
    /// The method that produced the solution, if one was found.
    pub fn method(&self) -> Option<PureNashMethod> {
        self.solution.as_ref().map(|s| s.method)
    }
}

/// Per-repair telemetry: how the warm path of [`SolverEngine::repair`]
/// behaved. Deliberately wall-clock-free, so services can ship it over the
/// wire without breaking replay exactness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairTelemetry {
    /// Improving moves the warm run performed.
    pub moves: u64,
    /// Kernel passes stepped before the warm run settled.
    pub passes: u64,
    /// Restarts the warm run consumed (`1` means the seeded restart alone
    /// sufficed — the expected case for a small edit).
    pub restarts: u64,
    /// Whether the warm run exhausted its budget uncertified and the engine
    /// fell back to a cold [`SolverEngine::solve`].
    pub fallback_cold: bool,
}

/// The result of [`SolverEngine::repair`]: the post-edit game, a solution
/// certified on it, and how the repair path got there.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The edited game the solution is certified against.
    pub game: EffectiveGame,
    /// The certified solution (warm or cold-fallback) plus engine telemetry.
    pub solution: EngineSolution,
    /// The warm path's own telemetry.
    pub repair: RepairTelemetry,
}

/// An ordered list of [`Solver`]s run under shared budgets, with batch-solving
/// over a [`par_exec`] worker pool.
pub struct SolverEngine {
    solvers: Vec<Box<dyn Solver>>,
    config: SolverConfig,
    /// Worker pool for the batch methods; `None` defers to
    /// `ParallelConfig::from_env()` at batch time, keeping single-solve
    /// construction free of environment probes.
    parallel: Option<ParallelConfig>,
    /// Opt-in memoisation layer ([`SolverEngine::with_cache`]); `None` keeps
    /// the engine's historical uncached behaviour.
    cache: Option<Arc<SolveCache>>,
    /// Observability probes ([`SolverEngine::with_recorder`]); the default
    /// disabled recorder costs one predicted branch per probe site.
    recorder: Recorder,
    probes: Option<EngineProbes>,
}

/// Pre-resolved histogram handles so the solve hot loops never take the
/// registry name-lookup lock. Present only when a live recorder is attached.
struct EngineProbes {
    /// `cache.solve.key_ns` — canonical-key construction time.
    key_ns: Arc<Histogram>,
    /// `cache.solve.fill_ns` — cold-solve latency behind a cache miss.
    fill_ns: Arc<Histogram>,
    /// `engine.attempt_ns` — per-solver attempt wall time.
    attempt_ns: Arc<Histogram>,
    /// `kernel.pass_ns` — one interleaved `KernelRun::step` pass.
    pass_ns: Arc<Histogram>,
    /// `engine.repair_ns` — end-to-end [`SolverEngine::repair`] latency,
    /// including a cold fallback when the warm run stalls.
    repair_ns: Arc<Histogram>,
    /// `repair.moves` — improving moves the warm run performed per repair.
    repair_moves: Arc<Histogram>,
    /// `repair.fallback_cold` — repairs whose warm run stalled into a cold
    /// solve.
    repair_fallback: Arc<Counter>,
}

impl EngineProbes {
    fn resolve(recorder: &Recorder) -> Option<Self> {
        Some(EngineProbes {
            key_ns: recorder.histogram("cache.solve.key_ns")?,
            fill_ns: recorder.histogram("cache.solve.fill_ns")?,
            attempt_ns: recorder.histogram("engine.attempt_ns")?,
            pass_ns: recorder.histogram("kernel.pass_ns")?,
            repair_ns: recorder.histogram("engine.repair_ns")?,
            repair_moves: recorder.histogram("repair.moves")?,
            repair_fallback: recorder.counter("repair.fallback_cold")?,
        })
    }
}

impl Default for SolverEngine {
    fn default() -> Self {
        SolverEngine::paper_order(SolverConfig::default())
    }
}

impl SolverEngine {
    /// The dispatch order used throughout the paper's evaluation (and by the
    /// legacy `solve_pure_nash`): the three polynomial special cases, then
    /// best-response dynamics, then exhaustive enumeration.
    pub fn paper_order(config: SolverConfig) -> Self {
        SolverEngine {
            solvers: vec![
                Box::new(TwoLinks),
                Box::new(Symmetric),
                Box::new(UniformBeliefs),
                Box::new(BestResponse),
                Box::new(Exhaustive),
            ],
            config,
            parallel: None,
            cache: None,
            recorder: Recorder::disabled(),
            probes: None,
        }
    }

    /// An engine over the given [`SolverKind`]s, tried in order — the
    /// data-driven form of [`with_solvers`](SolverEngine::with_solvers) used
    /// by the experiment harness's `--solvers` selection.
    pub fn from_kinds(config: SolverConfig, kinds: &[SolverKind]) -> Self {
        SolverEngine::with_solvers(config, kinds.iter().map(|k| k.build()).collect())
    }

    /// An engine with an explicit solver list.
    pub fn with_solvers(config: SolverConfig, solvers: Vec<Box<dyn Solver>>) -> Self {
        SolverEngine {
            solvers,
            config,
            parallel: None,
            cache: None,
            recorder: Recorder::disabled(),
            probes: None,
        }
    }

    /// Attaches an observability [`Recorder`]. A live recorder mirrors the
    /// engine's existing wall-time telemetry into latency histograms
    /// (`cache.solve.key_ns`, `cache.solve.fill_ns`, `engine.attempt_ns`,
    /// `kernel.pass_ns`); the default [`Recorder::disabled`] keeps every
    /// probe a single predicted branch, so hot loops cost nothing extra.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.probes = EngineProbes::resolve(&recorder);
        self.recorder = recorder;
        self
    }

    /// Replaces the worker-pool configuration used by the batch methods
    /// (which otherwise read `ParallelConfig::from_env()` when first needed).
    #[must_use]
    pub fn with_parallelism(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Attaches a content-addressed [`SolveCache`] in front of
    /// [`solve`](SolverEngine::solve) (and therefore the batch methods too).
    ///
    /// Cache keys embed the engine's method list, its budgets and the full
    /// bit pattern of each instance, so hits return exactly what the cold
    /// solve returned — results never change, identical instances just stop
    /// being re-solved. One cache may be shared across engines and threads.
    ///
    /// Caveat: two engines whose solver lists report the same
    /// [`PureNashMethod`] sequence are assumed to behave identically; custom
    /// [`Solver`] impls that reuse a built-in method tag with different
    /// semantics must not share a cache with the built-ins.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<SolveCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Hit/miss counters of the attached cache, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The worker pool the batch methods will use.
    fn pool(&self) -> ParallelConfig {
        self.parallel.unwrap_or_else(ParallelConfig::from_env)
    }

    /// Appends a solver to the end of the strategy list.
    pub fn push_solver(&mut self, solver: Box<dyn Solver>) {
        self.solvers.push(solver);
    }

    /// The shared budgets.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The methods in engine order (handy for asserting selection order).
    pub fn methods(&self) -> Vec<PureNashMethod> {
        self.solvers.iter().map(|s| s.method()).collect()
    }

    /// The method the engine would try first on `game` (the first applicable
    /// solver), without running anything.
    pub fn selected_method(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
    ) -> Option<PureNashMethod> {
        self.solvers
            .iter()
            .find(|s| s.applicability(game, initial, &self.config) != Applicability::NotApplicable)
            .map(|s| s.method())
    }

    /// Finds a pure Nash equilibrium of `game` with initial traffic `initial`.
    ///
    /// Walks the solver list in order, skipping non-applicable solvers. Stops
    /// at the first solution, or at the first [`Applicability::Conclusive`]
    /// solver that reports none (its answer settles non-existence within
    /// budget). Returns `Ok` with an empty solution when every solver was
    /// inconclusive — which, under Conjecture 3.7, means the budgets were too
    /// small, not that no equilibrium exists.
    ///
    /// With a cache attached ([`with_cache`](SolverEngine::with_cache)),
    /// repeated solves of a bit-identical instance return the stored
    /// solution-plus-telemetry instead of re-running the solvers.
    pub fn solve(&self, game: &EffectiveGame, initial: &LinkLoads) -> Result<EngineSolution> {
        let Some(cache) = &self.cache else {
            return self.solve_cold(game, initial);
        };
        let key_start = self.recorder.now();
        let key = cache::canonical_key(&self.methods(), &self.config, game, initial);
        if let (Some(probes), Some(start)) = (&self.probes, key_start) {
            probes.key_ns.record(elapsed_ns(start));
        }
        if let Some(hit) = cache.lookup(&key) {
            return Ok(hit);
        }
        let fill_start = self.recorder.now();
        let solved = self.solve_cold(game, initial)?;
        if let (Some(probes), Some(start)) = (&self.probes, fill_start) {
            probes.fill_ns.record(elapsed_ns(start));
        }
        cache.insert(key, solved.clone());
        Ok(solved)
    }

    /// The uncached solve path: walk the solver list, record telemetry.
    fn solve_cold(&self, game: &EffectiveGame, initial: &LinkLoads) -> Result<EngineSolution> {
        let start = Instant::now();
        let mut attempts = Vec::new();
        for solver in &self.solvers {
            let applicability = solver.applicability(game, initial, &self.config);
            if applicability == Applicability::NotApplicable {
                continue;
            }
            let attempt_start = Instant::now();
            let detail = solver.solve_detailed(game, initial, &self.config)?;
            let wall_ns = attempt_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            if let Some(probes) = &self.probes {
                probes.attempt_ns.record(wall_ns);
            }
            attempts.push(SolverAttempt {
                method: solver.method(),
                applicability,
                iterations: detail.iterations,
                restarts: detail.restarts,
                found: detail.solution.is_some(),
                wall_ns,
            });
            let conclusive = applicability == Applicability::Conclusive;
            if detail.solution.is_some() || conclusive {
                return Ok(EngineSolution {
                    solution: detail.solution,
                    telemetry: SolveTelemetry {
                        attempts,
                        total_wall_ns: start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                    },
                });
            }
        }
        Ok(EngineSolution {
            solution: None,
            telemetry: SolveTelemetry {
                attempts,
                total_wall_ns: start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            },
        })
    }

    /// Repairs a certified equilibrium across one [`GameEdit`] instead of
    /// re-solving the edited game from scratch.
    ///
    /// `prev_certified` must be a profile of the **pre-edit** `game`
    /// (typically certified by an earlier solve). The engine applies the
    /// edit, carries the assignment over with [`repair_seed`], and descends
    /// from it with a warm [`LocalSearchRun`] under the engine's normal
    /// budgets — so the certification guarantee is identical to a cold
    /// solve's: a returned solution passed `is_pure_nash` on the edited game.
    /// If the warm run exhausts its budget uncertified, the engine falls
    /// back to a cold [`solve`](SolverEngine::solve) (flagged in
    /// [`RepairTelemetry::fallback_cold`]), so callers never lose the
    /// guarantee; the stalled warm attempt stays visible in the telemetry.
    ///
    /// The repair path always runs local search regardless of the engine's
    /// solver list; only the fallback walks the configured list.
    pub fn repair(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        prev_certified: &PureProfile,
        edit: &GameEdit,
    ) -> Result<RepairOutcome> {
        prev_certified.validate(game)?;
        let edited = game.apply_edit(edit)?;
        let start = Instant::now();
        let soa = SoAGame::from_game(&edited);
        let prev_loads = prev_certified.link_loads(game, initial);
        let seed = repair_seed(soa.view(), prev_certified, &prev_loads, edit);
        let mut run = LocalSearchRun::with_seed(&edited, initial, soa.view(), &self.config, seed);
        let mut scratch = KernelScratch::new();
        let mut passes = 0u64;
        let detail = loop {
            let pass_start = self.recorder.now();
            let stepped = run.step(&mut scratch);
            if let (Some(probes), Some(t)) = (&self.probes, pass_start) {
                probes.pass_ns.record(elapsed_ns(t));
            }
            passes += 1;
            if let Some(detail) = stepped {
                break detail;
            }
        };
        let warm_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        if let Some(probes) = &self.probes {
            probes.attempt_ns.record(warm_ns);
        }
        let repair = RepairTelemetry {
            moves: detail.iterations.unwrap_or(0),
            passes,
            restarts: detail.restarts.unwrap_or(0),
            fallback_cold: detail.solution.is_none(),
        };
        let warm_attempt = SolverAttempt {
            method: PureNashMethod::LocalSearch,
            applicability: Applicability::Heuristic,
            iterations: detail.iterations,
            restarts: detail.restarts,
            found: detail.solution.is_some(),
            wall_ns: warm_ns,
        };
        let solution = if let Some(found) = detail.solution {
            EngineSolution {
                solution: Some(found),
                telemetry: SolveTelemetry {
                    attempts: vec![warm_attempt],
                    total_wall_ns: warm_ns,
                },
            }
        } else {
            let mut cold = self.solve(&edited, initial)?;
            cold.telemetry.attempts.insert(0, warm_attempt);
            cold.telemetry.total_wall_ns =
                start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            cold
        };
        if let Some(probes) = &self.probes {
            probes
                .repair_ns
                .record(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            probes.repair_moves.record(repair.moves);
            if repair.fallback_cold {
                probes.repair_fallback.incr(1);
            }
        }
        Ok(RepairOutcome {
            game: edited,
            solution,
            repair,
        })
    }

    /// Solves every game in `games` (each from zero initial traffic) over the
    /// engine's worker pool.
    ///
    /// Outputs are indexed like `games`. Instances are packed in fixed-size
    /// chunks into an [`SoAArena`] and kernel-backed solvers are advanced
    /// interleaved, one pass per instance per round, so the flat rows stay
    /// hot and one [`KernelScratch`] serves a whole chunk. Chunk boundaries
    /// depend only on the batch length and every run is deterministic, so
    /// solutions are **bit-identical for any worker count** — and to solving
    /// each instance sequentially with [`solve`](SolverEngine::solve), because
    /// a sequential solve steps the very same run to completion.
    pub fn solve_batch(&self, games: &[EffectiveGame]) -> Vec<Result<EngineSolution>> {
        let zeros: Vec<LinkLoads> = games.iter().map(|g| LinkLoads::zero(g.links())).collect();
        let items: Vec<(&EffectiveGame, &LinkLoads)> = games.iter().zip(&zeros).collect();
        self.solve_batch_items(&items)
    }

    /// Solves every `(game, initial)` pair over the engine's worker pool, with
    /// the same determinism guarantee as [`solve_batch`](SolverEngine::solve_batch).
    pub fn solve_batch_with_initial(
        &self,
        items: &[(EffectiveGame, LinkLoads)],
    ) -> Vec<Result<EngineSolution>> {
        let refs: Vec<(&EffectiveGame, &LinkLoads)> = items.iter().map(|(g, i)| (g, i)).collect();
        self.solve_batch_items(&refs)
    }

    /// The shared batch path: fixed-size chunks fanned out over the pool.
    fn solve_batch_items(
        &self,
        items: &[(&EffectiveGame, &LinkLoads)],
    ) -> Vec<Result<EngineSolution>> {
        let chunks = chunk_ranges(items.len(), items.len().div_ceil(BATCH_CHUNK));
        let solved = parallel_map(&self.pool(), chunks.len(), |c| {
            self.solve_chunk(&items[chunks[c].indices()])
        });
        solved.into_iter().flatten().collect()
    }

    /// Solves one chunk of instances with interleaved kernel runs.
    ///
    /// Each instance owns a slot that walks the solver list exactly like
    /// [`solve_cold`](SolverEngine::solve_cold): skip non-applicable solvers,
    /// stop at the first solution or at a conclusive no. The difference is
    /// pacing, not semantics — solvers that expose a [`Solver::kernel_run`]
    /// are advanced one pass per round across the whole chunk (on views into
    /// the shared [`SoAArena`]), while the rest run inline.
    fn solve_chunk(&self, items: &[(&EffectiveGame, &LinkLoads)]) -> Vec<Result<EngineSolution>> {
        struct Slot<'a> {
            attempts: Vec<SolverAttempt>,
            /// Index into the solver list of the next solver to try.
            next_solver: usize,
            /// The in-flight kernel run, if a kernel-backed solver is active.
            run: Option<Box<dyn KernelRun + 'a>>,
            run_applicability: Applicability,
            run_method: PureNashMethod,
            run_started: Instant,
            started: Instant,
            key: Option<Vec<u8>>,
            done: Option<Result<EngineSolution>>,
        }

        impl Slot<'_> {
            fn finish(&mut self, solution: Option<PureNashSolution>) -> Result<EngineSolution> {
                Ok(EngineSolution {
                    solution,
                    telemetry: SolveTelemetry {
                        attempts: std::mem::take(&mut self.attempts),
                        total_wall_ns: self.started.elapsed().as_nanos().min(u128::from(u64::MAX))
                            as u64,
                    },
                })
            }
        }

        let arena = SoAArena::pack(items.iter().map(|&(game, _)| game));
        let mut scratch = KernelScratch::new();
        let methods = self.cache.as_ref().map(|_| self.methods());
        let mut slots: Vec<Slot<'_>> = items
            .iter()
            .map(|&(game, initial)| {
                let now = Instant::now();
                let mut slot = Slot {
                    attempts: Vec::new(),
                    next_solver: 0,
                    run: None,
                    run_applicability: Applicability::Heuristic,
                    run_method: PureNashMethod::BestResponse,
                    run_started: now,
                    started: now,
                    key: None,
                    done: None,
                };
                if let (Some(cache), Some(methods)) = (&self.cache, &methods) {
                    let key_start = self.recorder.now();
                    let key = cache::canonical_key(methods, &self.config, game, initial);
                    if let (Some(probes), Some(start)) = (&self.probes, key_start) {
                        probes.key_ns.record(elapsed_ns(start));
                    }
                    if let Some(hit) = cache.lookup(&key) {
                        slot.done = Some(Ok(hit));
                    } else {
                        slot.key = Some(key);
                    }
                }
                slot
            })
            .collect();

        let mut open = slots.iter().filter(|s| s.done.is_none()).count();
        while open > 0 {
            for (k, slot) in slots.iter_mut().enumerate() {
                if slot.done.is_some() {
                    continue;
                }
                let (game, initial) = items[k];
                // Advance an in-flight kernel run by one pass.
                if let Some(run) = slot.run.as_mut() {
                    let pass_start = self.recorder.now();
                    let stepped = run.step(&mut scratch);
                    if let (Some(probes), Some(start)) = (&self.probes, pass_start) {
                        probes.pass_ns.record(elapsed_ns(start));
                    }
                    let Some(detail) = stepped else {
                        continue;
                    };
                    slot.run = None;
                    let wall_ns = slot
                        .run_started
                        .elapsed()
                        .as_nanos()
                        .min(u128::from(u64::MAX)) as u64;
                    if let Some(probes) = &self.probes {
                        probes.attempt_ns.record(wall_ns);
                    }
                    slot.attempts.push(SolverAttempt {
                        method: slot.run_method,
                        applicability: slot.run_applicability,
                        iterations: detail.iterations,
                        restarts: detail.restarts,
                        found: detail.solution.is_some(),
                        wall_ns,
                    });
                    if detail.solution.is_some()
                        || slot.run_applicability == Applicability::Conclusive
                    {
                        slot.done = Some(slot.finish(detail.solution));
                    }
                }
                // Walk the solver list until a kernel run is installed, the
                // slot finishes, or the list is exhausted.
                while slot.done.is_none() && slot.run.is_none() {
                    let Some(solver) = self.solvers.get(slot.next_solver) else {
                        slot.done = Some(slot.finish(None));
                        break;
                    };
                    slot.next_solver += 1;
                    let applicability = solver.applicability(game, initial, &self.config);
                    if applicability == Applicability::NotApplicable {
                        continue;
                    }
                    slot.run_started = Instant::now();
                    if let Some(run) = solver.kernel_run(game, initial, arena.view(k), &self.config)
                    {
                        slot.run = Some(run);
                        slot.run_applicability = applicability;
                        slot.run_method = solver.method();
                        break;
                    }
                    match solver.solve_detailed(game, initial, &self.config) {
                        Err(e) => slot.done = Some(Err(e)),
                        Ok(detail) => {
                            let wall_ns = slot
                                .run_started
                                .elapsed()
                                .as_nanos()
                                .min(u128::from(u64::MAX))
                                as u64;
                            if let Some(probes) = &self.probes {
                                probes.attempt_ns.record(wall_ns);
                            }
                            slot.attempts.push(SolverAttempt {
                                method: solver.method(),
                                applicability,
                                iterations: detail.iterations,
                                restarts: detail.restarts,
                                found: detail.solution.is_some(),
                                wall_ns,
                            });
                            if detail.solution.is_some()
                                || applicability == Applicability::Conclusive
                            {
                                slot.done = Some(slot.finish(detail.solution));
                            }
                        }
                    }
                }
                if slot.done.is_some() {
                    open -= 1;
                    if let (Some(cache), Some(key), Some(Ok(solved))) =
                        (&self.cache, slot.key.take(), slot.done.as_ref())
                    {
                        if let Some(probes) = &self.probes {
                            // Fill latency of the miss: slot start to done.
                            probes.fill_ns.record(
                                slot.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                            );
                        }
                        cache.insert(key, solved.clone());
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.done.expect("all slots finished"))
            .collect()
    }

    /// Generates and solves `count` instances, building each from its task id
    /// (from zero initial traffic).
    ///
    /// This is the deterministic Monte-Carlo workhorse: callers derive a
    /// per-task RNG from the task id (e.g. `instance_gen::rng(seed, task)`),
    /// so the sampled games — and therefore the solutions — do not depend on
    /// the worker count or scheduling.
    pub fn solve_sampled<G>(
        &self,
        count: usize,
        make: G,
    ) -> Vec<(EffectiveGame, Result<EngineSolution>)>
    where
        G: Fn(u64) -> EffectiveGame + Sync,
    {
        parallel_map(&self.pool(), count, |task| {
            let game = make(task as u64);
            let result = self.solve(&game, &LinkLoads::zero(game.links()));
            (game, result)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;

    fn general_game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 5.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
                vec![0.5, 6.0, 2.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_order_matches_the_legacy_dispatcher() {
        let engine = SolverEngine::default();
        assert_eq!(
            engine.methods(),
            vec![
                PureNashMethod::TwoLinks,
                PureNashMethod::Symmetric,
                PureNashMethod::UniformBeliefs,
                PureNashMethod::BestResponse,
                PureNashMethod::Exhaustive,
            ]
        );
    }

    #[test]
    fn telemetry_records_every_attempt_in_order() {
        let engine = SolverEngine::default();
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let result = engine.solve(&game, &initial).unwrap();
        let solution = result
            .solution
            .expect("the fixed instance has an equilibrium");
        assert!(is_pure_nash(
            &game,
            &solution.profile,
            &initial,
            Tolerance::default()
        ));
        // Three links, heterogeneous weights, non-uniform beliefs: the first
        // applicable solver is best-response dynamics, and it converges.
        assert_eq!(solution.method, PureNashMethod::BestResponse);
        let attempts = &result.telemetry.attempts;
        assert_eq!(attempts.len(), 1);
        assert_eq!(attempts[0].method, PureNashMethod::BestResponse);
        assert_eq!(attempts[0].applicability, Applicability::Heuristic);
        assert!(attempts[0].found);
        assert!(attempts[0].iterations.is_some());
    }

    #[test]
    fn a_stalled_heuristic_falls_through_to_exhaustive() {
        let config = SolverConfig {
            max_steps: 0,
            ..SolverConfig::default()
        };
        let engine = SolverEngine::paper_order(config);
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let result = engine.solve(&game, &initial).unwrap();
        assert_eq!(result.method(), Some(PureNashMethod::Exhaustive));
        let methods: Vec<_> = result.telemetry.attempts.iter().map(|a| a.method).collect();
        assert_eq!(
            methods,
            vec![PureNashMethod::BestResponse, PureNashMethod::Exhaustive]
        );
        assert!(!result.telemetry.attempts[0].found);
    }

    #[test]
    fn an_empty_engine_gives_up_gracefully() {
        let engine = SolverEngine::with_solvers(SolverConfig::default(), Vec::new());
        let game = general_game();
        let result = engine.solve(&game, &LinkLoads::zero(3)).unwrap();
        assert!(result.solution.is_none());
        assert!(result.telemetry.attempts.is_empty());
    }

    #[test]
    fn cache_hits_return_the_cold_solution_and_telemetry() {
        let cache = Arc::new(SolveCache::new());
        let engine = SolverEngine::default().with_cache(Arc::clone(&cache));
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let cold = engine.solve(&game, &initial).unwrap();
        let hit = engine.solve(&game, &initial).unwrap();
        assert_eq!(cold, hit, "a hit must reproduce the cold solve exactly");
        let stats = engine.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        // A different initial load is a different instance.
        let busy = LinkLoads::new(vec![1.0, 0.0, 0.0]).unwrap();
        engine.solve(&game, &busy).unwrap();
        let stats = engine.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn engines_with_different_budgets_do_not_share_entries() {
        let cache = Arc::new(SolveCache::new());
        let stalled = SolverEngine::paper_order(SolverConfig {
            max_steps: 0,
            ..SolverConfig::default()
        })
        .with_cache(Arc::clone(&cache));
        let fresh = SolverEngine::default().with_cache(Arc::clone(&cache));
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let a = stalled.solve(&game, &initial).unwrap();
        let b = fresh.solve(&game, &initial).unwrap();
        assert_eq!(a.method(), Some(PureNashMethod::Exhaustive));
        assert_eq!(b.method(), Some(PureNashMethod::BestResponse));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    #[test]
    fn repair_certifies_on_the_edited_game_for_each_edit_kind() {
        let engine = SolverEngine::from_kinds(SolverConfig::default(), &[SolverKind::LocalSearch]);
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let prev = engine
            .solve(&game, &initial)
            .unwrap()
            .solution
            .expect("the fixed instance has an equilibrium")
            .profile;
        let edits = [
            GameEdit::UserJoins {
                weight: 2.5,
                capacities: vec![1.5, 3.0, 1.0],
            },
            GameEdit::UserLeaves { user: 1 },
            GameEdit::CapacityChange {
                user: 0,
                link: 2,
                capacity: 0.1,
            },
        ];
        for edit in &edits {
            let outcome = engine.repair(&game, &initial, &prev, edit).unwrap();
            let solution = outcome
                .solution
                .solution
                .as_ref()
                .unwrap_or_else(|| panic!("repair must certify across {:?}", edit));
            assert!(
                is_pure_nash(
                    &outcome.game,
                    &solution.profile,
                    &initial,
                    Tolerance::default()
                ),
                "repair result must be a pure Nash of the edited game ({:?})",
                edit
            );
            assert!(
                !outcome.repair.fallback_cold,
                "warm run suffices ({:?})",
                edit
            );
            assert!(outcome.repair.passes >= 1);
            assert_eq!(
                outcome.repair.restarts, 1,
                "seeded restart alone ({:?})",
                edit
            );
            let attempts = &outcome.solution.telemetry.attempts;
            assert_eq!(attempts.len(), 1);
            assert_eq!(attempts[0].method, PureNashMethod::LocalSearch);
            assert!(attempts[0].found);
        }
    }

    #[test]
    fn a_stalled_repair_falls_back_to_a_cold_solve() {
        // A zero move budget starves the warm run (one move per restart
        // slice is not enough to re-certify after a harsh edit), forcing the
        // cold-fallback path; the paper-order fallback still concludes via
        // exhaustive enumeration.
        let config = SolverConfig {
            max_steps: 0,
            restarts: 1,
            ..SolverConfig::default()
        };
        let solver = SolverEngine::from_kinds(SolverConfig::default(), &[SolverKind::LocalSearch]);
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let prev = solver
            .solve(&game, &initial)
            .unwrap()
            .solution
            .unwrap()
            .profile;
        let edit = GameEdit::CapacityChange {
            user: 3,
            link: prev.link(3),
            capacity: 0.05,
        };
        let engine = SolverEngine::paper_order(config);
        let outcome = engine.repair(&game, &initial, &prev, &edit).unwrap();
        // Whether or not the starved warm run certified, the contract holds:
        // a certified solution on the edited game.
        let solution = outcome
            .solution
            .solution
            .as_ref()
            .expect("fallback concludes");
        assert!(is_pure_nash(
            &outcome.game,
            &solution.profile,
            &initial,
            Tolerance::default()
        ));
        if outcome.repair.fallback_cold {
            // The stalled warm attempt stays visible ahead of the fallback's.
            let attempts = &outcome.solution.telemetry.attempts;
            assert!(attempts.len() >= 2);
            assert_eq!(attempts[0].method, PureNashMethod::LocalSearch);
            assert!(!attempts[0].found);
        }
    }

    #[test]
    fn repair_rejects_a_profile_of_the_wrong_game() {
        let engine = SolverEngine::default();
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let wrong = PureProfile::new(vec![0, 1]); // two users, game has four
        let edit = GameEdit::UserLeaves { user: 0 };
        assert!(engine.repair(&game, &initial, &wrong, &edit).is_err());
    }

    #[test]
    fn repair_records_its_probes_on_a_live_recorder() {
        let registry = Arc::new(crate::obs::Registry::new());
        let recorder = Recorder::new(Arc::clone(&registry));
        let engine = SolverEngine::from_kinds(SolverConfig::default(), &[SolverKind::LocalSearch])
            .with_recorder(recorder);
        let game = general_game();
        let initial = LinkLoads::zero(3);
        let prev = engine
            .solve(&game, &initial)
            .unwrap()
            .solution
            .unwrap()
            .profile;
        let edit = GameEdit::UserLeaves { user: 2 };
        engine.repair(&game, &initial, &prev, &edit).unwrap();
        let snapshot = registry.snapshot();
        let histogram_count = |name: &str| {
            snapshot
                .histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.count)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
        };
        assert_eq!(histogram_count("engine.repair_ns"), 1);
        assert_eq!(histogram_count("repair.moves"), 1);
    }

    #[test]
    fn batch_outputs_are_indexed_like_the_input() {
        let engine = SolverEngine::default().with_parallelism(ParallelConfig::new(4));
        let games: Vec<EffectiveGame> = (0..16)
            .map(|i| {
                EffectiveGame::from_rows(
                    vec![1.0 + i as f64, 2.0],
                    vec![vec![1.0, 2.0], vec![2.0, 1.0]],
                )
                .unwrap()
            })
            .collect();
        let results = engine.solve_batch(&games);
        assert_eq!(results.len(), games.len());
        for (game, result) in games.iter().zip(&results) {
            let solution = result.as_ref().unwrap().solution.as_ref().unwrap();
            assert_eq!(solution.method, PureNashMethod::TwoLinks);
            assert!(is_pure_nash(
                game,
                &solution.profile,
                &LinkLoads::zero(2),
                Tolerance::default()
            ));
        }
    }
}
