//! Differential-testing support: every solver backend is certified against
//! the exhaustive oracle.
//!
//! Cheap iterative backends ([`LocalSearch`], [`BestResponse`]) only earn
//! trust when their fixed points are checked against an exact reference.
//! This module is that reference harness, shared by the workspace's
//! `tests/integration_differential.rs` suite and available to downstream
//! users adding their own [`Solver`] impls. The **contract** every backend
//! must satisfy on instances where the oracle applies (`mⁿ` within the
//! profile budget):
//!
//! 1. **Soundness** — any profile the solver returns passes
//!    [`is_pure_nash`] under the configured tolerance.
//! 2. **No phantom equilibria** — if exhaustive enumeration proves no pure
//!    NE exists, the solver must not return one.
//! 3. **Conclusive completeness** — a solver whose
//!    [`Applicability::Conclusive`] claim means "always finds an
//!    equilibrium when applicable" must not come back empty-handed when the
//!    oracle found one.
//!
//! Heuristic backends may give up within budget (that violates nothing);
//! they may **not** return an uncertified profile. [`check_kinds`] runs the
//! contract for every built-in backend on one instance and returns the
//! violations; a clean instance yields an empty list. Thread-count and
//! shard invariance — the other half of the certification story — are
//! engine-level properties proven by `solve_batch`'s task-id reassembly and
//! tested alongside this harness.
//!
//! [`LocalSearch`]: crate::solvers::local_search::LocalSearch
//! [`BestResponse`]: super::engine::BestResponse

use std::fmt;

use crate::algorithms::PureNashMethod;
use crate::equilibrium::is_pure_nash;
use crate::error::Result;
use crate::model::EffectiveGame;
use crate::solvers::engine::{Applicability, Solver, SolverConfig, SolverKind};
use crate::solvers::exhaustive;
use crate::strategy::LinkLoads;

/// What exhaustive enumeration says about an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleAnswer {
    /// At least one pure NE exists (enumeration found `count` of them).
    Exists {
        /// Number of pure Nash equilibria.
        count: u64,
    },
    /// Enumeration completed and found no pure NE.
    None,
    /// `mⁿ` exceeds the profile budget; the oracle abstains.
    TooLarge,
}

impl OracleAnswer {
    /// `Some(true/false)` when the oracle decided existence, `None` when it
    /// abstained.
    pub fn exists(self) -> Option<bool> {
        match self {
            OracleAnswer::Exists { .. } => Some(true),
            OracleAnswer::None => Some(false),
            OracleAnswer::TooLarge => None,
        }
    }
}

/// Decides pure-NE existence by exhaustive enumeration, within
/// `config.profile_limit`.
pub fn existence_oracle(
    game: &EffectiveGame,
    initial: &LinkLoads,
    config: &SolverConfig,
) -> OracleAnswer {
    if exhaustive::profile_count(game.users(), game.links()) > config.profile_limit {
        return OracleAnswer::TooLarge;
    }
    match exhaustive::all_pure_nash(game, initial, config.tol, config.profile_limit) {
        Ok(all) if all.is_empty() => OracleAnswer::None,
        Ok(all) => OracleAnswer::Exists {
            count: all.len() as u64,
        },
        // Unreachable given the size guard, but abstaining is the safe
        // reading of any enumeration failure.
        Err(_) => OracleAnswer::TooLarge,
    }
}

/// A breach of the differential contract by one solver on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractViolation {
    /// The solver returned a profile that fails [`is_pure_nash`].
    UncertifiedSolution {
        /// The offending backend.
        method: PureNashMethod,
    },
    /// The solver returned a profile although the oracle proved no pure NE
    /// exists.
    PhantomEquilibrium {
        /// The offending backend.
        method: PureNashMethod,
    },
    /// A conclusive solver found nothing although the oracle found an
    /// equilibrium.
    MissedEquilibrium {
        /// The offending backend.
        method: PureNashMethod,
    },
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractViolation::UncertifiedSolution { method } => {
                write!(f, "{method:?} returned a profile that is not a pure NE")
            }
            ContractViolation::PhantomEquilibrium { method } => write!(
                f,
                "{method:?} returned an equilibrium on an instance the oracle proved has none"
            ),
            ContractViolation::MissedEquilibrium { method } => write!(
                f,
                "{method:?} is conclusive but found nothing where the oracle found a pure NE"
            ),
        }
    }
}

/// The outcome of running one backend against the oracle on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferentialReport {
    /// The backend checked.
    pub method: PureNashMethod,
    /// Its applicability claim on the instance.
    pub applicability: Applicability,
    /// Whether it returned a profile (always `false` when skipped as
    /// not-applicable).
    pub found: bool,
    /// Contract breaches; empty means the backend is consistent with the
    /// oracle on this instance.
    pub violations: Vec<ContractViolation>,
}

/// Checks one solver against the oracle's `answer` on one instance.
///
/// Not-applicable solvers are reported with no violations (skipping is
/// always allowed). Solver-level errors propagate as errors — an `Err`
/// from a backend is a harness bug, not a contract violation.
pub fn check_solver(
    solver: &dyn Solver,
    game: &EffectiveGame,
    initial: &LinkLoads,
    config: &SolverConfig,
    answer: OracleAnswer,
) -> Result<DifferentialReport> {
    let applicability = solver.applicability(game, initial, config);
    let mut report = DifferentialReport {
        method: solver.method(),
        applicability,
        found: false,
        violations: Vec::new(),
    };
    if applicability == Applicability::NotApplicable {
        return Ok(report);
    }
    let detail = solver.solve_detailed(game, initial, config)?;
    match detail.solution {
        Some(solution) => {
            report.found = true;
            if !is_pure_nash(game, &solution.profile, initial, config.tol) {
                report
                    .violations
                    .push(ContractViolation::UncertifiedSolution {
                        method: report.method,
                    });
            }
            if answer == OracleAnswer::None {
                report
                    .violations
                    .push(ContractViolation::PhantomEquilibrium {
                        method: report.method,
                    });
            }
        }
        None => {
            if applicability == Applicability::Conclusive
                && matches!(answer, OracleAnswer::Exists { .. })
            {
                report
                    .violations
                    .push(ContractViolation::MissedEquilibrium {
                        method: report.method,
                    });
            }
        }
    }
    Ok(report)
}

/// Runs the differential contract for every kind in `kinds` on one
/// instance, against a single oracle answer. Returns one report per kind,
/// in order.
pub fn check_kinds(
    kinds: &[SolverKind],
    game: &EffectiveGame,
    initial: &LinkLoads,
    config: &SolverConfig,
) -> Result<Vec<DifferentialReport>> {
    let answer = existence_oracle(game, initial, config);
    kinds
        .iter()
        .map(|kind| check_solver(kind.build().as_ref(), game, initial, config, answer))
        .collect()
}

/// All contract violations across every built-in backend on one instance —
/// the one-call form the proptest harness loops on. Empty means every
/// backend agrees with the oracle.
pub fn check_all(
    game: &EffectiveGame,
    initial: &LinkLoads,
    config: &SolverConfig,
) -> Result<Vec<ContractViolation>> {
    Ok(check_kinds(&SolverKind::ALL, game, initial, config)?
        .into_iter()
        .flat_map(|r| r.violations)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::engine::SolverDetail;
    use crate::strategy::PureProfile;

    fn opposed_game() -> EffectiveGame {
        EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]]).unwrap()
    }

    #[test]
    fn the_oracle_decides_small_instances_and_abstains_on_huge_ones() {
        let game = opposed_game();
        let initial = LinkLoads::zero(2);
        let config = SolverConfig::default();
        assert_eq!(
            existence_oracle(&game, &initial, &config),
            OracleAnswer::Exists { count: 1 }
        );
        let tiny_budget = SolverConfig {
            profile_limit: 3,
            ..config
        };
        let answer = existence_oracle(&game, &initial, &tiny_budget);
        assert_eq!(answer, OracleAnswer::TooLarge);
        assert_eq!(answer.exists(), None);
    }

    #[test]
    fn every_builtin_backend_satisfies_the_contract_on_a_fixed_instance() {
        let game = opposed_game();
        let initial = LinkLoads::zero(2);
        let config = SolverConfig::default();
        let violations = check_all(&game, &initial, &config).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// A deliberately broken backend: claims every instance, returns a fixed
    /// (generally wrong) profile.
    struct Liar;

    impl Solver for Liar {
        fn method(&self) -> PureNashMethod {
            PureNashMethod::BestResponse
        }

        fn applicability(
            &self,
            _game: &EffectiveGame,
            _initial: &LinkLoads,
            _config: &SolverConfig,
        ) -> Applicability {
            Applicability::Heuristic
        }

        fn solve_detailed(
            &self,
            game: &EffectiveGame,
            _initial: &LinkLoads,
            _config: &SolverConfig,
        ) -> Result<SolverDetail> {
            Ok(SolverDetail {
                solution: Some(crate::algorithms::PureNashSolution {
                    // Everyone on link 1 is not a NE of the opposed game.
                    profile: PureProfile::all_on(game.users(), 1),
                    method: self.method(),
                }),
                iterations: None,
                restarts: None,
            })
        }
    }

    #[test]
    fn the_harness_catches_uncertified_solutions() {
        let game = opposed_game();
        let initial = LinkLoads::zero(2);
        let config = SolverConfig::default();
        let answer = existence_oracle(&game, &initial, &config);
        let report = check_solver(&Liar, &game, &initial, &config, answer).unwrap();
        assert_eq!(
            report.violations,
            vec![ContractViolation::UncertifiedSolution {
                method: PureNashMethod::BestResponse
            }]
        );
        assert!(!report.violations[0].to_string().is_empty());
    }
}
