//! Seeded multi-restart local search for huge games.
//!
//! `BestResponse` and `Exhaustive` cap the `(n, m)` regime the experiments
//! can explore: exhaustive enumeration dies at `mⁿ`, and the generic
//! best-response primitives recompute link loads from scratch on every
//! latency query (`O(n)` per link, `O(n²m)` per sweep), which hurts at
//! `n = 512`. This module provides [`LocalSearch`], a heuristic backend
//! built for that regime:
//!
//! * **Incremental descent.** Link loads are maintained incrementally, so a
//!   full improvement pass over all users costs `O(nm)` instead of `O(n²m)`.
//!   Loads are re-accumulated from the profile at the start of every pass,
//!   which bounds floating-point drift to a single pass.
//! * **A portfolio of smart starts.** Restart `r` draws from: LPT-style
//!   greedy (users in decreasing weight order, each on its latency-minimal
//!   link), index-order greedy, load-balanced (least total weight,
//!   capacity-blind), uniform spread (`user i → link i mod m`), then
//!   seeded random perturbations of the LPT start.
//! * **Annealed tie-breaking.** Early restarts begin with a randomised phase
//!   (any strictly improving link may be chosen, ties broken by a seeded
//!   [`SplitMix64`] stream); the phase length halves with every restart, so
//!   later restarts are pure steepest-descent. Everything is derived from
//!   [`SolverConfig::ls_seed`] and the restart index — never from global
//!   state — so results are bit-identical across thread counts and shards.
//! * **Certified answers.** A profile is only returned after
//!   [`is_pure_nash`](crate::equilibrium::is_pure_nash) —
//!   the same predicate the differential harness and the
//!   experiments use — confirms it. A convergence claim can therefore never
//!   outrun the equilibrium checker: if the incremental pass and the
//!   canonical predicate ever disagree (a tolerance-boundary artefact), the
//!   solver takes a canonical best-response move and keeps descending.
//!
//! Budgets: at most [`SolverConfig::restarts`] restarts, sharing one
//! [`SolverConfig::max_steps`] move budget. Like best-response dynamics the
//! solver is [`Applicability::Heuristic`]: exhausting the budget settles
//! nothing (under Conjecture 3.7 it means the budget was too small).

use crate::algorithms::PureNashMethod;
use crate::error::Result;
use crate::model::EffectiveGame;
use crate::solvers::engine::{Applicability, Solver, SolverConfig, SolverDetail};
use crate::solvers::kernel::{
    run_to_completion, KernelRun, KernelScratch, LocalSearchRun, SoAGame, SoAView,
};
use crate::strategy::{LinkLoads, PureProfile};

/// Default restart budget of [`LocalSearch`] (`SolverConfig::restarts`).
pub const DEFAULT_RESTARTS: usize = 8;

/// Default seed of the deterministic tie-breaking stream
/// (`SolverConfig::ls_seed`).
pub const DEFAULT_LS_SEED: u64 = 0x10CA_15EA_4C8E_D5EE;

/// A tiny deterministic PRNG (Vigna's SplitMix64). The solver must not
/// depend on an external RNG crate: every draw is derived from
/// `ls_seed ⊕ restart`, keeping solutions bit-identical everywhere.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..n` (`n > 0`).
    pub(crate) fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// LPT-style greedy start: users in decreasing weight order (ties by index),
/// each placed on the link minimising its own expected latency given the
/// users already placed.
pub fn lpt_greedy_profile(game: &EffectiveGame, initial: &LinkLoads) -> PureProfile {
    let n = game.users();
    let m = game.links();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        game.weight(b)
            .partial_cmp(&game.weight(a))
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    let mut loads = initial.clone();
    let mut choices = vec![0usize; n];
    for &user in &order {
        let w = game.weight(user);
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for link in 0..m {
            let cost = (loads.load(link) + w) / game.capacity(user, link);
            if cost < best_cost {
                best_cost = cost;
                best = link;
            }
        }
        choices[user] = best;
        loads.add(best, w);
    }
    PureProfile::new(choices)
}

/// Load-balanced start: users in decreasing weight order, each on the link
/// with the least total weight so far (capacity-blind — deliberately a
/// different shape from the latency-aware greedy starts).
pub fn load_balanced_profile(game: &EffectiveGame, initial: &LinkLoads) -> PureProfile {
    let n = game.users();
    let m = game.links();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        game.weight(b)
            .partial_cmp(&game.weight(a))
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    let mut loads: Vec<f64> = initial.as_slice().to_vec();
    let mut choices = vec![0usize; n];
    for &user in &order {
        let mut best = 0usize;
        for link in 1..m {
            if loads[link] < loads[best] {
                best = link;
            }
        }
        choices[user] = best;
        loads[best] += game.weight(user);
    }
    PureProfile::new(choices)
}

/// Uniform spread start: `user i → link i mod m`.
pub fn spread_profile(game: &EffectiveGame) -> PureProfile {
    let m = game.links();
    PureProfile::new((0..game.users()).map(|i| i % m).collect())
}

/// The start profile of restart `r`: the four smart starts first, then
/// seeded random perturbations of the LPT start (a quarter of the users
/// reassigned uniformly at random).
///
/// This is the divide-based reference formulation of the portfolio the
/// kernel start builders ([`kernel`](crate::solvers::kernel)) implement
/// multiply-by-reciprocal; the live solver uses the kernel builders.
#[cfg(test)]
fn start_profile(
    game: &EffectiveGame,
    initial: &LinkLoads,
    restart: usize,
    seed: u64,
) -> PureProfile {
    use crate::algorithms::best_response::greedy_profile;
    match restart {
        0 => lpt_greedy_profile(game, initial),
        1 => greedy_profile(game, initial),
        2 => load_balanced_profile(game, initial),
        3 => spread_profile(game),
        r => {
            let mut profile = lpt_greedy_profile(game, initial);
            let mut rng = SplitMix64::new(seed ^ (r as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let n = game.users();
            let m = game.links();
            for _ in 0..(n / 4).max(1) {
                let user = rng.next_below(n);
                profile.apply_move(user, rng.next_below(m));
            }
            profile
        }
    }
}

/// The multi-restart local-search backend (see the [module docs](self)).
///
/// The descent itself lives in [`LocalSearchRun`]: a pass-resumable
/// state machine on the SoA kernel rows, shared verbatim between this
/// single-solve path and the engine's interleaved batch path.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSearch;

impl Solver for LocalSearch {
    fn method(&self) -> PureNashMethod {
        PureNashMethod::LocalSearch
    }

    fn applicability(
        &self,
        _game: &EffectiveGame,
        _initial: &LinkLoads,
        _config: &SolverConfig,
    ) -> Applicability {
        Applicability::Heuristic
    }

    fn solve_detailed(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        config: &SolverConfig,
    ) -> Result<SolverDetail> {
        let soa = SoAGame::from_game(game);
        let mut scratch = KernelScratch::new();
        let mut run = LocalSearchRun::new(game, initial, soa.view(), config);
        Ok(run_to_completion(&mut run, &mut scratch))
    }

    fn kernel_run<'a>(
        &self,
        game: &'a EffectiveGame,
        initial: &'a LinkLoads,
        view: SoAView<'a>,
        config: &SolverConfig,
    ) -> Option<Box<dyn KernelRun + 'a>> {
        Some(Box::new(LocalSearchRun::new(game, initial, view, config)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;

    fn messy_game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 5.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
                vec![0.5, 6.0, 2.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn local_search_finds_a_certified_equilibrium() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let config = SolverConfig::default();
        let detail = LocalSearch
            .solve_detailed(&game, &initial, &config)
            .unwrap();
        let solution = detail.solution.expect("the instance has an equilibrium");
        assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
        assert_eq!(solution.method, PureNashMethod::LocalSearch);
        assert_eq!(detail.restarts, Some(1));
    }

    #[test]
    fn local_search_is_deterministic() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let config = SolverConfig::default();
        let a = LocalSearch
            .solve_detailed(&game, &initial, &config)
            .unwrap();
        let b = LocalSearch
            .solve_detailed(&game, &initial, &config)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn a_different_ls_seed_may_change_the_path_but_not_certification() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        for seed in [1u64, 2, 0xDEAD_BEEF] {
            let config = SolverConfig {
                ls_seed: seed,
                ..SolverConfig::default()
            };
            let detail = LocalSearch
                .solve_detailed(&game, &initial, &config)
                .unwrap();
            let solution = detail.solution.expect("must converge on a tiny instance");
            assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
        }
    }

    #[test]
    fn a_zero_move_budget_gives_up_with_telemetry() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let config = SolverConfig {
            max_steps: 0,
            restarts: 3,
            ..SolverConfig::default()
        };
        let detail = LocalSearch
            .solve_detailed(&game, &initial, &config)
            .unwrap();
        // The spread start of this instance is not an equilibrium, so with a
        // ~zero budget the solver must give up (budget is clamped to one
        // move per restart so progress telemetry is still meaningful).
        assert!(detail.iterations.is_some());
        assert!(detail.restarts.is_some());
    }

    #[test]
    fn a_stalled_restart_cannot_starve_the_rest_of_the_portfolio() {
        // Budget-slicing regression: each restart owns budget/restarts
        // moves, so when restart 0 exhausts its slice without converging,
        // the later portfolio starts still run. A random n=64 game whose
        // LPT/greedy starts are not equilibria, with a one-move slice per
        // restart, must therefore consume every restart.
        let n = 64;
        let m = 8;
        let mut rng = SplitMix64::new(11);
        let weights: Vec<f64> = (0..n)
            .map(|_| 0.5 + (rng.next_below(100) as f64) / 50.0)
            .collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| 0.5 + (rng.next_below(100) as f64) / 40.0)
                    .collect()
            })
            .collect();
        let game = EffectiveGame::from_rows(weights, rows).unwrap();
        let initial = LinkLoads::zero(m);
        let config = SolverConfig {
            max_steps: 3,
            restarts: 3,
            ..SolverConfig::default()
        };
        let detail = LocalSearch
            .solve_detailed(&game, &initial, &config)
            .unwrap();
        assert!(
            detail.solution.is_none(),
            "a 1-move slice cannot settle a random n=64 instance"
        );
        assert_eq!(detail.restarts, Some(3), "every restart must get its slice");
        assert_eq!(detail.iterations, Some(3));

        // An absurd restart budget must not overflow the annealing shift
        // (and still solves the instance with the full default move budget).
        let wide = SolverConfig {
            restarts: 100,
            ..SolverConfig::default()
        };
        let detail = LocalSearch.solve_detailed(&game, &initial, &wide).unwrap();
        assert!(detail.solution.is_some());
    }

    #[test]
    fn starts_cover_the_documented_portfolio() {
        let game = messy_game();
        let initial = LinkLoads::zero(3);
        let lpt = lpt_greedy_profile(&game, &initial);
        let balanced = load_balanced_profile(&game, &initial);
        let spread = spread_profile(&game);
        assert_eq!(spread.choices(), &[0, 1, 2, 0]);
        for profile in [&lpt, &balanced, &spread] {
            assert!(profile.validate(&game).is_ok());
        }
        // Perturbed restarts are deterministic in the seed.
        let a = start_profile(&game, &initial, 5, 42);
        let b = start_profile(&game, &initial, 5, 42);
        assert_eq!(a, b);
        let c = start_profile(&game, &initial, 6, 42);
        // Different restart indices perturb differently (overwhelmingly).
        let _ = c;
    }

    #[test]
    fn huge_games_converge_fast() {
        // n = 256, m = 8: far beyond the exhaustive regime, and the
        // incremental descent must still certify an equilibrium quickly.
        let n = 256;
        let m = 8;
        let mut rng = SplitMix64::new(7);
        let weights: Vec<f64> = (0..n)
            .map(|_| 0.5 + (rng.next_below(100) as f64) / 50.0)
            .collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| 0.5 + (rng.next_below(100) as f64) / 40.0)
                    .collect()
            })
            .collect();
        let game = EffectiveGame::from_rows(weights, rows).unwrap();
        let initial = LinkLoads::zero(m);
        let config = SolverConfig::default();
        let detail = LocalSearch
            .solve_detailed(&game, &initial, &config)
            .unwrap();
        let solution = detail.solution.expect("local search must converge");
        assert!(is_pure_nash(&game, &solution.profile, &initial, config.tol));
    }
}
