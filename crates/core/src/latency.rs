//! Latency cost functions (Section 2 of the paper).
//!
//! All functions operate on the reduced [`EffectiveGame`]; the per-state
//! latency of the full belief model is exposed through
//! [`expected_pure_latency_full`] and is used in tests to confirm that the
//! effective-capacity reduction is exact.

use crate::model::{EffectiveGame, Game};
use crate::numeric::{argmin, stable_sum};
use crate::strategy::{LinkLoads, MixedProfile, PureProfile};

/// Latency of user `user` in pure profile `profile` when the network is in
/// state `state` of the full game: `Σ_{k: σₖ = σᵢ} wₖ / c_φ^{σᵢ}`.
pub fn pure_latency_in_state(game: &Game, profile: &PureProfile, state: usize, user: usize) -> f64 {
    let link = profile.link(user);
    let load: f64 = (0..game.users())
        .filter(|&k| profile.link(k) == link)
        .map(|k| game.weight(k))
        .sum();
    load / game.states().capacity(state, link)
}

/// Expected latency of user `user` in pure profile `profile` under its own
/// belief, computed by explicit expectation over the state space
/// (`λ_{i,bᵢ}(σ) = Σ_φ bᵢ(φ) λ_{i,φ}(σ)`).
pub fn expected_pure_latency_full(game: &Game, profile: &PureProfile, user: usize) -> f64 {
    game.beliefs()
        .belief(user)
        .expect(|state| pure_latency_in_state(game, profile, state, user))
}

/// Expected latency `λ_{i,bᵢ}(σ)` of user `user` in pure profile `profile`,
/// on top of the initial link traffic `initial`.
///
/// Uses the effective-capacity identity:
/// `λ_{i,bᵢ}(σ) = (t^{σᵢ} + Σ_{k: σₖ = σᵢ} wₖ) / cᵢ^{σᵢ}`.
pub fn pure_user_latency(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    user: usize,
) -> f64 {
    let link = profile.link(user);
    let load = link_load(game, profile, initial, link);
    load / game.capacity(user, link)
}

/// Expected latency user `user` would experience if it (unilaterally) routed
/// on `link`, with every other user fixed to `profile`.
pub fn pure_user_latency_on_link(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    user: usize,
    link: usize,
) -> f64 {
    let mut load = initial.load(link) + game.weight(user);
    for k in 0..game.users() {
        if k != user && profile.link(k) == link {
            load += game.weight(k);
        }
    }
    load / game.capacity(user, link)
}

/// Total traffic on `link` under `profile` (initial traffic plus assigned users).
pub fn link_load(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    link: usize,
) -> f64 {
    let mut load = initial.load(link);
    for k in 0..game.users() {
        if profile.link(k) == link {
            load += game.weight(k);
        }
    }
    load
}

/// Expected latency `λˡ_{i,bᵢ}(P)` of user `user` on link `link` under the
/// mixed profile `P`: `((1 − pᵢˡ) wᵢ + Wˡ) / cᵢˡ`, where `Wˡ` is the expected
/// traffic on `link`.
pub fn mixed_link_latency(
    game: &EffectiveGame,
    profile: &MixedProfile,
    user: usize,
    link: usize,
) -> f64 {
    let expected = profile.expected_traffic(game);
    mixed_link_latency_with_traffic(game, profile, &expected, user, link)
}

/// As [`mixed_link_latency`], with the expected-traffic vector `Wˡ` supplied by
/// the caller (avoids recomputing it in inner loops).
pub fn mixed_link_latency_with_traffic(
    game: &EffectiveGame,
    profile: &MixedProfile,
    expected_traffic: &[f64],
    user: usize,
    link: usize,
) -> f64 {
    let w = game.weight(user);
    ((1.0 - profile.prob(user, link)) * w + expected_traffic[link]) / game.capacity(user, link)
}

/// The expected latency of user `user` on every link under `P`.
pub fn mixed_user_latencies(game: &EffectiveGame, profile: &MixedProfile, user: usize) -> Vec<f64> {
    let expected = profile.expected_traffic(game);
    (0..game.links())
        .map(|l| mixed_link_latency_with_traffic(game, profile, &expected, user, l))
        .collect()
}

/// The *minimum expected latency cost* `λ_{i,bᵢ}(P) = min_ℓ λˡ_{i,bᵢ}(P)`
/// (equation (1) in the paper), together with a minimising link.
pub fn mixed_min_latency(
    game: &EffectiveGame,
    profile: &MixedProfile,
    user: usize,
) -> (usize, f64) {
    let latencies = mixed_user_latencies(game, profile, user);
    let link = argmin(&latencies);
    (link, latencies[link])
}

/// Minimum expected latency of every user under `P` (the vector the social
/// costs SC1/SC2 are built from).
pub fn mixed_min_latencies(game: &EffectiveGame, profile: &MixedProfile) -> Vec<f64> {
    let expected = profile.expected_traffic(game);
    (0..game.users())
        .map(|user| {
            let latencies: Vec<f64> = (0..game.links())
                .map(|l| mixed_link_latency_with_traffic(game, profile, &expected, user, l))
                .collect();
            latencies[argmin(&latencies)]
        })
        .collect()
}

/// The *expected individual latency* of user `user` under `P`: the expectation
/// of the latency on the link it actually selects,
/// `Σ_ℓ pᵢˡ · λˡ_{i,bᵢ}(P)`.
///
/// At a Nash equilibrium this coincides with [`mixed_min_latency`]; away from
/// equilibrium it is the cost the user actually pays and is used by the
/// simulation harness when reporting realised costs.
pub fn mixed_realized_latency(game: &EffectiveGame, profile: &MixedProfile, user: usize) -> f64 {
    let expected = profile.expected_traffic(game);
    let terms: Vec<f64> = (0..game.links())
        .map(|l| {
            profile.prob(user, l)
                * mixed_link_latency_with_traffic(game, profile, &expected, user, l)
        })
        .collect();
    stable_sum(&terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Belief, BeliefProfile, Game, StateSpace};

    fn effective_game() -> EffectiveGame {
        EffectiveGame::from_rows(vec![1.0, 2.0], vec![vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap()
    }

    #[test]
    fn pure_latency_uses_total_load_on_chosen_link() {
        let g = effective_game();
        let t = LinkLoads::zero(2);
        // Both users on link 0: load 3.
        let p = PureProfile::new(vec![0, 0]);
        assert!((pure_user_latency(&g, &p, &t, 0) - 3.0 / 1.0).abs() < 1e-12);
        assert!((pure_user_latency(&g, &p, &t, 1) - 3.0 / 2.0).abs() < 1e-12);
        // Separate links.
        let q = PureProfile::new(vec![0, 1]);
        assert!((pure_user_latency(&g, &q, &t, 0) - 1.0).abs() < 1e-12);
        assert!((pure_user_latency(&g, &q, &t, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn initial_traffic_is_added_to_loads() {
        let g = effective_game();
        let t = LinkLoads::new(vec![0.5, 1.0]).unwrap();
        let p = PureProfile::new(vec![0, 1]);
        assert!((pure_user_latency(&g, &p, &t, 0) - 1.5).abs() < 1e-12);
        assert!((link_load(&g, &p, &t, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hypothetical_move_latency_excludes_own_current_link() {
        let g = effective_game();
        let t = LinkLoads::zero(2);
        let p = PureProfile::new(vec![0, 0]);
        // If user 0 moved to link 1 it would be alone there: latency 1/2.
        assert!((pure_user_latency_on_link(&g, &p, &t, 0, 1) - 0.5).abs() < 1e-12);
        // Staying on its own link gives the same value as pure_user_latency.
        assert!(
            (pure_user_latency_on_link(&g, &p, &t, 0, 0) - pure_user_latency(&g, &p, &t, 0)).abs()
                < 1e-12
        );
    }

    #[test]
    fn effective_reduction_matches_explicit_state_expectation() {
        // Two states, a user with a non-trivial belief: the expected latency
        // over states must equal the effective-capacity latency.
        let states = StateSpace::from_rows(vec![vec![1.0, 4.0], vec![2.0, 2.0]]).unwrap();
        let beliefs = BeliefProfile::new(vec![
            Belief::new(vec![0.3, 0.7]).unwrap(),
            Belief::new(vec![0.6, 0.4]).unwrap(),
        ])
        .unwrap();
        let game = Game::new(vec![1.5, 2.5], states, beliefs).unwrap();
        let eg = game.effective_game();
        let t = LinkLoads::zero(2);
        for profile in [
            PureProfile::new(vec![0, 0]),
            PureProfile::new(vec![0, 1]),
            PureProfile::new(vec![1, 0]),
            PureProfile::new(vec![1, 1]),
        ] {
            for user in 0..2 {
                let full = expected_pure_latency_full(&game, &profile, user);
                let reduced = pure_user_latency(&eg, &profile, &t, user);
                assert!(
                    (full - reduced).abs() < 1e-12,
                    "profile {:?} user {user}: {full} vs {reduced}",
                    profile.choices()
                );
            }
        }
    }

    #[test]
    fn mixed_latency_formula() {
        let g = effective_game();
        let p = MixedProfile::from_rows(vec![vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap();
        // W^0 = 0.5*1 + 0.25*2 = 1.0 ; W^1 = 0.5*1 + 0.75*2 = 2.0
        let traffic = p.expected_traffic(&g);
        assert!((traffic[0] - 1.0).abs() < 1e-12);
        assert!((traffic[1] - 2.0).abs() < 1e-12);
        // λ^0_0 = ((1-0.5)*1 + 1.0)/1 = 1.5
        assert!((mixed_link_latency(&g, &p, 0, 0) - 1.5).abs() < 1e-12);
        // λ^1_0 = ((1-0.5)*1 + 2.0)/2 = 1.25
        assert!((mixed_link_latency(&g, &p, 0, 1) - 1.25).abs() < 1e-12);
        let (link, lat) = mixed_min_latency(&g, &p, 0);
        assert_eq!(link, 1);
        assert!((lat - 1.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_mixed_profile_matches_pure_latency_for_singletons() {
        // When user i is alone on a link and plays it with probability 1, the
        // mixed latency on that link equals the pure latency.
        let g = effective_game();
        let pure = PureProfile::new(vec![0, 1]);
        let mixed = MixedProfile::from_pure(&pure, 2);
        let t = LinkLoads::zero(2);
        for user in 0..2 {
            let link = pure.link(user);
            let lm = mixed_link_latency(&g, &mixed, user, link);
            let lp = pure_user_latency(&g, &pure, &t, user);
            assert!((lm - lp).abs() < 1e-12);
        }
    }

    #[test]
    fn realized_latency_is_probability_weighted() {
        let g = effective_game();
        let p = MixedProfile::from_rows(vec![vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap();
        let lats = mixed_user_latencies(&g, &p, 0);
        let expected = 0.5 * lats[0] + 0.5 * lats[1];
        assert!((mixed_realized_latency(&g, &p, 0) - expected).abs() < 1e-12);
        // Realised cost is never below the minimum expected latency.
        let (_, min) = mixed_min_latency(&g, &p, 0);
        assert!(mixed_realized_latency(&g, &p, 0) >= min - 1e-12);
    }

    #[test]
    fn min_latencies_vector_matches_per_user_queries() {
        let g = effective_game();
        let p = MixedProfile::uniform(2, 2);
        let all = mixed_min_latencies(&g, &p);
        for (user, &joint) in all.iter().enumerate() {
            let (_, single) = mixed_min_latency(&g, &p, user);
            assert!((joint - single).abs() < 1e-12);
        }
    }
}
