//! Nash-equilibrium predicates and best-response primitives.

use serde::{Deserialize, Serialize};

use crate::latency::{
    mixed_link_latency_with_traffic, pure_user_latency, pure_user_latency_on_link,
};
use crate::model::EffectiveGame;
use crate::numeric::{argmin, Tolerance};
use crate::strategy::{LinkLoads, MixedProfile, PureProfile};

/// A profitable unilateral deviation found in a pure profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deviation {
    /// The defecting user.
    pub user: usize,
    /// The link the user currently plays.
    pub from: usize,
    /// The link the user would rather play.
    pub to: usize,
    /// Expected latency on the current link.
    pub current_latency: f64,
    /// Expected latency after the move.
    pub new_latency: f64,
}

impl Deviation {
    /// The latency improvement the deviation yields.
    pub fn gain(&self) -> f64 {
        self.current_latency - self.new_latency
    }
}

/// The best response of `user` against `profile` (others fixed): the link with
/// the lowest expected latency for the user, and that latency.
///
/// Ties are broken in favour of the user's current link (so a user that is
/// already best-responding never appears to deviate), then by lowest index.
pub fn best_response(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    user: usize,
    tol: Tolerance,
) -> (usize, f64) {
    let current = profile.link(user);
    let latencies: Vec<f64> = (0..game.links())
        .map(|l| pure_user_latency_on_link(game, profile, initial, user, l))
        .collect();
    let best = argmin(&latencies);
    if tol.leq(latencies[current], latencies[best]) {
        (current, latencies[current])
    } else {
        (best, latencies[best])
    }
}

/// Whether `user` satisfies the Nash condition in `profile`: no link offers a
/// strictly lower expected latency than its current one.
pub fn satisfies_pure_nash(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    user: usize,
    tol: Tolerance,
) -> bool {
    let current = pure_user_latency(game, profile, initial, user);
    (0..game.links()).all(|l| {
        l == profile.link(user)
            || tol.leq(
                current,
                pure_user_latency_on_link(game, profile, initial, user, l),
            )
    })
}

/// Whether `profile` is a pure Nash equilibrium of `game` with initial traffic
/// `initial`.
///
/// This is the canonical certification predicate every solver's returned
/// profile must pass, so it is kept `O(n·m)`: link loads are accumulated once
/// (in user index order, exactly as [`link_load`]) and each hypothetical move
/// is evaluated as `(loads[ℓ] + wᵢ) / cᵢˡ`. That associates the sum as
/// `(t + Σw) + wᵢ` where the per-query [`pure_user_latency_on_link`] computes
/// `(t + wᵢ) + Σw` — mathematically identical, and any bit-level rounding
/// difference is far inside the comparison tolerance.
pub fn is_pure_nash(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    tol: Tolerance,
) -> bool {
    let mut loads: Vec<f64> = (0..game.links()).map(|l| initial.load(l)).collect();
    for k in 0..game.users() {
        loads[profile.link(k)] += game.weight(k);
    }
    (0..game.users()).all(|user| {
        let from = profile.link(user);
        let w = game.weight(user);
        let caps = game.capacities().row(user);
        let current = loads[from] / caps[from];
        loads
            .iter()
            .zip(caps)
            .enumerate()
            .all(|(l, (&load, &c))| l == from || tol.leq(current, (load + w) / c))
    })
}

/// All users that do not satisfy the Nash condition in `profile`
/// (the *defecting users* of Section 3.1).
pub fn defecting_users(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    tol: Tolerance,
) -> Vec<usize> {
    (0..game.users())
        .filter(|&user| !satisfies_pure_nash(game, profile, initial, user, tol))
        .collect()
}

/// Every profitable unilateral deviation available in `profile`, ordered by
/// user then destination link.
pub fn profitable_deviations(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    tol: Tolerance,
) -> Vec<Deviation> {
    let mut deviations = Vec::new();
    for user in 0..game.users() {
        let from = profile.link(user);
        let current_latency = pure_user_latency(game, profile, initial, user);
        for to in 0..game.links() {
            if to == from {
                continue;
            }
            let new_latency = pure_user_latency_on_link(game, profile, initial, user, to);
            if tol.lt(new_latency, current_latency) {
                deviations.push(Deviation {
                    user,
                    from,
                    to,
                    current_latency,
                    new_latency,
                });
            }
        }
    }
    deviations
}

/// The best profitable deviation of a single user, if any: the move to the
/// user's best-response link when that link strictly improves its latency.
pub fn best_deviation_of(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    user: usize,
    tol: Tolerance,
) -> Option<Deviation> {
    let from = profile.link(user);
    let current_latency = pure_user_latency(game, profile, initial, user);
    let (to, new_latency) = best_response(game, profile, initial, user, tol);
    if to != from && tol.lt(new_latency, current_latency) {
        Some(Deviation {
            user,
            from,
            to,
            current_latency,
            new_latency,
        })
    } else {
        None
    }
}

/// Whether the mixed profile `P` is a Nash equilibrium: every user puts
/// positive probability only on links minimising its expected latency, and no
/// link offers a latency below that minimum.
pub fn is_mixed_nash(game: &EffectiveGame, profile: &MixedProfile, tol: Tolerance) -> bool {
    if profile.validate(game).is_err() {
        return false;
    }
    let expected = profile.expected_traffic(game);
    for user in 0..game.users() {
        let latencies: Vec<f64> = (0..game.links())
            .map(|l| mixed_link_latency_with_traffic(game, profile, &expected, user, l))
            .collect();
        let min = latencies[argmin(&latencies)];
        for (link, &lat) in latencies.iter().enumerate() {
            let p = profile.prob(user, link);
            if tol.gt(p, 0.0) && !tol.eq(lat, min) {
                return false;
            }
            if !tol.geq(lat, min) {
                return false;
            }
        }
    }
    true
}

/// Whether `P` is a *fully mixed* Nash equilibrium: a Nash equilibrium in
/// which every user assigns strictly positive probability to every link.
pub fn is_fully_mixed_nash(game: &EffectiveGame, profile: &MixedProfile, tol: Tolerance) -> bool {
    profile.is_fully_mixed(tol) && is_mixed_nash(game, profile, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two users, two links; user 0 strongly prefers (believes faster) link 0,
    /// user 1 prefers link 1.
    fn opposed_game() -> EffectiveGame {
        EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]]).unwrap()
    }

    #[test]
    fn separated_profile_is_nash_for_opposed_preferences() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let separated = PureProfile::new(vec![0, 1]);
        assert!(is_pure_nash(&g, &separated, &t, tol));
        assert!(profitable_deviations(&g, &separated, &t, tol).is_empty());
        assert!(defecting_users(&g, &separated, &t, tol).is_empty());

        // The swapped profile is as bad as possible: both users want to move.
        let swapped = PureProfile::new(vec![1, 0]);
        assert!(!is_pure_nash(&g, &swapped, &t, tol));
        assert_eq!(defecting_users(&g, &swapped, &t, tol), vec![0, 1]);
        let devs = profitable_deviations(&g, &swapped, &t, tol);
        assert_eq!(devs.len(), 2);
        assert!(devs.iter().all(|d| d.gain() > 0.0));
    }

    #[test]
    fn fast_predicate_agrees_with_the_per_user_definition() {
        // The load-once `is_pure_nash` must agree with the per-user
        // `satisfies_pure_nash` definition on every profile of a small game
        // with awkward (non-dyadic) weights and initial traffic.
        let g = EffectiveGame::from_rows(
            vec![0.3, 1.7, 2.2],
            vec![vec![0.7, 1.3], vec![2.1, 0.9], vec![1.1, 3.3]],
        )
        .unwrap();
        let t = LinkLoads::new(vec![0.4, 0.1]).unwrap();
        let tol = Tolerance::default();
        for bits in 0..8u32 {
            let p = PureProfile::new((0..3).map(|u| ((bits >> u) & 1) as usize).collect());
            let per_user = (0..3).all(|u| satisfies_pure_nash(&g, &p, &t, u, tol));
            assert_eq!(is_pure_nash(&g, &p, &t, tol), per_user, "profile {bits:b}");
        }
    }

    #[test]
    fn best_response_prefers_current_link_on_ties() {
        // Symmetric game where both links look identical to user 0.
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![2.0, 2.0], vec![2.0, 2.0]]).unwrap();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let p = PureProfile::new(vec![0, 1]);
        let (link, _) = best_response(&g, &p, &t, 0, tol);
        assert_eq!(link, 0, "ties must not produce spurious deviations");
        assert!(best_deviation_of(&g, &p, &t, 0, tol).is_none());
    }

    #[test]
    fn best_deviation_matches_best_response() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let p = PureProfile::new(vec![1, 0]);
        let d = best_deviation_of(&g, &p, &t, 0, tol).expect("user 0 should deviate");
        assert_eq!(d.from, 1);
        assert_eq!(d.to, 0);
        assert!(d.new_latency < d.current_latency);
    }

    #[test]
    fn initial_traffic_changes_equilibria() {
        // Identical links; with heavy initial traffic on link 0 both users
        // should sit on link 1.
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let tol = Tolerance::default();
        let heavy = LinkLoads::new(vec![10.0, 0.0]).unwrap();
        let both_on_1 = PureProfile::new(vec![1, 1]);
        assert!(is_pure_nash(&g, &both_on_1, &heavy, tol));
        let split = PureProfile::new(vec![0, 1]);
        assert!(!is_pure_nash(&g, &split, &heavy, tol));
    }

    #[test]
    fn mixed_nash_accepts_pure_equilibrium_and_rejects_non_equilibrium() {
        let g = opposed_game();
        let tol = Tolerance::default();
        let separated = MixedProfile::from_pure(&PureProfile::new(vec![0, 1]), 2);
        assert!(is_mixed_nash(&g, &separated, tol));
        let swapped = MixedProfile::from_pure(&PureProfile::new(vec![1, 0]), 2);
        assert!(!is_mixed_nash(&g, &swapped, tol));
    }

    #[test]
    fn uniform_profile_is_fully_mixed_nash_for_symmetric_game() {
        // Fully symmetric game: identical users, identical links. The uniform
        // profile equalises every latency, hence is a fully mixed NE.
        let g = EffectiveGame::from_rows(
            vec![1.0, 1.0, 1.0],
            vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]],
        )
        .unwrap();
        let tol = Tolerance::default();
        let p = MixedProfile::uniform(3, 2);
        assert!(is_fully_mixed_nash(&g, &p, tol));
    }

    #[test]
    fn fully_mixed_check_requires_full_support() {
        let g = opposed_game();
        let tol = Tolerance::default();
        let separated = MixedProfile::from_pure(&PureProfile::new(vec![0, 1]), 2);
        // It is a NE but not fully mixed.
        assert!(is_mixed_nash(&g, &separated, tol));
        assert!(!is_fully_mixed_nash(&g, &separated, tol));
    }

    #[test]
    fn mixed_nash_rejects_wrong_dimensions() {
        let g = opposed_game();
        let tol = Tolerance::default();
        let p = MixedProfile::uniform(3, 2);
        assert!(!is_mixed_nash(&g, &p, tol));
    }
}
