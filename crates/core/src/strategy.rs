//! Strategies: pure and mixed profiles, and initial link traffic.

use serde::{Deserialize, Serialize};

use crate::error::{GameError, Result};
use crate::model::EffectiveGame;
use crate::numeric::{stable_sum, Tolerance};

/// A pure strategies profile `⟨ℓ₁, …, ℓₙ⟩`: one link index per user.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PureProfile {
    choices: Vec<usize>,
}

impl PureProfile {
    /// Builds a profile from per-user link choices.
    pub fn new(choices: Vec<usize>) -> Self {
        PureProfile { choices }
    }

    /// A profile assigning every user to link 0.
    pub fn all_on(n: usize, link: usize) -> Self {
        PureProfile {
            choices: vec![link; n],
        }
    }

    /// Validates the profile against a game (user count and link range).
    pub fn validate(&self, game: &EffectiveGame) -> Result<()> {
        if self.choices.len() != game.users() {
            return Err(GameError::ProfileDimensionMismatch {
                expected_users: game.users(),
                found_users: self.choices.len(),
            });
        }
        for (user, &link) in self.choices.iter().enumerate() {
            if link >= game.links() {
                return Err(GameError::LinkOutOfRange {
                    user,
                    link,
                    links: game.links(),
                });
            }
        }
        Ok(())
    }

    /// Number of users covered.
    pub fn users(&self) -> usize {
        self.choices.len()
    }

    /// Link chosen by `user`.
    #[inline]
    pub fn link(&self, user: usize) -> usize {
        self.choices[user]
    }

    /// All choices.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Mutable access to the raw choices, for kernel start builders that
    /// refill a reused profile in place instead of allocating a new one.
    pub(crate) fn choices_mut(&mut self) -> &mut [usize] {
        &mut self.choices
    }

    /// Returns a copy with user `user` moved to `link`
    /// (`σ[k → ℓ]` in the paper's notation).
    pub fn with_move(&self, user: usize, link: usize) -> Self {
        let mut next = self.clone();
        next.choices[user] = link;
        next
    }

    /// Mutates the profile, moving `user` to `link`.
    pub fn apply_move(&mut self, user: usize, link: usize) {
        self.choices[user] = link;
    }

    /// Total traffic routed on each link under this profile, on top of the
    /// initial traffic `t` (pass [`LinkLoads::zero`] when there is none).
    pub fn link_loads(&self, game: &EffectiveGame, initial: &LinkLoads) -> Vec<f64> {
        let mut loads = initial.as_slice().to_vec();
        for (user, &link) in self.choices.iter().enumerate() {
            loads[link] += game.weight(user);
        }
        loads
    }

    /// The set of users assigned to each link (the *state induced by the
    /// strategy* in Section 3.1).
    pub fn induced_state(&self, links: usize) -> Vec<Vec<usize>> {
        let mut sets = vec![Vec::new(); links];
        for (user, &link) in self.choices.iter().enumerate() {
            sets[link].push(user);
        }
        sets
    }
}

/// A mixed strategies profile: an `n × m` row-stochastic matrix `P` where
/// `P[i][ℓ]` is the probability user `i` routes on link `ℓ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedProfile {
    users: usize,
    links: usize,
    probs: Vec<f64>,
}

impl MixedProfile {
    /// Builds a profile from row-major probabilities, validating each row.
    pub fn new(users: usize, links: usize, probs: Vec<f64>) -> Result<Self> {
        if probs.len() != users * links {
            return Err(GameError::ProfileDimensionMismatch {
                expected_users: users,
                found_users: probs.len().checked_div(links).unwrap_or(0),
            });
        }
        for (idx, &p) in probs.iter().enumerate() {
            if !(p.is_finite() && (-1e-12..=1.0 + 1e-12).contains(&p)) {
                return Err(GameError::InvalidProbability {
                    user: idx / links,
                    link: idx % links,
                    value: p,
                });
            }
        }
        for user in 0..users {
            let sum = stable_sum(&probs[user * links..(user + 1) * links]);
            if (sum - 1.0).abs() > 1e-7 {
                return Err(GameError::InvalidMixedRow { user, sum });
            }
        }
        Ok(MixedProfile {
            users,
            links,
            probs,
        })
    }

    /// Builds a profile from per-user probability rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let users = rows.len();
        let links = rows.first().map(Vec::len).unwrap_or(0);
        let mut probs = Vec::with_capacity(users * links);
        for row in &rows {
            if row.len() != links {
                return Err(GameError::ProfileDimensionMismatch {
                    expected_users: users,
                    found_users: users,
                });
            }
            probs.extend_from_slice(row);
        }
        MixedProfile::new(users, links, probs)
    }

    /// The degenerate mixed profile corresponding to a pure profile.
    pub fn from_pure(pure: &PureProfile, links: usize) -> Self {
        let users = pure.users();
        let mut probs = vec![0.0; users * links];
        for user in 0..users {
            probs[user * links + pure.link(user)] = 1.0;
        }
        MixedProfile {
            users,
            links,
            probs,
        }
    }

    /// The uniform fully mixed profile (`pᵢˡ = 1/m` for everyone).
    pub fn uniform(users: usize, links: usize) -> Self {
        MixedProfile {
            users,
            links,
            probs: vec![1.0 / links as f64; users * links],
        }
    }

    /// Number of users `n`.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of links `m`.
    pub fn links(&self) -> usize {
        self.links
    }

    /// Probability `pᵢˡ`.
    #[inline]
    pub fn prob(&self, user: usize, link: usize) -> f64 {
        self.probs[user * self.links + link]
    }

    /// The probability row of `user`.
    #[inline]
    pub fn row(&self, user: usize) -> &[f64] {
        &self.probs[user * self.links..(user + 1) * self.links]
    }

    /// The support of `user`'s strategy: links played with positive probability.
    pub fn support(&self, user: usize, tol: Tolerance) -> Vec<usize> {
        self.row(user)
            .iter()
            .enumerate()
            .filter(|&(_, &p)| tol.gt(p, 0.0))
            .map(|(l, _)| l)
            .collect()
    }

    /// Whether the profile is *fully mixed*: every user assigns strictly
    /// positive probability to every link.
    pub fn is_fully_mixed(&self, tol: Tolerance) -> bool {
        self.probs.iter().all(|&p| tol.gt(p, 0.0))
    }

    /// Whether the profile is pure (every row is a point mass); returns the
    /// corresponding pure profile if so.
    pub fn as_pure(&self, tol: Tolerance) -> Option<PureProfile> {
        let mut choices = Vec::with_capacity(self.users);
        for user in 0..self.users {
            let support = self.support(user, tol);
            if support.len() != 1 || !tol.eq(self.prob(user, support[0]), 1.0) {
                return None;
            }
            choices.push(support[0]);
        }
        Some(PureProfile::new(choices))
    }

    /// Expected traffic `Wˡ = Σᵢ pᵢˡ wᵢ` on every link.
    pub fn expected_traffic(&self, game: &EffectiveGame) -> Vec<f64> {
        let mut traffic = vec![0.0; self.links];
        for user in 0..self.users {
            let w = game.weight(user);
            for (link, item) in traffic.iter_mut().enumerate() {
                *item += self.prob(user, link) * w;
            }
        }
        traffic
    }

    /// Validates the profile dimensions against a game.
    pub fn validate(&self, game: &EffectiveGame) -> Result<()> {
        if self.users != game.users() || self.links != game.links() {
            return Err(GameError::ProfileDimensionMismatch {
                expected_users: game.users(),
                found_users: self.users,
            });
        }
        Ok(())
    }
}

/// Initial (exogenous) traffic on each link, the vector `t` used by
/// `Atwolinks` and `Auniform`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkLoads {
    loads: Vec<f64>,
}

impl LinkLoads {
    /// Builds an initial-traffic vector; entries must be non-negative and finite.
    pub fn new(loads: Vec<f64>) -> Result<Self> {
        for &t in &loads {
            if !(t.is_finite() && t >= 0.0) {
                return Err(GameError::InvalidInitialTraffic {
                    reason: format!("entry {t} is negative or not finite"),
                });
            }
        }
        Ok(LinkLoads { loads })
    }

    /// Zero initial traffic on `links` links.
    pub fn zero(links: usize) -> Self {
        LinkLoads {
            loads: vec![0.0; links],
        }
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.loads.len()
    }

    /// Initial traffic on `link`.
    #[inline]
    pub fn load(&self, link: usize) -> f64 {
        self.loads[link]
    }

    /// All loads.
    pub fn as_slice(&self) -> &[f64] {
        &self.loads
    }

    /// Returns a copy with `amount` added to `link`.
    pub fn with_added(&self, link: usize, amount: f64) -> Self {
        let mut next = self.clone();
        next.loads[link] += amount;
        next
    }

    /// Adds `amount` to `link` in place.
    pub fn add(&mut self, link: usize, amount: f64) {
        self.loads[link] += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![1.0, 2.0, 3.0],
            vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0, 2.0]],
        )
        .unwrap()
    }

    #[test]
    fn pure_profile_validation() {
        let g = game();
        assert!(PureProfile::new(vec![0, 1, 0]).validate(&g).is_ok());
        assert!(PureProfile::new(vec![0, 1]).validate(&g).is_err());
        assert!(PureProfile::new(vec![0, 1, 2]).validate(&g).is_err());
    }

    #[test]
    fn pure_profile_loads_and_induced_state() {
        let g = game();
        let p = PureProfile::new(vec![0, 1, 0]);
        assert_eq!(p.link_loads(&g, &LinkLoads::zero(2)), vec![4.0, 2.0]);
        let t = LinkLoads::new(vec![0.5, 1.5]).unwrap();
        assert_eq!(p.link_loads(&g, &t), vec![4.5, 3.5]);
        assert_eq!(p.induced_state(2), vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn pure_profile_moves() {
        let p = PureProfile::new(vec![0, 1, 0]);
        let q = p.with_move(2, 1);
        assert_eq!(p.choices(), &[0, 1, 0]);
        assert_eq!(q.choices(), &[0, 1, 1]);
        let mut r = p.clone();
        r.apply_move(0, 1);
        assert_eq!(r.choices(), &[1, 1, 0]);
    }

    #[test]
    fn mixed_profile_validation() {
        assert!(MixedProfile::new(2, 2, vec![0.5, 0.5, 0.3, 0.7]).is_ok());
        assert!(MixedProfile::new(2, 2, vec![0.5, 0.6, 0.3, 0.7]).is_err());
        assert!(MixedProfile::new(2, 2, vec![1.2, -0.2, 0.3, 0.7]).is_err());
        assert!(MixedProfile::new(2, 2, vec![0.5, 0.5, 0.5]).is_err());
    }

    #[test]
    fn mixed_profile_support_and_fully_mixed() {
        let tol = Tolerance::default();
        let p = MixedProfile::from_rows(vec![vec![0.5, 0.5, 0.0], vec![0.2, 0.3, 0.5]]).unwrap();
        assert_eq!(p.support(0, tol), vec![0, 1]);
        assert!(!p.is_fully_mixed(tol));
        let q = MixedProfile::uniform(2, 3);
        assert!(q.is_fully_mixed(tol));
    }

    #[test]
    fn pure_mixed_round_trip() {
        let tol = Tolerance::default();
        let pure = PureProfile::new(vec![1, 0, 1]);
        let mixed = MixedProfile::from_pure(&pure, 2);
        assert_eq!(mixed.as_pure(tol), Some(pure));
        assert!(MixedProfile::uniform(2, 2).as_pure(tol).is_none());
    }

    #[test]
    fn expected_traffic_matches_hand_computation() {
        let g = game();
        let p =
            MixedProfile::from_rows(vec![vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap();
        let w = p.expected_traffic(&g);
        assert!((w[0] - 2.0).abs() < 1e-12); // 1*1 + 0.5*2
        assert!((w[1] - 4.0).abs() < 1e-12); // 0.5*2 + 3
    }

    #[test]
    fn link_loads_validation_and_updates() {
        assert!(LinkLoads::new(vec![0.0, -1.0]).is_err());
        let t = LinkLoads::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(t.links(), 2);
        assert_eq!(t.with_added(1, 3.0).as_slice(), &[1.0, 5.0]);
        let mut u = t.clone();
        u.add(0, 0.5);
        assert_eq!(u.load(0), 1.5);
    }
}
