//! Best-response dynamics for the general model.
//!
//! The paper conjectures (Conjecture 3.7) that every game in the model has a
//! pure Nash equilibrium, and reports that simulations on numerous instances
//! support it. This module provides the dynamics used in those simulations:
//! starting from an arbitrary pure profile, repeatedly let a defecting user
//! move to its best-response link until no user wants to move (or a step
//! budget is exhausted).

use serde::{Deserialize, Serialize};

use crate::model::EffectiveGame;
use crate::numeric::Tolerance;
use crate::solvers::kernel::{run_to_completion, BestResponseRun, BrStart, KernelScratch, SoAGame};
use crate::strategy::{LinkLoads, PureProfile};

/// How the next defecting user is selected at each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionRule {
    /// Scan users in a fixed round-robin order and move the first defector.
    RoundRobin,
    /// Among all defectors, move the one with the largest latency improvement.
    LargestGain,
}

/// Result of running the dynamics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The dynamics reached a pure Nash equilibrium.
    Converged {
        /// The equilibrium profile.
        profile: PureProfile,
        /// Number of individual moves performed.
        steps: usize,
    },
    /// The step budget ran out before reaching an equilibrium. (Under
    /// Conjecture 3.7 this indicates the budget was too small, not that no
    /// equilibrium exists.)
    StepLimit {
        /// The last profile visited.
        profile: PureProfile,
        /// Number of moves performed (equal to the budget).
        steps: usize,
    },
}

impl Outcome {
    /// The profile the dynamics ended at, equilibrium or not.
    pub fn profile(&self) -> &PureProfile {
        match self {
            Outcome::Converged { profile, .. } | Outcome::StepLimit { profile, .. } => profile,
        }
    }

    /// Number of moves performed.
    pub fn steps(&self) -> usize {
        match self {
            Outcome::Converged { steps, .. } | Outcome::StepLimit { steps, .. } => *steps,
        }
    }

    /// Whether an equilibrium was reached.
    pub fn converged(&self) -> bool {
        matches!(self, Outcome::Converged { .. })
    }
}

/// Configuration for [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BestResponseDynamics {
    /// Maximum number of individual moves before giving up.
    pub max_steps: usize,
    /// Defector selection rule.
    pub rule: SelectionRule,
}

impl Default for BestResponseDynamics {
    fn default() -> Self {
        BestResponseDynamics {
            max_steps: 100_000,
            rule: SelectionRule::RoundRobin,
        }
    }
}

impl BestResponseDynamics {
    /// Runs the dynamics from `start`.
    ///
    /// The hot loop is the SoA [`BestResponseRun`] kernel: link loads are
    /// maintained incrementally on flat rows (the accessor-based primitives
    /// recomputed them from scratch for every link query), and every
    /// convergence claim is still certified by the canonical predicate.
    pub fn run(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        start: PureProfile,
        tol: Tolerance,
    ) -> Outcome {
        let soa = SoAGame::from_game(game);
        self.run_kernel(game, initial, soa.view(), BrStart::Profile(start), tol)
    }

    /// Runs the dynamics from the greedy starting profile (the kernel
    /// equivalent of [`greedy_profile`]).
    pub fn run_from_greedy(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        tol: Tolerance,
    ) -> Outcome {
        let soa = SoAGame::from_game(game);
        self.run_kernel(game, initial, soa.view(), BrStart::Greedy, tol)
    }

    fn run_kernel(
        &self,
        game: &EffectiveGame,
        initial: &LinkLoads,
        view: crate::solvers::kernel::SoAView<'_>,
        start: BrStart,
        tol: Tolerance,
    ) -> Outcome {
        let mut scratch = KernelScratch::new();
        let mut run = BestResponseRun::new(
            game,
            initial,
            view,
            start,
            self.max_steps as u64,
            matches!(self.rule, SelectionRule::LargestGain),
            tol,
        );
        let detail = run_to_completion(&mut run, &mut scratch);
        let steps = run.steps() as usize;
        match detail.solution {
            Some(solution) => Outcome::Converged {
                profile: solution.profile,
                steps,
            },
            None => Outcome::StepLimit {
                profile: run.into_profile(),
                steps,
            },
        }
    }
}

/// A greedy starting profile: users are inserted in index order, each on the
/// link that currently minimises its latency given the users already placed.
///
/// This divide-based builder is the reference semantics; the kernel's
/// `greedy_into` is its multiply-by-reciprocal twin. The capacity row is
/// borrowed once per user instead of re-indexed per link.
pub fn greedy_profile(game: &EffectiveGame, initial: &LinkLoads) -> PureProfile {
    let n = game.users();
    let m = game.links();
    let mut loads = initial.clone();
    let mut choices = Vec::with_capacity(n);
    for user in 0..n {
        let w = game.weight(user);
        let row = game.capacities().row(user);
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (link, &cap) in row.iter().enumerate().take(m) {
            let cost = (loads.load(link) + w) / cap;
            if cost < best_cost {
                best_cost = cost;
                best = link;
            }
        }
        choices.push(best);
        loads.add(best, w);
    }
    PureProfile::new(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;

    fn messy_game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 5.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
                vec![0.5, 6.0, 2.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn dynamics_converge_on_fixed_instance_from_any_corner() {
        let g = messy_game();
        let t = LinkLoads::zero(3);
        let tol = Tolerance::default();
        let dynamics = BestResponseDynamics::default();
        for link in 0..3 {
            let start = PureProfile::all_on(4, link);
            let outcome = dynamics.run(&g, &t, start, tol);
            assert!(outcome.converged(), "did not converge from corner {link}");
            assert!(is_pure_nash(&g, outcome.profile(), &t, tol));
        }
    }

    #[test]
    fn both_selection_rules_reach_equilibria() {
        let g = messy_game();
        let t = LinkLoads::zero(3);
        let tol = Tolerance::default();
        for rule in [SelectionRule::RoundRobin, SelectionRule::LargestGain] {
            let dynamics = BestResponseDynamics {
                max_steps: 10_000,
                rule,
            };
            let outcome = dynamics.run(&g, &t, PureProfile::all_on(4, 0), tol);
            assert!(outcome.converged());
            assert!(is_pure_nash(&g, outcome.profile(), &t, tol));
        }
    }

    #[test]
    fn converged_profile_from_equilibrium_start_takes_zero_steps() {
        let g = EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]])
            .unwrap();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let start = PureProfile::new(vec![0, 1]);
        let outcome = BestResponseDynamics::default().run(&g, &t, start.clone(), tol);
        assert_eq!(outcome.steps(), 0);
        assert_eq!(outcome.profile(), &start);
    }

    #[test]
    fn greedy_profile_is_often_already_good() {
        let g = messy_game();
        let t = LinkLoads::zero(3);
        let tol = Tolerance::default();
        let outcome = BestResponseDynamics::default().run_from_greedy(&g, &t, tol);
        assert!(outcome.converged());
        // The greedy start should need only a handful of fixes.
        assert!(
            outcome.steps() <= 8,
            "greedy start took {} steps",
            outcome.steps()
        );
    }

    #[test]
    fn step_limit_is_honoured() {
        let g = messy_game();
        let t = LinkLoads::zero(3);
        let tol = Tolerance::default();
        let dynamics = BestResponseDynamics {
            max_steps: 0,
            rule: SelectionRule::RoundRobin,
        };
        let outcome = dynamics.run(&g, &t, PureProfile::all_on(4, 0), tol);
        // With zero budget the outcome depends on whether the start is an
        // equilibrium; "all on link 0" is not for this instance.
        assert!(!outcome.converged());
        assert_eq!(outcome.steps(), 0);
    }
}
