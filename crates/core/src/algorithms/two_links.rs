//! `Atwolinks` (Figure 1, Theorem 3.3): a pure Nash equilibrium for an
//! arbitrary number of users on `m = 2` links, possibly with initial traffic,
//! in `O(n²)` time.
//!
//! The algorithm is greedy: it repeatedly selects the user with the largest
//! *tolerance* (Definition 3.1) over the two links, commits that user to its
//! preferred link, adds its traffic to that link's initial load, and recurses
//! on the remaining users.

use crate::error::{GameError, Result};
use crate::model::EffectiveGame;
use crate::numeric::stable_sum;
use crate::strategy::{LinkLoads, PureProfile};

/// The tolerance `αᵢʲ` of user `user` for link `link` (Definition 3.1): the
/// largest load on `link` (out of the total remaining load `total`) that the
/// user can tolerate while routing its own traffic there.
///
/// It is the unique solution of
/// `(tʲ + α)/cᵢʲ = (tʲ⁺¹ + T − α + wᵢ)/cᵢʲ⁺¹`, i.e.
/// `α = cᵢ¹cᵢ²/(cᵢ¹+cᵢ²) · ((tʲ⁺¹ + T + wᵢ)/cᵢʲ⁺¹ − tʲ/cᵢʲ)`.
pub fn tolerance(
    game: &EffectiveGame,
    initial: &LinkLoads,
    total: f64,
    user: usize,
    link: usize,
) -> f64 {
    debug_assert_eq!(game.links(), 2);
    let other = 1 - link;
    let c_this = game.capacity(user, link);
    let c_other = game.capacity(user, other);
    let scale = c_this * c_other / (c_this + c_other);
    scale
        * ((initial.load(other) + total + game.weight(user)) / c_other
            - initial.load(link) / c_this)
}

fn precondition(game: &EffectiveGame, initial: &LinkLoads) -> Result<()> {
    if game.links() != 2 {
        return Err(GameError::Precondition {
            algorithm: "Atwolinks",
            requirement: format!("the game must have exactly 2 links, found {}", game.links()),
        });
    }
    if initial.links() != 2 {
        return Err(GameError::InvalidInitialTraffic {
            reason: format!("expected 2 entries, found {}", initial.links()),
        });
    }
    Ok(())
}

/// Runs `Atwolinks` and returns a pure Nash equilibrium of `game` with initial
/// traffic `initial`.
///
/// # Errors
/// Fails if the game does not have exactly two links or the initial-traffic
/// vector has the wrong dimension.
pub fn solve(game: &EffectiveGame, initial: &LinkLoads) -> Result<PureProfile> {
    precondition(game, initial)?;
    let n = game.users();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut loads = initial.clone();
    let mut assignment = vec![0usize; n];

    while !remaining.is_empty() {
        let total = stable_sum(
            &remaining
                .iter()
                .map(|&u| game.weight(u))
                .collect::<Vec<_>>(),
        );

        // For every remaining user, find its preferred link (the one with the
        // larger tolerance) and remember the corresponding tolerance value.
        let mut best_user = remaining[0];
        let mut best_link = 0usize;
        let mut best_tolerance = f64::NEG_INFINITY;
        for &u in &remaining {
            let a0 = tolerance(game, &loads, total, u, 0);
            let a1 = tolerance(game, &loads, total, u, 1);
            let (link, value) = if a0 >= a1 { (0, a0) } else { (1, a1) };
            if value > best_tolerance {
                best_tolerance = value;
                best_user = u;
                best_link = link;
            }
        }

        assignment[best_user] = best_link;
        loads.add(best_link, game.weight(best_user));
        remaining.retain(|&u| u != best_user);
    }

    Ok(PureProfile::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;
    use crate::numeric::Tolerance;

    fn check_nash(game: &EffectiveGame, initial: &LinkLoads) -> PureProfile {
        let profile = solve(game, initial).expect("solver should succeed");
        assert!(
            is_pure_nash(game, &profile, initial, Tolerance::default()),
            "Atwolinks returned a non-equilibrium profile {:?}",
            profile.choices()
        );
        profile
    }

    #[test]
    fn rejects_games_with_more_than_two_links() {
        let g = EffectiveGame::from_rows(
            vec![1.0, 1.0],
            vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]],
        )
        .unwrap();
        assert!(matches!(
            solve(&g, &LinkLoads::zero(3)),
            Err(GameError::Precondition {
                algorithm: "Atwolinks",
                ..
            })
        ));
    }

    #[test]
    fn rejects_mismatched_initial_traffic() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(solve(&g, &LinkLoads::zero(3)).is_err());
    }

    #[test]
    fn two_identical_users_split_across_identical_links() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let p = check_nash(&g, &LinkLoads::zero(2));
        assert_ne!(
            p.link(0),
            p.link(1),
            "identical users must not share a link"
        );
    }

    #[test]
    fn opposed_beliefs_lead_to_preferred_links() {
        let g = EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]])
            .unwrap();
        let p = check_nash(&g, &LinkLoads::zero(2));
        assert_eq!(p.link(0), 0);
        assert_eq!(p.link(1), 1);
    }

    #[test]
    fn heavy_initial_traffic_pushes_users_away() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let initial = LinkLoads::new(vec![100.0, 0.0]).unwrap();
        let p = check_nash(&g, &initial);
        assert_eq!(p.link(0), 1);
        assert_eq!(p.link(1), 1);
    }

    #[test]
    fn tolerance_solves_definition_equation() {
        // Check Definition 3.1: (t^j + α)/c^j = (t^{j⊕1} + T − α + w)/c^{j⊕1}.
        let g = EffectiveGame::from_rows(
            vec![1.5, 2.5, 0.5],
            vec![vec![2.0, 3.0], vec![1.0, 4.0], vec![5.0, 0.5]],
        )
        .unwrap();
        let t = LinkLoads::new(vec![0.7, 1.3]).unwrap();
        let total = g.total_traffic();
        for user in 0..3 {
            for link in 0..2 {
                let a = tolerance(&g, &t, total, user, link);
                let lhs = (t.load(link) + a) / g.capacity(user, link);
                let rhs =
                    (t.load(1 - link) + total - a + g.weight(user)) / g.capacity(user, 1 - link);
                assert!(
                    (lhs - rhs).abs() < 1e-9,
                    "user {user} link {link}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn returns_nash_for_heterogeneous_weights_and_beliefs() {
        // A moderately messy fixed instance.
        let g = EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 5.0, 0.5],
            vec![
                vec![2.0, 2.5],
                vec![1.0, 4.0],
                vec![3.0, 3.0],
                vec![0.5, 6.0],
                vec![2.0, 1.0],
            ],
        )
        .unwrap();
        check_nash(&g, &LinkLoads::zero(2));
        check_nash(&g, &LinkLoads::new(vec![2.0, 0.5]).unwrap());
    }

    #[test]
    fn many_random_like_fixed_instances_are_equilibria() {
        // Deterministic pseudo-random sweep (no rand dependency in unit tests):
        // a simple LCG drives weights and capacities.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) + 0.05
        };
        for n in 2..=12 {
            let weights: Vec<f64> = (0..n).map(|_| next() * 4.0).collect();
            let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![next() * 5.0, next() * 5.0]).collect();
            let g = EffectiveGame::from_rows(weights, rows).unwrap();
            let initial = LinkLoads::new(vec![next(), next()]).unwrap();
            check_nash(&g, &initial);
        }
    }
}
