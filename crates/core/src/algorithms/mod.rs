//! Pure Nash equilibrium algorithms (Section 3 of the paper).
//!
//! * [`two_links`] — `Atwolinks` (Figure 1): any weights, `m = 2`, `O(n²)`.
//! * [`symmetric`] — `Asymmetric` (Figure 2): identical weights, any `m`, `O(n²m)`.
//! * [`uniform`] — `Auniform` (Figure 3): uniform user beliefs, `O(n(log n + m))`.
//! * [`best_response`] — best-response dynamics used to probe Conjecture 3.7.
//! * [`solve_pure_nash`] — a compatibility wrapper over the unified
//!   [`SolverEngine`](crate::solvers::engine::SolverEngine), which orchestrates
//!   all of the above behind the [`Solver`](crate::solvers::engine::Solver)
//!   trait.

pub mod best_response;
pub mod symmetric;
pub mod two_links;
pub mod uniform;

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::model::EffectiveGame;
use crate::numeric::Tolerance;
use crate::solvers::engine::{SolverConfig, SolverEngine};
use crate::strategy::{LinkLoads, PureProfile};

/// Which method produced a pure Nash equilibrium in [`solve_pure_nash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PureNashMethod {
    /// `Atwolinks` (Figure 1) — the game has two links.
    TwoLinks,
    /// `Asymmetric` (Figure 2) — the users are symmetric.
    Symmetric,
    /// `Auniform` (Figure 3) — the beliefs are uniform per user.
    UniformBeliefs,
    /// Best-response dynamics converged.
    BestResponse,
    /// Multi-restart local search with smart starts and annealed tie-breaking.
    LocalSearch,
    /// Exhaustive enumeration of all pure profiles.
    Exhaustive,
}

/// A pure Nash equilibrium together with the method that found it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PureNashSolution {
    /// The equilibrium profile.
    pub profile: PureProfile,
    /// The algorithm that produced it.
    pub method: PureNashMethod,
}

/// Finds a pure Nash equilibrium of `game` with initial traffic `initial`.
///
/// This is a thin compatibility wrapper over a
/// [`SolverEngine`](crate::solvers::engine::SolverEngine) in
/// [`paper_order`](crate::solvers::engine::SolverEngine::paper_order): the
/// paper's polynomial-time special cases (two links; symmetric users; uniform
/// beliefs), then best-response dynamics, and finally exhaustive search when
/// the profile space is within budget. Returns `Ok(None)` only when every
/// method fails — which, under Conjecture 3.7, means the step/size budgets
/// were exhausted, not that no equilibrium exists. Callers that want solver
/// telemetry, custom strategy orders, budgets, or batch-parallel solving
/// should use the engine directly.
pub fn solve_pure_nash(
    game: &EffectiveGame,
    initial: &LinkLoads,
    tol: Tolerance,
) -> Result<Option<PureNashSolution>> {
    let engine = SolverEngine::paper_order(SolverConfig::with_tol(tol));
    Ok(engine.solve(game, initial)?.solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;

    #[test]
    fn dispatcher_picks_two_links_algorithm() {
        let g = EffectiveGame::from_rows(
            vec![1.0, 2.0, 3.0],
            vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.5, 1.5]],
        )
        .unwrap();
        let t = LinkLoads::zero(2);
        let sol = solve_pure_nash(&g, &t, Tolerance::default())
            .unwrap()
            .unwrap();
        assert_eq!(sol.method, PureNashMethod::TwoLinks);
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }

    #[test]
    fn dispatcher_picks_symmetric_algorithm() {
        let g = EffectiveGame::from_rows(
            vec![2.0, 2.0, 2.0],
            vec![
                vec![1.0, 2.0, 3.0],
                vec![3.0, 2.0, 1.0],
                vec![2.0, 1.0, 3.0],
            ],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let sol = solve_pure_nash(&g, &t, Tolerance::default())
            .unwrap()
            .unwrap();
        assert_eq!(sol.method, PureNashMethod::Symmetric);
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }

    #[test]
    fn dispatcher_picks_uniform_algorithm() {
        let g = EffectiveGame::from_rows(
            vec![3.0, 2.0, 1.0],
            vec![
                vec![1.0, 1.0, 1.0],
                vec![2.0, 2.0, 2.0],
                vec![0.5, 0.5, 0.5],
            ],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let sol = solve_pure_nash(&g, &t, Tolerance::default())
            .unwrap()
            .unwrap();
        assert_eq!(sol.method, PureNashMethod::UniformBeliefs);
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }

    #[test]
    fn dispatcher_falls_back_to_best_response_for_general_games() {
        let g = EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 5.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
                vec![0.5, 6.0, 2.0],
            ],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let sol = solve_pure_nash(&g, &t, Tolerance::default())
            .unwrap()
            .unwrap();
        assert!(matches!(
            sol.method,
            PureNashMethod::BestResponse | PureNashMethod::Exhaustive
        ));
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }
}
