//! Pure Nash equilibrium algorithms (Section 3 of the paper).
//!
//! * [`two_links`] — `Atwolinks` (Figure 1): any weights, `m = 2`, `O(n²)`.
//! * [`symmetric`] — `Asymmetric` (Figure 2): identical weights, any `m`, `O(n²m)`.
//! * [`uniform`] — `Auniform` (Figure 3): uniform user beliefs, `O(n(log n + m))`.
//! * [`best_response`] — best-response dynamics used to probe Conjecture 3.7.
//! * [`solve_pure_nash`] — a convenience dispatcher over the above.

pub mod best_response;
pub mod symmetric;
pub mod two_links;
pub mod uniform;

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::model::EffectiveGame;
use crate::numeric::Tolerance;
use crate::solvers::exhaustive;
use crate::strategy::{LinkLoads, PureProfile};

/// Which method produced a pure Nash equilibrium in [`solve_pure_nash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PureNashMethod {
    /// `Atwolinks` (Figure 1) — the game has two links.
    TwoLinks,
    /// `Asymmetric` (Figure 2) — the users are symmetric.
    Symmetric,
    /// `Auniform` (Figure 3) — the beliefs are uniform per user.
    UniformBeliefs,
    /// Best-response dynamics converged.
    BestResponse,
    /// Exhaustive enumeration of all pure profiles.
    Exhaustive,
}

/// A pure Nash equilibrium together with the method that found it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PureNashSolution {
    /// The equilibrium profile.
    pub profile: PureProfile,
    /// The algorithm that produced it.
    pub method: PureNashMethod,
}

/// Finds a pure Nash equilibrium of `game` with initial traffic `initial`.
///
/// The dispatcher first tries the paper's polynomial-time special cases
/// (two links; symmetric users; uniform beliefs — the latter two only when
/// `initial` is zero, matching the algorithms' statements), then best-response
/// dynamics, and finally exhaustive search when the profile space is small
/// enough. Returns `Ok(None)` only when every method fails — which, under
/// Conjecture 3.7, means the step/size budgets were exhausted, not that no
/// equilibrium exists.
pub fn solve_pure_nash(
    game: &EffectiveGame,
    initial: &LinkLoads,
    tol: Tolerance,
) -> Result<Option<PureNashSolution>> {
    let zero_initial = initial.as_slice().iter().all(|&t| t == 0.0);

    if game.links() == 2 {
        let profile = two_links::solve(game, initial)?;
        return Ok(Some(PureNashSolution { profile, method: PureNashMethod::TwoLinks }));
    }
    if zero_initial && game.has_identical_weights(tol) {
        let profile = symmetric::solve(game, tol)?;
        return Ok(Some(PureNashSolution { profile, method: PureNashMethod::Symmetric }));
    }
    if game.has_uniform_beliefs(tol) {
        let profile = uniform::solve(game, initial, tol)?;
        return Ok(Some(PureNashSolution { profile, method: PureNashMethod::UniformBeliefs }));
    }

    let dynamics = best_response::BestResponseDynamics::default();
    let outcome = dynamics.run_from_greedy(game, initial, tol);
    if outcome.converged() {
        return Ok(Some(PureNashSolution {
            profile: outcome.profile().clone(),
            method: PureNashMethod::BestResponse,
        }));
    }

    // Last resort: exhaustive enumeration for small games.
    if exhaustive::profile_count(game.users(), game.links()) <= exhaustive::DEFAULT_PROFILE_LIMIT {
        let all = exhaustive::all_pure_nash(game, initial, tol, exhaustive::DEFAULT_PROFILE_LIMIT)?;
        if let Some(profile) = all.into_iter().next() {
            return Ok(Some(PureNashSolution { profile, method: PureNashMethod::Exhaustive }));
        }
        return Ok(None);
    }

    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;

    #[test]
    fn dispatcher_picks_two_links_algorithm() {
        let g = EffectiveGame::from_rows(
            vec![1.0, 2.0, 3.0],
            vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.5, 1.5]],
        )
        .unwrap();
        let t = LinkLoads::zero(2);
        let sol = solve_pure_nash(&g, &t, Tolerance::default()).unwrap().unwrap();
        assert_eq!(sol.method, PureNashMethod::TwoLinks);
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }

    #[test]
    fn dispatcher_picks_symmetric_algorithm() {
        let g = EffectiveGame::from_rows(
            vec![2.0, 2.0, 2.0],
            vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0], vec![2.0, 1.0, 3.0]],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let sol = solve_pure_nash(&g, &t, Tolerance::default()).unwrap().unwrap();
        assert_eq!(sol.method, PureNashMethod::Symmetric);
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }

    #[test]
    fn dispatcher_picks_uniform_algorithm() {
        let g = EffectiveGame::from_rows(
            vec![3.0, 2.0, 1.0],
            vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0], vec![0.5, 0.5, 0.5]],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let sol = solve_pure_nash(&g, &t, Tolerance::default()).unwrap().unwrap();
        assert_eq!(sol.method, PureNashMethod::UniformBeliefs);
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }

    #[test]
    fn dispatcher_falls_back_to_best_response_for_general_games() {
        let g = EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 5.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
                vec![0.5, 6.0, 2.0],
            ],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let sol = solve_pure_nash(&g, &t, Tolerance::default()).unwrap().unwrap();
        assert!(matches!(
            sol.method,
            PureNashMethod::BestResponse | PureNashMethod::Exhaustive
        ));
        assert!(is_pure_nash(&g, &sol.profile, &t, Tolerance::default()));
    }
}
