//! `Auniform` (Figure 3, Theorem 3.6): a pure Nash equilibrium under the
//! *uniform user beliefs* model — every user believes all links have equal
//! capacity — in `O(n (log n + m))` time.
//!
//! The algorithm is a variant of Graham's LPT rule: users are processed in
//! decreasing order of traffic and each is placed on the link with the lowest
//! current load (initial traffic included).

use crate::error::{GameError, Result};
use crate::model::EffectiveGame;
use crate::numeric::Tolerance;
use crate::strategy::{LinkLoads, PureProfile};

fn precondition(game: &EffectiveGame, initial: &LinkLoads, tol: Tolerance) -> Result<()> {
    if !game.has_uniform_beliefs(tol) {
        return Err(GameError::Precondition {
            algorithm: "Auniform",
            requirement: "every user must see the same capacity on all links (uniform beliefs)"
                .to_string(),
        });
    }
    if initial.links() != game.links() {
        return Err(GameError::InvalidInitialTraffic {
            reason: format!(
                "expected {} entries, found {}",
                game.links(),
                initial.links()
            ),
        });
    }
    Ok(())
}

/// Runs `Auniform` and returns a pure Nash equilibrium of `game` with initial
/// traffic `initial`.
///
/// # Errors
/// Fails if some user's effective capacities differ across links, or the
/// initial-traffic vector has the wrong dimension.
pub fn solve(game: &EffectiveGame, initial: &LinkLoads, tol: Tolerance) -> Result<PureProfile> {
    precondition(game, initial, tol)?;
    let n = game.users();
    let m = game.links();

    // Step 3: process users in decreasing order of weight (ties by index so
    // the algorithm is deterministic).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        game.weight(b)
            .partial_cmp(&game.weight(a))
            .expect("weights are finite")
            .then(a.cmp(&b))
    });

    let mut loads = initial.clone();
    let mut assignment = vec![0usize; n];
    for &user in &order {
        // Step 4(a): the preferred link minimises (w_k + tʲ)/c_k; with uniform
        // beliefs c_k is link-independent, so this is the least-loaded link,
        // but we evaluate the full expression for faithfulness.
        let w = game.weight(user);
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for link in 0..m {
            let cost = (w + loads.load(link)) / game.capacity(user, link);
            if cost < best_cost {
                best_cost = cost;
                best = link;
            }
        }
        assignment[user] = best;
        loads.add(best, w);
    }

    Ok(PureProfile::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;

    fn uniform_game(weights: Vec<f64>, per_user_capacity: Vec<f64>, links: usize) -> EffectiveGame {
        let rows = per_user_capacity.iter().map(|&c| vec![c; links]).collect();
        EffectiveGame::from_rows(weights, rows).unwrap()
    }

    fn check_nash(game: &EffectiveGame, initial: &LinkLoads) -> PureProfile {
        let tol = Tolerance::default();
        let profile = solve(game, initial, tol).expect("solver should succeed");
        assert!(
            is_pure_nash(game, &profile, initial, tol),
            "Auniform returned a non-equilibrium profile {:?}",
            profile.choices()
        );
        profile
    }

    #[test]
    fn rejects_non_uniform_beliefs() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![1.0, 2.0], vec![1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve(&g, &LinkLoads::zero(2), Tolerance::default()),
            Err(GameError::Precondition {
                algorithm: "Auniform",
                ..
            })
        ));
    }

    #[test]
    fn rejects_wrong_initial_traffic_dimension() {
        let g = uniform_game(vec![1.0, 1.0], vec![1.0, 1.0], 2);
        assert!(solve(&g, &LinkLoads::zero(3), Tolerance::default()).is_err());
    }

    #[test]
    fn lpt_balances_identical_users() {
        let g = uniform_game(vec![1.0; 4], vec![2.0; 4], 2);
        let p = check_nash(&g, &LinkLoads::zero(2));
        let loads = p.link_loads(&g, &LinkLoads::zero(2));
        assert_eq!(loads, vec![2.0, 2.0]);
    }

    #[test]
    fn heavy_users_get_spread_first() {
        // Weights 5, 4, 3, 3, 2, 1 on two links: LPT puts 5+3+1 vs 4+3+2 (or a
        // comparable balanced split).
        let g = uniform_game(vec![5.0, 4.0, 3.0, 3.0, 2.0, 1.0], vec![1.0; 6], 2);
        let p = check_nash(&g, &LinkLoads::zero(2));
        let loads = p.link_loads(&g, &LinkLoads::zero(2));
        assert!(
            (loads[0] - loads[1]).abs() <= 1.0 + 1e-12,
            "LPT split too unbalanced: {loads:?}"
        );
    }

    #[test]
    fn initial_traffic_is_respected() {
        let g = uniform_game(vec![1.0, 1.0], vec![1.0, 1.0], 2);
        let initial = LinkLoads::new(vec![5.0, 0.0]).unwrap();
        let p = check_nash(&g, &initial);
        assert_eq!(p.link(0), 1);
        assert_eq!(p.link(1), 1);
    }

    #[test]
    fn per_user_capacity_scale_does_not_change_assignment() {
        // Each user's capacity scales all its latencies equally, so the
        // assignment only depends on loads.
        let g1 = uniform_game(vec![3.0, 2.0, 1.0], vec![1.0, 1.0, 1.0], 3);
        let g2 = uniform_game(vec![3.0, 2.0, 1.0], vec![10.0, 0.1, 5.0], 3);
        let p1 = check_nash(&g1, &LinkLoads::zero(3));
        let p2 = check_nash(&g2, &LinkLoads::zero(3));
        assert_eq!(p1.choices(), p2.choices());
    }

    #[test]
    fn pseudo_random_sweep_always_yields_equilibrium() {
        let mut state: u64 = 0x1234567890ABCDEF;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) + 0.05
        };
        for n in 2..=12 {
            for m in 2..=4 {
                let weights: Vec<f64> = (0..n).map(|_| next() * 4.0).collect();
                let caps: Vec<f64> = (0..n).map(|_| next() * 5.0).collect();
                let g = uniform_game(weights, caps, m);
                let initial = LinkLoads::new((0..m).map(|_| next() * 2.0).collect()).unwrap();
                check_nash(&g, &initial);
            }
        }
    }
}
