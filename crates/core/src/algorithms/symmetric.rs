//! `Asymmetric` (Figure 2, Theorem 3.5): a pure Nash equilibrium for
//! *symmetric users* — all users carry identical traffic — on any number of
//! links, in `O(n² m)` time.
//!
//! Users are inserted one at a time on the link minimising `(|Nˡ| + 1)/cᵢˡ`.
//! Each insertion can trigger a chain of defections, but (Lemma 3.4) a user
//! that has moved once stays satisfied, so the chain has length at most `i`.

use crate::error::{GameError, Result};
use crate::model::EffectiveGame;
use crate::numeric::Tolerance;
use crate::strategy::PureProfile;

fn precondition(game: &EffectiveGame, tol: Tolerance) -> Result<()> {
    if !game.has_identical_weights(tol) {
        return Err(GameError::Precondition {
            algorithm: "Asymmetric",
            requirement: "all users must have identical traffic (symmetric users)".to_string(),
        });
    }
    Ok(())
}

/// Runs `Asymmetric` and returns a pure Nash equilibrium of `game`.
///
/// # Errors
/// Fails if the users do not all carry the same traffic.
pub fn solve(game: &EffectiveGame, tol: Tolerance) -> Result<PureProfile> {
    precondition(game, tol)?;
    let n = game.users();
    let m = game.links();

    // Number of users currently assigned to each link (|Nˡ|); weights are
    // identical so only counts matter.
    let mut counts = vec![0usize; m];
    // Current link of each already-inserted user.
    let mut assignment = vec![usize::MAX; n];

    for user in 0..n {
        // Step 3(a)-(b): insert `user` on a link minimising (|Nˡ|+1)/cᵢˡ.
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (link, &count) in counts.iter().enumerate() {
            let cost = (count as f64 + 1.0) / game.capacity(user, link);
            if cost < best_cost {
                best_cost = cost;
                best = link;
            }
        }
        assignment[user] = best;
        counts[best] += 1;

        // Step 3(c): resolve the defection chain starting from the link that
        // just gained a user. Only users on the most recently augmented link
        // can be unsatisfied.
        let mut hot_link = best;
        loop {
            let mut moved = false;
            for (k, slot) in assignment.iter_mut().enumerate().take(user + 1) {
                if *slot != hot_link {
                    continue;
                }
                // Best response of user k given the current counts.
                let current = counts[hot_link] as f64 / game.capacity(k, hot_link);
                let mut target = hot_link;
                let mut target_cost = current;
                for (link, &count) in counts.iter().enumerate() {
                    if link == hot_link {
                        continue;
                    }
                    let cost = (count as f64 + 1.0) / game.capacity(k, link);
                    if tol.lt(cost, target_cost) {
                        target_cost = cost;
                        target = link;
                    }
                }
                if target != hot_link {
                    counts[hot_link] -= 1;
                    counts[target] += 1;
                    *slot = target;
                    hot_link = target;
                    moved = true;
                    break;
                }
            }
            if !moved {
                break;
            }
        }
    }

    Ok(PureProfile::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;
    use crate::strategy::LinkLoads;

    fn check_nash(game: &EffectiveGame) -> PureProfile {
        let tol = Tolerance::default();
        let profile = solve(game, tol).expect("solver should succeed");
        assert!(
            is_pure_nash(game, &profile, &LinkLoads::zero(game.links()), tol),
            "Asymmetric returned a non-equilibrium profile {:?}",
            profile.choices()
        );
        profile
    }

    #[test]
    fn rejects_non_identical_weights() {
        let g =
            EffectiveGame::from_rows(vec![1.0, 2.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve(&g, Tolerance::default()),
            Err(GameError::Precondition {
                algorithm: "Asymmetric",
                ..
            })
        ));
    }

    #[test]
    fn identical_links_balance_users_evenly() {
        let g = EffectiveGame::from_rows(vec![1.0; 6], vec![vec![1.0, 1.0, 1.0]; 6]).unwrap();
        let p = check_nash(&g);
        let mut counts = vec![0usize; 3];
        for u in 0..6 {
            counts[p.link(u)] += 1;
        }
        assert_eq!(counts, vec![2, 2, 2]);
    }

    #[test]
    fn users_with_opposed_beliefs_pick_their_fast_links() {
        let g = EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]])
            .unwrap();
        let p = check_nash(&g);
        assert_eq!(p.link(0), 0);
        assert_eq!(p.link(1), 1);
    }

    #[test]
    fn defection_chain_resolves_to_equilibrium() {
        // Three users, three links, conflicting per-user views that force at
        // least one relocation during insertion.
        let g = EffectiveGame::from_rows(
            vec![1.0, 1.0, 1.0],
            vec![
                vec![3.0, 1.0, 1.0],
                vec![3.0, 2.9, 1.0],
                vec![3.0, 1.0, 2.9],
            ],
        )
        .unwrap();
        check_nash(&g);
    }

    #[test]
    fn pseudo_random_sweep_always_yields_equilibrium() {
        let mut state: u64 = 0xDEADBEEFCAFEF00D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) + 0.05
        };
        for n in 2..=10 {
            for m in 2..=5 {
                let rows: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..m).map(|_| next() * 5.0).collect())
                    .collect();
                let g = EffectiveGame::from_rows(vec![1.0; n], rows).unwrap();
                check_nash(&g);
            }
        }
    }

    #[test]
    fn weight_scale_does_not_matter() {
        // Identical weights of any magnitude give the same assignment as weight 1.
        let rows = vec![
            vec![2.0, 1.0, 4.0],
            vec![1.0, 3.0, 2.0],
            vec![4.0, 1.0, 1.0],
            vec![2.0, 2.0, 2.0],
        ];
        let g1 = EffectiveGame::from_rows(vec![1.0; 4], rows.clone()).unwrap();
        let g7 = EffectiveGame::from_rows(vec![7.0; 4], rows).unwrap();
        let p1 = check_nash(&g1);
        let p7 = check_nash(&g7);
        assert_eq!(p1.choices(), p7.choices());
    }
}
