//! The game graph of Section 3.1: profiles as nodes, defections as edges.
//!
//! The paper's argument for the existence of pure Nash equilibria with three
//! users, and its observation (due to B. Monien) that the state space of some
//! instance contains a cycle, are both statements about this graph. The graph
//! is materialised only for small games (`mⁿ` bounded); cycle detection and
//! equilibrium enumeration walk it explicitly.

use serde::{Deserialize, Serialize};

use crate::equilibrium::{best_response, profitable_deviations};
use crate::error::{GameError, Result};
use crate::model::EffectiveGame;
use crate::numeric::Tolerance;
use crate::strategy::{LinkLoads, PureProfile};

/// Which moves generate the edges of the game graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Any strictly profitable unilateral move (*better-response* edges).
    /// Absence of cycles over these edges is equivalent to the finite
    /// improvement property (ordinal potential).
    BetterResponse,
    /// Only moves to a best-response link that strictly improves the mover
    /// (*best-response* edges). The `n = 3` existence argument in the paper
    /// rules out cycles of this kind.
    BestResponse,
}

/// Encodes a pure profile as an integer in `[0, mⁿ)` (user 0 is the least
/// significant digit, base `m`).
pub fn encode(profile: &PureProfile, links: usize) -> usize {
    let mut code = 0usize;
    for user in (0..profile.users()).rev() {
        code = code * links + profile.link(user);
    }
    code
}

/// Decodes an integer produced by [`encode`] back into a pure profile.
pub fn decode(mut code: usize, users: usize, links: usize) -> PureProfile {
    let mut choices = Vec::with_capacity(users);
    for _ in 0..users {
        choices.push(code % links);
        code /= links;
    }
    PureProfile::new(choices)
}

/// The explicit game graph of a (small) game.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameGraph {
    users: usize,
    links: usize,
    /// `successors[code]` lists the profiles reachable by one defection.
    successors: Vec<Vec<usize>>,
    /// Profiles with no outgoing edge — exactly the pure Nash equilibria.
    sinks: Vec<usize>,
    edge_kind: EdgeKind,
}

impl GameGraph {
    /// Builds the game graph of `game` with initial traffic `initial`,
    /// using the given edge kind.
    ///
    /// # Errors
    /// Fails when `mⁿ` exceeds `limit`.
    pub fn build(
        game: &EffectiveGame,
        initial: &LinkLoads,
        edge_kind: EdgeKind,
        tol: Tolerance,
        limit: u128,
    ) -> Result<Self> {
        let users = game.users();
        let links = game.links();
        let total = crate::solvers::exhaustive::profile_count(users, links);
        if total > limit {
            return Err(GameError::TooLarge {
                profiles: total,
                limit,
            });
        }
        let total = total as usize;
        let mut successors = vec![Vec::new(); total];
        let mut sinks = Vec::new();
        for (code, slot) in successors.iter_mut().enumerate() {
            let profile = decode(code, users, links);
            let succ = successors_of(game, &profile, initial, edge_kind, tol);
            if succ.is_empty() {
                sinks.push(code);
            }
            *slot = succ;
        }
        Ok(GameGraph {
            users,
            links,
            successors,
            sinks,
            edge_kind,
        })
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.links
    }

    /// Which moves define the edges.
    pub fn edge_kind(&self) -> EdgeKind {
        self.edge_kind
    }

    /// Number of nodes (`mⁿ`).
    pub fn node_count(&self) -> usize {
        self.successors.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }

    /// Successor profile codes of `code`.
    pub fn successors(&self, code: usize) -> &[usize] {
        &self.successors[code]
    }

    /// The pure Nash equilibria (sink nodes) as profiles.
    pub fn pure_nash_profiles(&self) -> Vec<PureProfile> {
        self.sinks
            .iter()
            .map(|&code| decode(code, self.users, self.links))
            .collect()
    }

    /// Whether the graph contains at least one pure Nash equilibrium.
    pub fn has_pure_nash(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Finds a directed cycle, if one exists, returned as the sequence of
    /// profiles along the cycle (first node repeated at the end is omitted).
    ///
    /// A cycle over [`EdgeKind::BetterResponse`] edges shows the game is not an
    /// ordinal potential game; a cycle over [`EdgeKind::BestResponse`] edges is
    /// a best-response cycle in the sense of the paper's `n = 3` argument.
    pub fn find_cycle(&self) -> Option<Vec<PureProfile>> {
        // Iterative DFS with colouring: 0 = white, 1 = on stack, 2 = done.
        let n = self.node_count();
        let mut colour = vec![0u8; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if colour[start] != 0 {
                continue;
            }
            // Stack of (node, next successor index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < self.successors[node].len() {
                    let succ = self.successors[node][*next];
                    *next += 1;
                    match colour[succ] {
                        0 => {
                            colour[succ] = 1;
                            parent[succ] = node;
                            stack.push((succ, 0));
                        }
                        1 => {
                            // Found a back edge: reconstruct the cycle
                            // succ -> ... -> node -> succ.
                            let mut cycle = vec![node];
                            let mut cur = node;
                            while cur != succ {
                                cur = parent[cur];
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            return Some(
                                cycle
                                    .into_iter()
                                    .map(|c| decode(c, self.users, self.links))
                                    .collect(),
                            );
                        }
                        _ => {}
                    }
                } else {
                    colour[node] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Whether the graph is acyclic (no defection cycle exists).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }
}

/// The profiles reachable from `profile` by a single defection of the given kind.
pub fn successors_of(
    game: &EffectiveGame,
    profile: &PureProfile,
    initial: &LinkLoads,
    edge_kind: EdgeKind,
    tol: Tolerance,
) -> Vec<usize> {
    let links = game.links();
    match edge_kind {
        EdgeKind::BetterResponse => profitable_deviations(game, profile, initial, tol)
            .into_iter()
            .map(|d| encode(&profile.with_move(d.user, d.to), links))
            .collect(),
        EdgeKind::BestResponse => {
            let mut succ = Vec::new();
            for user in 0..game.users() {
                let current = crate::latency::pure_user_latency(game, profile, initial, user);
                let (to, latency) = best_response(game, profile, initial, user, tol);
                if to != profile.link(user) && tol.lt(latency, current) {
                    succ.push(encode(&profile.with_move(user, to), links));
                }
            }
            succ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::is_pure_nash;
    use crate::solvers::exhaustive;

    fn opposed_game() -> EffectiveGame {
        EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]]).unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        for n in 1..=4 {
            for m in 2..=4 {
                exhaustive::for_each_profile(n, m, |p| {
                    let code = encode(p, m);
                    assert_eq!(&decode(code, n, m), p);
                });
            }
        }
    }

    #[test]
    fn sinks_match_exhaustive_pure_nash() {
        let g = EffectiveGame::from_rows(
            vec![2.0, 1.0, 3.0],
            vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 0.5]],
        )
        .unwrap();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let graph = GameGraph::build(&g, &t, EdgeKind::BetterResponse, tol, 10_000).unwrap();
        let from_graph: Vec<_> = graph.pure_nash_profiles();
        let from_enum = exhaustive::all_pure_nash(&g, &t, tol, 10_000).unwrap();
        assert_eq!(from_graph.len(), from_enum.len());
        for p in &from_graph {
            assert!(is_pure_nash(&g, p, &t, tol));
            assert!(from_enum.contains(p));
        }
    }

    #[test]
    fn opposed_game_graph_is_acyclic_for_both_edge_kinds() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        for kind in [EdgeKind::BetterResponse, EdgeKind::BestResponse] {
            let graph = GameGraph::build(&g, &t, kind, tol, 10_000).unwrap();
            assert!(graph.has_pure_nash());
            assert!(graph.is_acyclic(), "unexpected cycle with {kind:?} edges");
        }
    }

    #[test]
    fn node_and_edge_counts_are_consistent() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        let graph = GameGraph::build(
            &g,
            &t,
            EdgeKind::BetterResponse,
            Tolerance::default(),
            10_000,
        )
        .unwrap();
        assert_eq!(graph.node_count(), 4);
        // Every non-sink node has at least one edge.
        let sinks = graph.pure_nash_profiles().len();
        assert!(graph.edge_count() >= graph.node_count() - sinks);
        assert_eq!(graph.users(), 2);
        assert_eq!(graph.links(), 2);
        assert_eq!(graph.edge_kind(), EdgeKind::BetterResponse);
    }

    #[test]
    fn size_limit_is_enforced() {
        let g = opposed_game();
        let t = LinkLoads::zero(2);
        assert!(matches!(
            GameGraph::build(&g, &t, EdgeKind::BestResponse, Tolerance::default(), 2),
            Err(GameError::TooLarge { .. })
        ));
    }

    #[test]
    fn best_response_edges_are_subset_of_better_response_edges() {
        let g = EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
            ],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let tol = Tolerance::default();
        let better = GameGraph::build(&g, &t, EdgeKind::BetterResponse, tol, 10_000).unwrap();
        let best = GameGraph::build(&g, &t, EdgeKind::BestResponse, tol, 10_000).unwrap();
        assert!(best.edge_count() <= better.edge_count());
        for code in 0..best.node_count() {
            for succ in best.successors(code) {
                assert!(
                    better.successors(code).contains(succ),
                    "best-response edge {code}->{succ} missing from better-response graph"
                );
            }
        }
    }

    #[test]
    fn three_user_games_have_pure_nash_and_no_best_response_cycle() {
        // Spot-check of the paper's n = 3 claim on fixed instances.
        let instances = [
            vec![
                vec![2.0, 1.0, 3.0],
                vec![1.0, 2.0, 0.5],
                vec![3.0, 1.0, 1.0],
            ],
            vec![
                vec![1.0, 5.0, 2.0],
                vec![5.0, 1.0, 2.0],
                vec![2.0, 2.0, 5.0],
            ],
            vec![
                vec![0.5, 0.7, 0.9],
                vec![0.9, 0.5, 0.7],
                vec![0.7, 0.9, 0.5],
            ],
        ];
        let tol = Tolerance::default();
        for rows in instances {
            let g = EffectiveGame::from_rows(vec![1.0, 2.0, 3.0], rows).unwrap();
            let t = LinkLoads::zero(3);
            let graph = GameGraph::build(&g, &t, EdgeKind::BestResponse, tol, 100_000).unwrap();
            assert!(graph.has_pure_nash());
            assert!(graph.find_cycle().is_none());
        }
    }
}
