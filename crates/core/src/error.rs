//! Error types for game construction and algorithm preconditions.

use std::fmt;

/// Errors raised while constructing or validating games, strategy profiles and
/// algorithm inputs.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are named after the quantities they carry
pub enum GameError {
    /// The game must have at least two users (`n > 1` in the paper).
    TooFewUsers { n: usize },
    /// The game must have at least two links (`m > 1` in the paper).
    TooFewLinks { m: usize },
    /// A user weight (traffic) must be strictly positive and finite.
    InvalidWeight { user: usize, value: f64 },
    /// A link capacity must be strictly positive and finite.
    InvalidCapacity {
        state: usize,
        link: usize,
        value: f64,
    },
    /// The state space must contain at least one state.
    EmptyStateSpace,
    /// All states must describe the same number of links.
    StateDimensionMismatch {
        state: usize,
        expected: usize,
        found: usize,
    },
    /// A belief must be a probability distribution over the state space.
    InvalidBelief { user: usize, reason: BeliefError },
    /// The number of beliefs must equal the number of users.
    BeliefCountMismatch { users: usize, beliefs: usize },
    /// A strategy profile has the wrong number of users or links.
    ProfileDimensionMismatch {
        expected_users: usize,
        found_users: usize,
    },
    /// A pure strategy refers to a link outside `[m]`.
    LinkOutOfRange {
        user: usize,
        link: usize,
        links: usize,
    },
    /// A mixed strategy row is not a probability distribution.
    InvalidMixedRow { user: usize, sum: f64 },
    /// A probability is outside `[0, 1]`.
    InvalidProbability {
        user: usize,
        link: usize,
        value: f64,
    },
    /// The initial-traffic vector has the wrong length or a negative entry.
    InvalidInitialTraffic { reason: String },
    /// An algorithm precondition does not hold (e.g. `Atwolinks` needs `m = 2`).
    Precondition {
        algorithm: &'static str,
        requirement: String,
    },
    /// The requested exhaustive computation is too large (`m^n` over the cap).
    TooLarge { profiles: u128, limit: u128 },
    /// A coordination ratio `SC / OPT` is undefined because the optimum (or
    /// the lower end of its bracket) is zero or not finite.
    ZeroOptimum { which: &'static str, value: f64 },
    /// An optimum bracket is unusable: no finite upper bound was produced, or
    /// the certified bounds cross (`lower > upper`) — a backend bug.
    EmptyBracket {
        which: &'static str,
        lower: f64,
        upper: f64,
    },
}

/// Reasons a belief vector fails validation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are named after the quantities they carry
pub enum BeliefError {
    /// Belief length differs from the number of states.
    LengthMismatch { expected: usize, found: usize },
    /// A probability entry is negative, NaN or infinite.
    InvalidEntry { index: usize, value: f64 },
    /// The entries do not sum to one (within tolerance).
    NotNormalized { sum: f64 },
}

impl fmt::Display for BeliefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeliefError::LengthMismatch { expected, found } => {
                write!(f, "belief has {found} entries, expected {expected}")
            }
            BeliefError::InvalidEntry { index, value } => {
                write!(f, "belief entry {index} is invalid ({value})")
            }
            BeliefError::NotNormalized { sum } => {
                write!(f, "belief entries sum to {sum}, expected 1")
            }
        }
    }
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::TooFewUsers { n } => write!(f, "game needs n > 1 users, got {n}"),
            GameError::TooFewLinks { m } => write!(f, "game needs m > 1 links, got {m}"),
            GameError::InvalidWeight { user, value } => {
                write!(
                    f,
                    "user {user} has invalid traffic {value}; weights must be positive and finite"
                )
            }
            GameError::InvalidCapacity { state, link, value } => {
                write!(f, "state {state}, link {link} has invalid capacity {value}")
            }
            GameError::EmptyStateSpace => write!(f, "the state space is empty"),
            GameError::StateDimensionMismatch {
                state,
                expected,
                found,
            } => {
                write!(
                    f,
                    "state {state} has {found} capacities, expected {expected}"
                )
            }
            GameError::InvalidBelief { user, reason } => {
                write!(f, "belief of user {user} is invalid: {reason}")
            }
            GameError::BeliefCountMismatch { users, beliefs } => {
                write!(f, "belief profile has {beliefs} beliefs for {users} users")
            }
            GameError::ProfileDimensionMismatch {
                expected_users,
                found_users,
            } => {
                write!(
                    f,
                    "profile covers {found_users} users, expected {expected_users}"
                )
            }
            GameError::LinkOutOfRange { user, link, links } => {
                write!(
                    f,
                    "user {user} selects link {link}, but the game has {links} links"
                )
            }
            GameError::InvalidMixedRow { user, sum } => {
                write!(f, "mixed strategy of user {user} sums to {sum}, expected 1")
            }
            GameError::InvalidProbability { user, link, value } => {
                write!(
                    f,
                    "probability of user {user} on link {link} is {value}, outside [0, 1]"
                )
            }
            GameError::InvalidInitialTraffic { reason } => {
                write!(f, "invalid initial traffic vector: {reason}")
            }
            GameError::Precondition {
                algorithm,
                requirement,
            } => {
                write!(f, "{algorithm} precondition violated: {requirement}")
            }
            GameError::TooLarge { profiles, limit } => {
                write!(
                    f,
                    "exhaustive enumeration of {profiles} profiles exceeds the limit of {limit}"
                )
            }
            GameError::ZeroOptimum { which, value } => {
                write!(
                    f,
                    "coordination ratio over {which} is undefined: the optimum is {value}"
                )
            }
            GameError::EmptyBracket {
                which,
                lower,
                upper,
            } => {
                write!(
                    f,
                    "the {which} bracket [{lower}, {upper}] is empty (no usable certified bounds)"
                )
            }
        }
    }
}

impl std::error::Error for GameError {}

impl std::error::Error for BeliefError {}

impl From<BeliefError> for GameError {
    fn from(reason: BeliefError) -> Self {
        GameError::InvalidBelief { user: 0, reason }
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GameError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = GameError::InvalidWeight {
            user: 3,
            value: -1.0,
        };
        assert!(e.to_string().contains("user 3"));
        assert!(e.to_string().contains("-1"));

        let e = GameError::InvalidBelief {
            user: 0,
            reason: BeliefError::NotNormalized { sum: 0.7 },
        };
        assert!(e.to_string().contains("0.7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GameError>();
    }
}
