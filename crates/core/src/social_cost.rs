//! Social cost, social optimum and the price of anarchy (Sections 2 and 4.2).
//!
//! Because beliefs are subjective there is no objective link congestion, so
//! the paper defines the social cost from the users' individual (minimum
//! expected) latencies:
//!
//! * `SC1(G, P) = Σᵢ λ_{i,bᵢ}(P)` — the sum of individual costs,
//! * `SC2(G, P) = maxᵢ λ_{i,bᵢ}(P)` — the maximum individual cost,
//!
//! with the corresponding optima `OPT1`, `OPT2` taken over pure assignments
//! and coordination ratios `CRᵢ = SCᵢ / OPTᵢ`. Theorems 4.13 and 4.14 give
//! closed-form upper bounds on the coordination ratio, reproduced here as
//! [`cr_bound_uniform_beliefs`] and [`cr_bound_general`].
//!
//! Optimum computation is delegated to the [`opt`](crate::opt) subsystem:
//! [`social_optimum`] is its exhaustive backend (exact, small games), and
//! [`measure_bracketed`] consumes a whole [`OptEngine`] to report *interval*
//! coordination ratios `CRᵢ ∈ [SCᵢ/upperᵢ, SCᵢ/lowerᵢ]` from certified
//! brackets — the form that scales to `n = 512`. Every ratio path is
//! guarded by [`checked_ratio`]: a degenerate (zero) optimum is a typed
//! error, never a NaN or ∞ in a report.

use serde::{Deserialize, Serialize};

use crate::error::{GameError, Result};
use crate::latency::{mixed_min_latencies, pure_user_latency};
use crate::model::EffectiveGame;
use crate::numeric::stable_sum;
use crate::opt::{self, OptBracket, OptEngine, OptOutcome, SocialOptimum};
use crate::solvers::exhaustive;
use crate::strategy::{LinkLoads, MixedProfile, PureProfile};

/// `SC1(G, P)`: the sum of the users' minimum expected latency costs.
pub fn sc1(game: &EffectiveGame, profile: &MixedProfile) -> f64 {
    stable_sum(&mixed_min_latencies(game, profile))
}

/// `SC2(G, P)`: the maximum of the users' minimum expected latency costs.
pub fn sc2(game: &EffectiveGame, profile: &MixedProfile) -> f64 {
    mixed_min_latencies(game, profile)
        .into_iter()
        .fold(f64::MIN, f64::max)
}

/// Sum of the users' expected latencies in a pure profile (the quantity
/// minimised by `OPT1`).
pub fn pure_sc1(game: &EffectiveGame, profile: &PureProfile, initial: &LinkLoads) -> f64 {
    let latencies: Vec<f64> = (0..game.users())
        .map(|i| pure_user_latency(game, profile, initial, i))
        .collect();
    stable_sum(&latencies)
}

/// Maximum of the users' expected latencies in a pure profile (the quantity
/// minimised by `OPT2`).
pub fn pure_sc2(game: &EffectiveGame, profile: &PureProfile, initial: &LinkLoads) -> f64 {
    (0..game.users())
        .map(|i| pure_user_latency(game, profile, initial, i))
        .fold(f64::MIN, f64::max)
}

/// Computes the exact social optima by exhaustive enumeration (the
/// conclusive backend of the [`opt`] bracketing subsystem; use an
/// [`OptEngine`] via [`measure_bracketed`] for games beyond the limit).
///
/// # Errors
/// Fails when the profile space exceeds `limit`.
pub fn social_optimum(
    game: &EffectiveGame,
    initial: &LinkLoads,
    limit: u128,
) -> Result<SocialOptimum> {
    opt::exhaustive::social_optimum(game, initial, limit)
}

/// `sc / opt`, with a typed error instead of a NaN/∞ ratio when the optimum
/// is zero or not finite — the guard every coordination-ratio path in the
/// workspace (including the KP baseline) routes through.
///
/// # Errors
/// [`GameError::ZeroOptimum`] when `opt ≤ 0` or `opt` is not finite.
pub fn checked_ratio(sc: f64, opt: f64, which: &'static str) -> Result<f64> {
    if !(opt.is_finite() && opt > 0.0) {
        return Err(GameError::ZeroOptimum { which, value: opt });
    }
    Ok(sc / opt)
}

/// Both social costs and both coordination ratios of a mixed profile, measured
/// against the exact social optima.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// `SC1(G, P)`.
    pub sc1: f64,
    /// `SC2(G, P)`.
    pub sc2: f64,
    /// `OPT1(G)`.
    pub opt1: f64,
    /// `OPT2(G)`.
    pub opt2: f64,
    /// `SC1 / OPT1`.
    pub cr1: f64,
    /// `SC2 / OPT2`.
    pub cr2: f64,
}

/// Measures a mixed profile against the exact social optima of the game.
///
/// # Errors
/// Fails when the profile space exceeds `limit`, or with
/// [`GameError::ZeroOptimum`] when an optimum degenerates to zero (a ratio
/// is never reported as NaN/∞).
pub fn measure(
    game: &EffectiveGame,
    profile: &MixedProfile,
    initial: &LinkLoads,
    limit: u128,
) -> Result<CostReport> {
    let optimum = social_optimum(game, initial, limit)?;
    let sc1 = sc1(game, profile);
    let sc2 = sc2(game, profile);
    Ok(CostReport {
        sc1,
        sc2,
        opt1: optimum.opt1,
        opt2: optimum.opt2,
        cr1: checked_ratio(sc1, optimum.opt1, "OPT1")?,
        cr2: checked_ratio(sc2, optimum.opt2, "OPT2")?,
    })
}

/// An interval around a coordination ratio, induced by an [`OptBracket`]:
/// `SC/OPT ∈ [sc/upper, sc/lower]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioBracket {
    /// `sc / bracket.upper` — the ratio if the optimum is as expensive as
    /// the certified upper bound allows.
    pub lower: f64,
    /// `sc / bracket.lower` — the ratio if the optimum is as cheap as the
    /// certified lower bound allows.
    pub upper: f64,
}

/// The interval coordination ratio induced by a certified optimum bracket.
///
/// # Errors
/// [`GameError::ZeroOptimum`] when the bracket's lower end is zero (the
/// upper ratio would be ∞); [`GameError::EmptyBracket`] when the bracket is
/// unusable (no finite upper bound, or crossed bounds).
pub fn ratio_bracket(sc: f64, bracket: &OptBracket, which: &'static str) -> Result<RatioBracket> {
    if !bracket.upper.is_finite() || bracket.lower > bracket.upper {
        return Err(GameError::EmptyBracket {
            which,
            lower: bracket.lower,
            upper: bracket.upper,
        });
    }
    Ok(RatioBracket {
        lower: checked_ratio(sc, bracket.upper, which)?,
        upper: checked_ratio(sc, bracket.lower, which)?,
    })
}

/// Both social costs and both *interval* coordination ratios of a mixed
/// profile, measured against certified optimum brackets — the form of
/// [`CostReport`] that survives past the exhaustive wall. When the engine's
/// brackets are exact this degenerates to the classic point report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BracketedCostReport {
    /// `SC1(G, P)`.
    pub sc1: f64,
    /// `SC2(G, P)`.
    pub sc2: f64,
    /// Certified bracket around `OPT1(G)`.
    pub opt1: OptBracket,
    /// Certified bracket around `OPT2(G)`.
    pub opt2: OptBracket,
    /// `SC1/OPT1 ∈ [cr1.lower, cr1.upper]`.
    pub cr1: RatioBracket,
    /// `SC2/OPT2 ∈ [cr2.lower, cr2.upper]`.
    pub cr2: RatioBracket,
}

/// Measures a mixed profile against the certified optimum brackets of an
/// [`OptEngine`] — the scale-robust counterpart of [`measure`].
///
/// # Errors
/// Engine errors propagate; [`GameError::ZeroOptimum`] /
/// [`GameError::EmptyBracket`] when a ratio interval cannot be formed.
pub fn measure_bracketed(
    game: &EffectiveGame,
    profile: &MixedProfile,
    initial: &LinkLoads,
    engine: &OptEngine,
) -> Result<BracketedCostReport> {
    let outcome: OptOutcome = engine.estimate(game, initial)?;
    let sc1 = sc1(game, profile);
    let sc2 = sc2(game, profile);
    Ok(BracketedCostReport {
        sc1,
        sc2,
        cr1: ratio_bracket(sc1, &outcome.opt1, "OPT1")?,
        cr2: ratio_bracket(sc2, &outcome.opt2, "OPT2")?,
        opt1: outcome.opt1,
        opt2: outcome.opt2,
    })
}

/// The range of social costs spanned by the *pure* Nash equilibria of a game:
/// the cheapest and the most expensive equilibrium under both cost notions.
///
/// This is the quantity behind the pure price of anarchy (worst / OPT) and the
/// price of stability (best / OPT); the paper only bounds the former, but the
/// spectrum is useful when studying how much coordination could help.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquilibriumSpectrum {
    /// Number of pure Nash equilibria found.
    pub count: usize,
    /// Smallest `SC1` over all pure equilibria.
    pub best_sc1: f64,
    /// Largest `SC1` over all pure equilibria.
    pub worst_sc1: f64,
    /// Smallest `SC2` over all pure equilibria.
    pub best_sc2: f64,
    /// Largest `SC2` over all pure equilibria.
    pub worst_sc2: f64,
}

/// Enumerates all pure Nash equilibria and reports the spread of their social
/// costs. Returns `Ok(None)` when the game has no pure equilibrium (not
/// observed in practice; see Conjecture 3.7).
///
/// # Errors
/// Fails when the profile space exceeds `limit`.
pub fn pure_equilibrium_spectrum(
    game: &EffectiveGame,
    initial: &LinkLoads,
    tol: crate::numeric::Tolerance,
    limit: u128,
) -> Result<Option<EquilibriumSpectrum>> {
    let equilibria = exhaustive::all_pure_nash(game, initial, tol, limit)?;
    if equilibria.is_empty() {
        return Ok(None);
    }
    let mut spectrum = EquilibriumSpectrum {
        count: equilibria.len(),
        best_sc1: f64::INFINITY,
        worst_sc1: f64::NEG_INFINITY,
        best_sc2: f64::INFINITY,
        worst_sc2: f64::NEG_INFINITY,
    };
    for ne in &equilibria {
        let s1 = pure_sc1(game, ne, initial);
        let s2 = pure_sc2(game, ne, initial);
        spectrum.best_sc1 = spectrum.best_sc1.min(s1);
        spectrum.worst_sc1 = spectrum.worst_sc1.max(s1);
        spectrum.best_sc2 = spectrum.best_sc2.min(s2);
        spectrum.worst_sc2 = spectrum.worst_sc2.max(s2);
    }
    Ok(Some(spectrum))
}

/// The pure price of anarchy and price of stability of a game under `SC1`:
/// `(worst NE / OPT1, best NE / OPT1)`. Returns `Ok(None)` when no pure
/// equilibrium exists.
///
/// # Errors
/// Fails when the profile space exceeds `limit`, or with
/// [`GameError::ZeroOptimum`] when the optimum degenerates to zero.
pub fn pure_poa_and_pos(
    game: &EffectiveGame,
    initial: &LinkLoads,
    tol: crate::numeric::Tolerance,
    limit: u128,
) -> Result<Option<(f64, f64)>> {
    let Some(spectrum) = pure_equilibrium_spectrum(game, initial, tol, limit)? else {
        return Ok(None);
    };
    let optimum = social_optimum(game, initial, limit)?;
    Ok(Some((
        checked_ratio(spectrum.worst_sc1, optimum.opt1, "OPT1")?,
        checked_ratio(spectrum.best_sc1, optimum.opt1, "OPT1")?,
    )))
}

/// The coordination-ratio upper bound of Theorem 4.13, valid under the model
/// of uniform user beliefs:
/// `(c_max / c_min) · (m + n − 1) / m`.
pub fn cr_bound_uniform_beliefs(game: &EffectiveGame) -> f64 {
    let caps = game.capacities();
    let n = game.users() as f64;
    let m = game.links() as f64;
    (caps.max() / caps.min()) * (m + n - 1.0) / m
}

/// The coordination-ratio upper bound of Theorem 4.14 for the general case:
/// `(c_max² / c_min) · (m + n − 1) / Σⱼ cʲ_min`, where `cʲ_min = minᵢ cᵢʲ`.
pub fn cr_bound_general(game: &EffectiveGame) -> f64 {
    let caps = game.capacities();
    let n = game.users() as f64;
    let m = game.links() as f64;
    let link_min_sum: f64 = (0..game.links()).map(|l| caps.link_min(l)).sum();
    (caps.max() * caps.max() / caps.min()) * (m + n - 1.0) / link_min_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fully_mixed::fully_mixed_nash;
    use crate::numeric::Tolerance;
    use crate::solvers::exhaustive::all_pure_nash;

    fn mild_game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![1.0, 1.5, 2.0],
            vec![vec![2.0, 2.2], vec![2.1, 1.9], vec![2.0, 2.0]],
        )
        .unwrap()
    }

    #[test]
    fn sc1_is_sum_and_sc2_is_max_of_min_latencies() {
        let g = mild_game();
        let p = MixedProfile::uniform(3, 2);
        let mins = mixed_min_latencies(&g, &p);
        assert!((sc1(&g, &p) - stable_sum(&mins)).abs() < 1e-12);
        let max = mins.iter().cloned().fold(f64::MIN, f64::max);
        assert!((sc2(&g, &p) - max).abs() < 1e-12);
        assert!(sc2(&g, &p) <= sc1(&g, &p) + 1e-12);
    }

    #[test]
    fn pure_costs_match_mixed_costs_of_degenerate_profiles_at_equilibrium() {
        // For a pure Nash equilibrium the minimum expected latency of each
        // user equals the latency on its own link, so the mixed-profile social
        // costs coincide with the pure ones.
        let g = mild_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let equilibria = all_pure_nash(&g, &t, tol, 10_000).unwrap();
        assert!(!equilibria.is_empty());
        for pure in equilibria {
            let mixed = MixedProfile::from_pure(&pure, 2);
            assert!((sc1(&g, &mixed) - pure_sc1(&g, &pure, &t)).abs() < 1e-9);
            assert!((sc2(&g, &mixed) - pure_sc2(&g, &pure, &t)).abs() < 1e-9);
        }
    }

    #[test]
    fn optimum_is_a_lower_bound_for_equilibrium_costs() {
        let g = mild_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        for pure in all_pure_nash(&g, &t, tol, 10_000).unwrap() {
            let mixed = MixedProfile::from_pure(&pure, 2);
            let report = measure(&g, &mixed, &t, 10_000).unwrap();
            assert!(report.cr1 >= 1.0 - 1e-9);
            assert!(report.cr2 >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn theorem_4_13_bound_holds_for_uniform_belief_equilibria() {
        // Uniform beliefs, varied per-user capacities and weights.
        let g = EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0, 1.5],
            vec![vec![2.0; 3], vec![0.5; 3], vec![1.0; 3], vec![4.0; 3]],
        )
        .unwrap();
        let t = LinkLoads::zero(3);
        let tol = Tolerance::default();
        let bound = cr_bound_uniform_beliefs(&g);
        for pure in all_pure_nash(&g, &t, tol, 100_000).unwrap() {
            let mixed = MixedProfile::from_pure(&pure, 3);
            let report = measure(&g, &mixed, &t, 100_000).unwrap();
            assert!(
                report.cr1 <= bound + 1e-9,
                "CR1 {} > bound {bound}",
                report.cr1
            );
            assert!(
                report.cr2 <= bound + 1e-9,
                "CR2 {} > bound {bound}",
                report.cr2
            );
        }
        // The fully mixed equilibrium (worst case by Theorems 4.11/4.12) also
        // respects the bound.
        let fmne = fully_mixed_nash(&g, tol).unwrap();
        let report = measure(&g, &fmne, &t, 100_000).unwrap();
        assert!(report.cr1 <= bound + 1e-9);
        assert!(report.cr2 <= bound + 1e-9);
    }

    #[test]
    fn theorem_4_14_bound_holds_for_general_equilibria() {
        let g = mild_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let bound = cr_bound_general(&g);
        for pure in all_pure_nash(&g, &t, tol, 10_000).unwrap() {
            let mixed = MixedProfile::from_pure(&pure, 2);
            let report = measure(&g, &mixed, &t, 10_000).unwrap();
            assert!(report.cr1 <= bound + 1e-9);
            assert!(report.cr2 <= bound + 1e-9);
        }
        if let Some(fmne) = fully_mixed_nash(&g, tol) {
            let report = measure(&g, &fmne, &t, 10_000).unwrap();
            assert!(report.cr1 <= bound + 1e-9);
            assert!(report.cr2 <= bound + 1e-9);
        }
    }

    #[test]
    fn equilibrium_spectrum_brackets_every_pure_equilibrium() {
        let g = mild_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let spectrum = pure_equilibrium_spectrum(&g, &t, tol, 10_000)
            .unwrap()
            .unwrap();
        let equilibria = all_pure_nash(&g, &t, tol, 10_000).unwrap();
        assert_eq!(spectrum.count, equilibria.len());
        for ne in &equilibria {
            let s1 = pure_sc1(&g, ne, &t);
            let s2 = pure_sc2(&g, ne, &t);
            assert!(spectrum.best_sc1 <= s1 + 1e-12 && s1 <= spectrum.worst_sc1 + 1e-12);
            assert!(spectrum.best_sc2 <= s2 + 1e-12 && s2 <= spectrum.worst_sc2 + 1e-12);
        }
        assert!(spectrum.best_sc1 <= spectrum.worst_sc1);
        assert!(spectrum.best_sc2 <= spectrum.worst_sc2);
    }

    #[test]
    fn poa_and_pos_are_ordered_and_at_least_one() {
        let g = mild_game();
        let t = LinkLoads::zero(2);
        let tol = Tolerance::default();
        let (poa, pos) = pure_poa_and_pos(&g, &t, tol, 10_000).unwrap().unwrap();
        assert!(pos >= 1.0 - 1e-9, "price of stability below 1: {pos}");
        assert!(poa >= pos - 1e-12, "PoA {poa} below PoS {pos}");
        assert!(poa <= cr_bound_general(&g) + 1e-9);
    }

    #[test]
    fn spectrum_respects_the_size_limit() {
        let g = mild_game();
        let t = LinkLoads::zero(2);
        assert!(pure_equilibrium_spectrum(&g, &t, Tolerance::default(), 2).is_err());
        assert!(pure_poa_and_pos(&g, &t, Tolerance::default(), 2).is_err());
    }

    #[test]
    fn degenerate_optima_are_typed_errors_not_nans() {
        assert!((checked_ratio(3.0, 2.0, "OPT1").unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(
            checked_ratio(3.0, 0.0, "OPT1"),
            Err(GameError::ZeroOptimum {
                which: "OPT1",
                value: 0.0
            })
        );
        assert!(checked_ratio(3.0, -1.0, "OPT2").is_err());
        assert!(checked_ratio(3.0, f64::INFINITY, "OPT2").is_err());
        assert!(checked_ratio(3.0, f64::NAN, "OPT2").is_err());
    }

    #[test]
    fn empty_or_zero_brackets_are_typed_errors() {
        let zero_lower = OptBracket {
            lower: 0.0,
            upper: 2.0,
            exact: false,
        };
        assert!(matches!(
            ratio_bracket(1.0, &zero_lower, "OPT1"),
            Err(GameError::ZeroOptimum { which: "OPT1", .. })
        ));
        let unresolved = OptBracket::unresolved();
        assert!(matches!(
            ratio_bracket(1.0, &unresolved, "OPT2"),
            Err(GameError::EmptyBracket { which: "OPT2", .. })
        ));
        let crossed = OptBracket {
            lower: 3.0,
            upper: 2.0,
            exact: false,
        };
        assert!(matches!(
            ratio_bracket(1.0, &crossed, "OPT1"),
            Err(GameError::EmptyBracket { .. })
        ));
    }

    #[test]
    fn bracketed_measurement_degenerates_to_the_exact_report_on_small_games() {
        let g = mild_game();
        let t = LinkLoads::zero(2);
        let p = MixedProfile::uniform(3, 2);
        let exact = measure(&g, &p, &t, 10_000).unwrap();
        let engine = OptEngine::default();
        let bracketed = measure_bracketed(&g, &p, &t, &engine).unwrap();
        assert!(bracketed.opt1.exact && bracketed.opt2.exact);
        assert_eq!(bracketed.sc1, exact.sc1);
        assert_eq!(bracketed.opt1.lower, exact.opt1);
        assert_eq!(bracketed.opt2.upper, exact.opt2);
        assert_eq!(bracketed.cr1.lower, exact.cr1);
        assert_eq!(bracketed.cr1.upper, exact.cr1);
        assert_eq!(bracketed.cr2.lower, exact.cr2);
    }

    #[test]
    fn bracketed_ratios_contain_the_exact_ratio_under_bound_backends() {
        use crate::opt::OptBackendKind;
        let g = mild_game();
        let t = LinkLoads::zero(2);
        let p = MixedProfile::uniform(3, 2);
        let exact = measure(&g, &p, &t, 10_000).unwrap();
        let engine = OptEngine::from_kinds(
            crate::opt::OptConfig::default(),
            &[
                OptBackendKind::LptGreedy,
                OptBackendKind::Descent,
                OptBackendKind::Relaxation,
            ],
        );
        let bracketed = measure_bracketed(&g, &p, &t, &engine).unwrap();
        assert!(bracketed.cr1.lower <= exact.cr1 + 1e-9);
        assert!(bracketed.cr1.upper >= exact.cr1 - 1e-9);
        assert!(bracketed.cr2.lower <= exact.cr2 + 1e-9);
        assert!(bracketed.cr2.upper >= exact.cr2 - 1e-9);
    }

    #[test]
    fn general_bound_is_never_tighter_than_uniform_bound_on_uniform_games() {
        // For uniform-belief games both bounds apply; Theorem 4.14's bound is
        // the coarser one.
        let g =
            EffectiveGame::from_rows(vec![1.0, 2.0], vec![vec![2.0, 2.0], vec![0.5, 0.5]]).unwrap();
        assert!(cr_bound_general(&g) >= cr_bound_uniform_beliefs(&g) - 1e-12);
    }
}
