//! Differential certification of the opt backends against the exhaustive
//! oracle — the opt-side twin of [`solvers::oracle`](crate::solvers::oracle).
//!
//! On instances small enough for exhaustive enumeration, **every** backend's
//! contribution must bracket the true optima: lower bounds may never exceed
//! them, upper bounds may never undercut them, and an exactness claim must
//! hit them on the nose. [`check_kinds`] runs the contract for a backend
//! list on one instance and returns the violations; [`check_all`] is the
//! one-call form the proptest harness loops on. The oracle abstains (empty
//! report) when `mⁿ` exceeds the profile budget — bound *validity* at huge
//! sizes follows from the certified-by-construction arguments each backend
//! documents, and is cross-checked there by the engine's crossed-bracket
//! detection.

use std::fmt;

use crate::error::Result;
use crate::model::EffectiveGame;
use crate::opt::engine::{OptBackendKind, OptConfig, OptMethod};
use crate::opt::exhaustive::{social_optimum, SocialOptimum};
use crate::solvers::engine::Applicability;
use crate::solvers::exhaustive::profile_count;
use crate::strategy::LinkLoads;

/// Relative slack allowed between a bound and the exact optimum — covers
/// floating-point noise in the bound arithmetic, nothing more.
pub const ORACLE_EPS: f64 = 1e-9;

/// A breach of the bracketing contract by one backend on one instance.
#[derive(Debug, Clone, PartialEq)]
pub enum OptViolation {
    /// A certified lower bound exceeds the exact optimum.
    LowerExceedsOptimum {
        /// The offending backend.
        method: OptMethod,
        /// `"OPT1"` or `"OPT2"`.
        which: &'static str,
        /// The offending bound.
        bound: f64,
        /// The exact optimum.
        exact: f64,
    },
    /// A certified upper bound undercuts the exact optimum.
    UpperBelowOptimum {
        /// The offending backend.
        method: OptMethod,
        /// `"OPT1"` or `"OPT2"`.
        which: &'static str,
        /// The offending bound.
        bound: f64,
        /// The exact optimum.
        exact: f64,
    },
    /// A backend claimed exactness but missed the optimum.
    FalseExactness {
        /// The offending backend.
        method: OptMethod,
        /// `"OPT1"` or `"OPT2"`.
        which: &'static str,
        /// The claimed value.
        claimed: f64,
        /// The exact optimum.
        exact: f64,
    },
}

impl fmt::Display for OptViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptViolation::LowerExceedsOptimum {
                method,
                which,
                bound,
                exact,
            } => write!(
                f,
                "{method:?} lower bound {bound} exceeds the exact {which} {exact}"
            ),
            OptViolation::UpperBelowOptimum {
                method,
                which,
                bound,
                exact,
            } => write!(
                f,
                "{method:?} upper bound {bound} undercuts the exact {which} {exact}"
            ),
            OptViolation::FalseExactness {
                method,
                which,
                claimed,
                exact,
            } => write!(
                f,
                "{method:?} claimed {which} = {claimed} exactly, but it is {exact}"
            ),
        }
    }
}

fn check_bracket(
    method: OptMethod,
    which: &'static str,
    lower: Option<f64>,
    upper: Option<f64>,
    exact_claim: bool,
    exact: f64,
    violations: &mut Vec<OptViolation>,
) {
    let margin = ORACLE_EPS * 1.0_f64.max(exact.abs());
    if let Some(bound) = lower {
        if bound > exact + margin {
            violations.push(OptViolation::LowerExceedsOptimum {
                method,
                which,
                bound,
                exact,
            });
        }
    }
    if let Some(bound) = upper {
        if bound < exact - margin {
            violations.push(OptViolation::UpperBelowOptimum {
                method,
                which,
                bound,
                exact,
            });
        }
    }
    if exact_claim {
        let claimed = lower.or(upper).unwrap_or(f64::NAN);
        // NaN-safe: a NaN claim must count as a violation, so compare on
        // the failing side rather than negating the passing one.
        let misses = !(claimed - exact).abs().is_finite() || (claimed - exact).abs() > margin;
        if misses {
            violations.push(OptViolation::FalseExactness {
                method,
                which,
                claimed,
                exact,
            });
        }
    }
}

/// Runs the bracketing contract for every kind in `kinds` on one instance.
/// Returns the violations (empty when every backend is consistent with the
/// oracle); abstains with an empty list when the oracle itself cannot run.
pub fn check_kinds(
    kinds: &[OptBackendKind],
    game: &EffectiveGame,
    initial: &LinkLoads,
    config: &OptConfig,
) -> Result<Vec<OptViolation>> {
    if profile_count(game.users(), game.links()) > config.profile_limit {
        return Ok(Vec::new());
    }
    let exact: SocialOptimum = social_optimum(game, initial, config.profile_limit)?;
    let mut violations = Vec::new();
    for kind in kinds {
        let estimator = kind.build();
        if estimator.applicability(game, initial, config) == Applicability::NotApplicable {
            continue;
        }
        let estimate = estimator.estimate(game, initial, config)?;
        check_bracket(
            estimator.method(),
            "OPT1",
            estimate.opt1_lower,
            estimate.opt1_upper,
            estimate.opt1_exact,
            exact.opt1,
            &mut violations,
        );
        check_bracket(
            estimator.method(),
            "OPT2",
            estimate.opt2_lower,
            estimate.opt2_upper,
            estimate.opt2_exact,
            exact.opt2,
            &mut violations,
        );
    }
    Ok(violations)
}

/// All contract violations across every built-in backend on one instance.
pub fn check_all(
    game: &EffectiveGame,
    initial: &LinkLoads,
    config: &OptConfig,
) -> Result<Vec<OptViolation>> {
    check_kinds(&OptBackendKind::ALL, game, initial, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opposed_game() -> EffectiveGame {
        EffectiveGame::from_rows(vec![1.0, 1.0], vec![vec![10.0, 1.0], vec![1.0, 10.0]]).unwrap()
    }

    #[test]
    fn every_builtin_backend_satisfies_the_contract_on_a_fixed_instance() {
        let game = opposed_game();
        let initial = LinkLoads::zero(2);
        let violations = check_all(&game, &initial, &OptConfig::default()).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn the_oracle_abstains_beyond_the_profile_budget() {
        let game = opposed_game();
        let initial = LinkLoads::zero(2);
        let tiny = OptConfig {
            profile_limit: 3,
            ..OptConfig::default()
        };
        assert!(check_all(&game, &initial, &tiny).unwrap().is_empty());
    }

    #[test]
    fn violations_render_their_quantities() {
        let v = OptViolation::LowerExceedsOptimum {
            method: OptMethod::Relaxation,
            which: "OPT1",
            bound: 2.0,
            exact: 1.0,
        };
        let text = v.to_string();
        assert!(text.contains("OPT1") && text.contains('2') && text.contains('1'));
    }
}
