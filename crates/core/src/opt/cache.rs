//! Content-addressed memoisation for [`OptEngine::estimate`].
//!
//! The key discipline mirrors the solve cache
//! ([`solvers::cache`](crate::solvers::cache)): the canonical bytes of
//! everything that determines the engine's answer — the estimator method
//! list, **every** [`OptConfig`] budget (profile limit, node limit,
//! branch-and-bound user cap, restarts, move budget, opt seed, tolerance)
//! and the instance bit patterns — so a hit replays the cold estimate
//! exactly, telemetry included. Caching never changes brackets, only skips
//! repeated work (e.g. the fixed true network behind a group of belief
//! perturbations, measured once per perturbed equilibrium).
//!
//! [`OptEngine::estimate`]: super::engine::OptEngine::estimate

use crate::cache::{BoundedCache, CacheBound};
use crate::model::EffectiveGame;
use crate::numeric::canonical_bits;
use crate::opt::engine::{OptConfig, OptMethod, OptOutcome};
use crate::solvers::cache::CacheStats;
use crate::strategy::LinkLoads;

/// Entry cap used by [`OptCache::new`] (same rationale as the solve cache).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A thread-safe memoisation table in front of the opt engine's estimate
/// path.
///
/// The default ([`OptCache::new`] / [`OptCache::bounded`]) stops growing at
/// `capacity` entries (hits on the stored prefix keep working); the
/// service-tier [`OptCache::lru`] evicts the least-recently-used entry
/// instead and counts evictions in [`CacheStats`]. See the
/// [module docs](self) for the key discipline.
#[derive(Debug)]
pub struct OptCache {
    inner: BoundedCache<OptOutcome>,
}

impl Default for OptCache {
    fn default() -> Self {
        OptCache::bounded(DEFAULT_CAPACITY)
    }
}

impl OptCache {
    /// An empty cache holding at most [`DEFAULT_CAPACITY`] entries.
    pub fn new() -> Self {
        OptCache::default()
    }

    /// An empty cache holding at most `capacity` entries; at capacity, new
    /// entries are dropped (never evicted).
    pub fn bounded(capacity: usize) -> Self {
        OptCache {
            inner: BoundedCache::new(capacity, CacheBound::Soft),
        }
    }

    /// An empty cache holding at most `capacity` entries; at capacity, the
    /// least-recently-used entry is evicted to admit a new one. Eviction
    /// can never change brackets — an evicted instance is re-estimated on
    /// its next miss.
    pub fn lru(capacity: usize) -> Self {
        OptCache {
            inner: BoundedCache::new(capacity, CacheBound::Lru),
        }
    }

    /// The entry cap this cache was built with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Current hit/miss/entry/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of distinct estimated instances stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Looks up a canonical key (from [`canonical_key`]), counting the
    /// outcome as a hit or a miss. Public for out-of-crate engine frontends
    /// (the serve layer); see [`SolveCache::lookup`] for the contract.
    ///
    /// [`SolveCache::lookup`]: crate::solvers::cache::SolveCache::lookup
    pub fn lookup(&self, key: &[u8]) -> Option<OptOutcome> {
        self.inner.lookup(key)
    }

    /// Stores a cold estimate under its canonical key.
    pub fn insert(&self, key: Vec<u8>, outcome: OptOutcome) {
        self.inner.insert(key, outcome);
    }
}

fn method_tag(method: OptMethod) -> u8 {
    match method {
        OptMethod::Exhaustive => 0,
        OptMethod::BranchAndBound => 1,
        OptMethod::LptGreedy => 2,
        OptMethod::Descent => 3,
        OptMethod::Relaxation => 4,
    }
}

/// Builds the canonical cache key for one estimate: engine method list, the
/// full opt budget set (the adaptive width goal included), then the
/// canonicalised bit patterns of the instance itself ([`canonical_bits`]
/// folds `±0.0` and NaN payloads together, so semantically identical
/// instances always share a key).
pub fn canonical_key(
    methods: &[OptMethod],
    config: &OptConfig,
    game: &EffectiveGame,
    initial: &LinkLoads,
) -> Vec<u8> {
    let n = game.users();
    let m = game.links();
    let mut key = Vec::with_capacity(96 + 8 * (n + n * m + m));
    key.extend_from_slice(b"netuncert-opt-v2");
    key.push(methods.len() as u8);
    key.extend(methods.iter().map(|&mth| method_tag(mth)));
    key.extend_from_slice(&canonical_bits(config.tol.eps()).to_le_bytes());
    key.extend_from_slice(&config.profile_limit.to_le_bytes());
    key.extend_from_slice(&config.node_limit.to_le_bytes());
    key.extend_from_slice(&(config.bb_max_users as u64).to_le_bytes());
    key.extend_from_slice(&(config.restarts as u64).to_le_bytes());
    key.extend_from_slice(&config.max_moves.to_le_bytes());
    key.extend_from_slice(&config.opt_seed.to_le_bytes());
    match config.width_goal {
        Some(goal) => {
            key.push(1);
            key.extend_from_slice(&canonical_bits(goal).to_le_bytes());
        }
        None => key.push(0),
    }
    key.extend_from_slice(&(n as u64).to_le_bytes());
    key.extend_from_slice(&(m as u64).to_le_bytes());
    for &w in game.weights() {
        key.extend_from_slice(&canonical_bits(w).to_le_bytes());
    }
    for user in 0..n {
        for &c in game.capacities().row(user) {
            key.extend_from_slice(&canonical_bits(c).to_le_bytes());
        }
    }
    for &t in initial.as_slice() {
        key.extend_from_slice(&canonical_bits(t).to_le_bytes());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::engine::{OptBracket, OptTelemetry};

    fn game() -> EffectiveGame {
        EffectiveGame::from_rows(
            vec![3.0, 1.0, 2.0],
            vec![
                vec![2.0, 2.5, 1.0],
                vec![1.0, 4.0, 2.0],
                vec![3.0, 3.0, 0.5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn keys_separate_games_budgets_and_method_lists() {
        let config = OptConfig::default();
        let initial = LinkLoads::zero(3);
        let methods = vec![OptMethod::Exhaustive, OptMethod::Relaxation];
        let base = canonical_key(&methods, &config, &game(), &initial);

        for other in [
            OptConfig {
                node_limit: 7,
                ..config
            },
            OptConfig {
                bb_max_users: 3,
                ..config
            },
            OptConfig {
                max_moves: 9,
                ..config
            },
            OptConfig {
                opt_seed: 1,
                ..config
            },
        ] {
            assert_ne!(base, canonical_key(&methods, &other, &game(), &initial));
        }

        let reordered = vec![OptMethod::Relaxation, OptMethod::Exhaustive];
        assert_ne!(base, canonical_key(&reordered, &config, &game(), &initial));

        let busy = LinkLoads::new(vec![1.0, 0.0, 0.0]).unwrap();
        assert_ne!(base, canonical_key(&methods, &config, &game(), &busy));

        assert_eq!(base, canonical_key(&methods, &config, &game(), &initial));
    }

    #[test]
    fn keys_identify_signed_zero_initial_loads_and_separate_width_goals() {
        let config = OptConfig::default();
        let methods = vec![OptMethod::LptGreedy, OptMethod::Relaxation];
        let pos = LinkLoads::new(vec![0.0, 0.5, 0.0]).unwrap();
        let neg = LinkLoads::new(vec![-0.0, 0.5, -0.0]).unwrap();
        assert_eq!(
            canonical_key(&methods, &config, &game(), &pos),
            canonical_key(&methods, &config, &game(), &neg)
        );
        // The adaptive width goal is result-determining, so it must key.
        let adaptive = OptConfig {
            width_goal: Some(1.5),
            ..config
        };
        assert_ne!(
            canonical_key(&methods, &config, &game(), &pos),
            canonical_key(&methods, &adaptive, &game(), &pos)
        );
        let tighter = OptConfig {
            width_goal: Some(1.1),
            ..config
        };
        assert_ne!(
            canonical_key(&methods, &adaptive, &game(), &pos),
            canonical_key(&methods, &tighter, &game(), &pos)
        );
    }

    #[test]
    fn a_full_cache_stops_growing_but_keeps_serving() {
        let cache = OptCache::bounded(1);
        assert!(cache.is_empty());
        let outcome = OptOutcome {
            opt1: OptBracket::exact(1.0),
            opt2: OptBracket::exact(1.0),
            telemetry: OptTelemetry::default(),
        };
        cache.insert(vec![1], outcome.clone());
        cache.insert(vec![2], outcome.clone());
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&[1]).is_some());
        assert!(cache.lookup(&[2]).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }
}
